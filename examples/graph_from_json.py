#!/usr/bin/env python3
"""Building a stream-processing graph from a JSON descriptor (§III-A7).

"A stream processing graph can be created by directly invoking the
NEPTUNE API or through a JSON descriptor file."  Operator classes are
referenced by import path and constructed with the descriptor's kwargs;
partitioning schemes resolve through the same registry custom schemes
register with.

Run:  python examples/graph_from_json.py
"""

import json

from repro.core import NeptuneRuntime, StreamProcessingGraph
from repro.workloads.operators import CollectingSink

DESCRIPTOR = {
    "name": "json-declared-relay",
    "operators": [
        {
            "name": "sensor-feed",
            "type": "source",
            "class": "repro.workloads.operators:CountingSource",
            "kwargs": {"total": 5000, "payload_size": 100},
            "parallelism": 2,
        },
        {
            "name": "relay",
            "type": "processor",
            "class": "repro.workloads.operators:RelayProcessor",
            "parallelism": 2,
        },
        {
            "name": "sink",
            "type": "processor",
            "class": "repro.workloads.operators:CollectingSink",
            "kwargs": {"field": "seq"},
        },
    ],
    "links": [
        {"from": "sensor-feed", "to": "relay", "partitioning": {"scheme": "shuffle", "seed": 3}},
        {"from": "relay", "to": "sink", "partitioning": "round-robin"},
    ],
}


def build_graph():
    return StreamProcessingGraph.from_descriptor(DESCRIPTOR)


def main():
    text = json.dumps(DESCRIPTOR, indent=2)
    print("descriptor:")
    print(text)

    graph = StreamProcessingGraph.from_json(text)
    graph.validate()
    print(f"\nstages: {graph.stages()}")
    print(f"total operator instances: {graph.total_instances()}")

    # Round-trip: the parsed graph re-serializes to an equivalent form.
    again = StreamProcessingGraph.from_descriptor(graph.to_descriptor())
    again.validate()

    with NeptuneRuntime() as runtime:
        handle = runtime.submit(graph)
        ok = handle.await_completion(timeout=60)
    metrics = handle.metrics()
    print(f"\ncompleted: {ok}")
    # Two source instances × 5000 packets each.
    print(f"sink received {metrics['sink']['packets_in']} packets")
    assert metrics["sink"]["packets_in"] == 10_000


if __name__ == "__main__":
    main()
