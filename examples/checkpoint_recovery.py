#!/usr/bin/env python3
"""Fault recovery via checkpoints (the paper's §VI future work).

A job computes running per-sensor statistics from a JSON-lines event
file.  Mid-run we take a checkpoint and then "crash" the job (stop it
hard).  A fresh runtime resubmits the same graph restored from the
checkpoint: the file source resumes from its checkpointed byte
position and the aggregator resumes from its checkpointed counts — no
events are lost and none are double-counted.

Run:  python examples/checkpoint_recovery.py
"""

import json
import os
import tempfile

from repro.core import (
    FieldType,
    NeptuneConfig,
    NeptuneRuntime,
    PacketSchema,
    StreamProcessingGraph,
    StreamProcessor,
)
from repro.workloads.stdlib import JsonLinesFileSource, ThrottledSource

EVENT = PacketSchema(
    [("sensor", FieldType.STRING), ("value", FieldType.FLOAT64)]
)
N_EVENTS = 4000


class RunningStats(StreamProcessor):
    """Per-sensor count/sum — checkpointable state."""

    def __init__(self, shared):
        super().__init__()
        self.counts = shared.setdefault("counts", {})
        self.sums = shared.setdefault("sums", {})

    def process(self, packet, ctx):
        sensor = packet.get("sensor")
        self.counts[sensor] = self.counts.get(sensor, 0) + 1
        self.sums[sensor] = self.sums.get(sensor, 0.0) + packet.get("value")

    def snapshot_state(self):
        return {"counts": dict(self.counts), "sums": dict(self.sums)}

    def restore_state(self, state):
        self.counts.clear()
        self.counts.update(state["counts"])
        self.sums.clear()
        self.sums.update(state["sums"])

    def output_schema(self, stream):
        raise KeyError(stream)


def write_events(path):
    with open(path, "w", encoding="utf-8") as fh:
        for i in range(N_EVENTS):
            fh.write(
                json.dumps({"sensor": f"s{i % 4}", "value": float(i % 100)}) + "\n"
            )


def build_graph(path, shared, rate=None):
    g = StreamProcessingGraph(
        "recovery-demo",
        config=NeptuneConfig(buffer_capacity=2048, buffer_max_delay=0.004),
    )
    src = JsonLinesFileSource(path, EVENT)
    if rate:
        g.add_source("events", lambda: ThrottledSource(src, rate=rate))
    else:
        g.add_source("events", lambda: src)
    g.add_processor("stats", lambda: RunningStats(shared))
    g.link("events", "stats")
    return g


def main():
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "events.jsonl")
        write_events(path)

        # Phase 1: run slowly, checkpoint mid-stream, crash.
        shared = {}
        import time

        with NeptuneRuntime() as rt:
            handle = rt.submit(build_graph(path, shared, rate=2000))
            time.sleep(0.8)  # ~1600 of 4000 events processed
            ckpt = handle.checkpoint()
            ckpt_path = os.path.join(tmp, "job.ckpt")
            ckpt.save(ckpt_path)
            processed_at_ckpt = ckpt.state_for("stats", 0)
            print(
                "checkpoint taken at "
                f"{sum(processed_at_ckpt['counts'].values())} events; "
                "simulating a crash (hard stop, progress since the "
                "checkpoint is discarded)"
            )
            # Hard crash: no graceful drain of this runtime's state.

        # Phase 2: recover from the persisted checkpoint in a new runtime.
        from repro.core.checkpoint import Checkpoint

        restored = Checkpoint.load(ckpt_path)
        shared2 = {}
        with NeptuneRuntime() as rt:
            handle = rt.submit(build_graph(path, shared2), restore_from=restored)
            ok = handle.await_completion(timeout=120)
        total = sum(shared2["counts"].values())
        print(f"recovered run completed: {ok}")
        print(f"total events accounted for: {total} (expected {N_EVENTS})")
        for sensor in sorted(shared2["counts"]):
            print(
                f"  {sensor}: count={shared2['counts'][sensor]}, "
                f"mean={shared2['sums'][sensor] / shared2['counts'][sensor]:.2f}"
            )
        assert total == N_EVENTS, (
            "exactly-once recovery: restored counts + replay from the "
            "checkpointed file position must cover every event exactly once"
        )


if __name__ == "__main__":
    main()
