#!/usr/bin/env python3
"""True multi-process deployment: separate OS processes over TCP.

The paper's deployment unit is a Granules resource per machine.  This
example launches two worker *processes* (their own interpreters — no
shared GIL), each hosting part of the Fig. 1 relay.  Stream frames flow
worker-to-worker over TCP; a coordinator in this parent process drives
start/drain/metrics through each worker's control port.

Run:  python examples/multiprocess_cluster.py
"""

import json
import subprocess
import sys
import tempfile
import os

from repro.core import StreamProcessingGraph
from repro.core.control import RemoteDistributedJob, RemoteWorker, plan_to_json
from repro.core.distributed import round_robin_plan
from repro.core.graph import descriptor_factory

TOTAL = 5_000
DATA_PORTS = (47311, 47312)
CONTROL_PORTS = (47321, 47322)


def build_descriptor() -> dict:
    graph = StreamProcessingGraph("multiprocess-relay")
    graph.add_source(
        "sender",
        descriptor_factory(
            "repro.workloads.operators:CountingSource",
            total=TOTAL,
            payload_size=100,
        ),
    )
    graph.add_processor(
        "relay", descriptor_factory("repro.workloads.operators:RelayProcessor")
    )
    graph.add_processor(
        "receiver",
        descriptor_factory("repro.workloads.operators:CollectingSink"),
    )
    graph.link("sender", "relay").link("relay", "receiver")
    return graph.to_descriptor()


def build_graph():
    return StreamProcessingGraph.from_descriptor(build_descriptor())


def main():
    desc = build_descriptor()
    graph = StreamProcessingGraph.from_descriptor(desc)
    plan = round_robin_plan(graph, n_workers=2)
    endpoints = {str(w): ["127.0.0.1", DATA_PORTS[w]] for w in range(2)}

    with tempfile.TemporaryDirectory() as tmp:
        desc_path = os.path.join(tmp, "graph.json")
        with open(desc_path, "w", encoding="utf-8") as fh:
            json.dump(desc, fh)

        procs = []
        try:
            for worker_id in range(2):
                procs.append(
                    subprocess.Popen(
                        [
                            sys.executable,
                            "-m",
                            "repro.core.control",
                            "--descriptor", desc_path,
                            "--worker-id", str(worker_id),
                            "--plan", plan_to_json(plan),
                            "--endpoints", json.dumps(endpoints),
                            "--listen-port", str(DATA_PORTS[worker_id]),
                            "--control-port", str(CONTROL_PORTS[worker_id]),
                        ]
                    )
                )
            print("launched worker processes:", [p.pid for p in procs])

            proxies = [RemoteWorker("127.0.0.1", port) for port in CONTROL_PORTS]
            job = RemoteDistributedJob(proxies)
            ok = job.await_completion(timeout=180)
            print(f"coordinated drain complete: {ok}")

            for p in procs:
                p.wait(timeout=30)
        finally:
            for p in procs:
                if p.poll() is None:
                    p.kill()
    print("worker processes exited:", [p.returncode for p in procs])
    assert ok
    assert all(p.returncode == 0 for p in procs)


if __name__ == "__main__":
    main()
