#!/usr/bin/env python3
"""True multi-process deployment via the ``repro.cluster`` coordinator.

The paper's deployment unit is a Granules resource per machine.  This
example shards the Fig. 1 relay across two worker *processes* (their
own interpreters — no shared GIL) and drives them from this parent
process: the :class:`~repro.cluster.ClusterCoordinator` plans the
shards, reserves ports, spawns the workers (``multiprocessing`` spawn
context), wires their data planes together, and coordinates the global
drain through each worker's control port.

Stream frames flow worker-to-worker over Unix-domain sockets here
(``fabric="unix"`` — same framing/ack/replay protocol as TCP, no TCP
stack in the path); switch to ``fabric="tcp"`` for the loopback-TCP
data plane, which is what a multi-host deployment would use.

The same topology runs from the command line:

    python -m repro.cli cluster launch examples/descriptors/fig1_relay.json \
        --workers 2 --fabric unix

Run:  python examples/multiprocess_cluster.py
"""

from repro.cluster import ClusterCoordinator
from repro.core import StreamProcessingGraph
from repro.core.graph import descriptor_factory

TOTAL = 5_000


def build_graph() -> StreamProcessingGraph:
    graph = StreamProcessingGraph("multiprocess-relay")
    graph.add_source(
        "sender",
        descriptor_factory(
            "repro.workloads.operators:CountingSource",
            total=TOTAL,
            payload_size=100,
        ),
    )
    graph.add_processor(
        "relay", descriptor_factory("repro.workloads.operators:RelayProcessor")
    )
    graph.add_processor(
        "receiver",
        descriptor_factory("repro.workloads.operators:CollectingSink"),
    )
    graph.link("sender", "relay").link("relay", "receiver")
    return graph


def main():
    coordinator = ClusterCoordinator(build_graph(), n_workers=2, fabric="unix")
    try:
        coordinator.launch(connect_timeout=120)
        for entry in coordinator.status():
            host, port = entry["endpoint"]
            print(
                f"worker {entry['worker_id']} pid={entry['pid']} data={host}"
                + (f":{port}" if port else "")
            )
        ok = coordinator.await_completion(timeout=180)
        print(f"coordinated drain complete: {ok}")
        metrics = coordinator.metrics()
        delivered = metrics["receiver"]["packets_in"]
        print(f"delivered {delivered}/{TOTAL} packets across the shard fabric")
        assert ok
        assert delivered == TOTAL
    finally:
        coordinator.terminate()


if __name__ == "__main__":
    main()
