#!/usr/bin/env python3
"""Quickstart: a three-stage NEPTUNE pipeline in ~60 lines.

Builds the paper's Fig. 1 message relay — source → relay → sink — runs
it on the local runtime, and prints the per-operator metrics.

Run:  python examples/quickstart.py
"""

from repro.core import (
    FieldType,
    NeptuneConfig,
    NeptuneRuntime,
    PacketSchema,
    StreamProcessingGraph,
    StreamProcessor,
    StreamSource,
)

# 1. Declare what a stream packet looks like (§III-A1).
READING = PacketSchema(
    [
        ("seq", FieldType.INT64),
        ("temperature", FieldType.FLOAT64),
    ]
)


# 2. A stream source ingests external data (§III-A2).
class TemperatureSource(StreamSource):
    def __init__(self, total=10_000):
        super().__init__()
        self.total = total
        self.i = 0

    def generate(self, ctx):
        if self.i >= self.total:
            ctx.finish()  # stream exhausted
            return
        pkt = ctx.new_packet()  # pooled packet (object reuse, §III-B3)
        pkt.set("seq", self.i)
        pkt.set("temperature", 20.0 + (self.i % 100) / 10.0)
        ctx.emit(pkt)  # buffered, batched, backpressured
        self.i += 1

    def output_schema(self, stream):
        return READING


# 3. Stream processors hold the per-packet domain logic (§III-A3).
class CelsiusToFahrenheit(StreamProcessor):
    def process(self, packet, ctx):
        out = ctx.new_packet()
        out.set("seq", packet.get("seq"))
        out.set("temperature", packet.get("temperature") * 9 / 5 + 32)
        ctx.emit(out)

    def output_schema(self, stream):
        return READING


class Averager(StreamProcessor):
    def __init__(self):
        super().__init__()
        self.count = 0
        self.total = 0.0

    def process(self, packet, ctx):
        self.count += 1
        self.total += packet.get("temperature")

    def output_schema(self, stream):
        raise KeyError(stream)  # terminal stage: no outputs


def build_graph(averager=None):
    # 4. Compose the stream-processing graph (§III-A7).
    graph = StreamProcessingGraph(
        "quickstart",
        config=NeptuneConfig(buffer_capacity=64 * 1024, buffer_max_delay=0.005),
    )
    if averager is None:
        averager = Averager()
    graph.add_source("thermometer", TemperatureSource)
    graph.add_processor("convert", CelsiusToFahrenheit)
    graph.add_processor("average", lambda: averager)
    graph.link("thermometer", "convert").link("convert", "average")
    return graph


def main():
    averager = Averager()
    graph = build_graph(averager)

    # 5. Submit to the runtime and wait for the source to drain.
    with NeptuneRuntime() as runtime:
        handle = runtime.submit(graph)
        ok = handle.await_completion(timeout=60)
        print(f"completed: {ok}; job state: {handle.state.value}")
        for op, m in sorted(handle.metrics().items()):
            print(
                f"  {op:12s} in={m['packets_in']:>6} out={m['packets_out']:>6} "
                f"batches={m['batches_in']:>4}"
            )
    print(f"mean temperature: {averager.total / averager.count:.2f} F "
          f"over {averager.count} readings")
    assert averager.count == 10_000


if __name__ == "__main__":
    main()
