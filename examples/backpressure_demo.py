#!/usr/bin/env python3
"""Backpressure in action (paper §III-B4, Figs. 3-4).

A fast source feeds a deliberately slow sink through a relay.  Without
flow control the relay's queue would grow without bound (Storm's
failure mode in Fig. 7); with NEPTUNE's watermark gates the source is
throttled to the sink's pace and nothing is dropped.

The demo varies the sink's per-packet sleep in steps (0 → 1 → 2 ms,
like Fig. 4's staircase) and prints the source emission rate observed
in each phase.

Run:  python examples/backpressure_demo.py
"""

import time

from repro.core import NeptuneConfig, NeptuneRuntime, StreamProcessingGraph
from repro.workloads import (
    CountingSource,
    RelayProcessor,
    VariableRateProcessor,
)


def build_graph(source=None, sink=None):
    if source is None:
        source = CountingSource(total=None, payload_size=100)  # endless
    if sink is None:
        sink = VariableRateProcessor([0.0])

    graph = StreamProcessingGraph(
        "backpressure-demo",
        config=NeptuneConfig(
            buffer_capacity=1024,
            buffer_max_delay=0.002,
            inbound_high_watermark=8 * 1024,
            inbound_low_watermark=2 * 1024,
        ),
    )
    graph.add_source("source", lambda: source)
    graph.add_processor("relay", RelayProcessor)
    graph.add_processor("slow-sink", lambda: sink)
    graph.link("source", "relay").link("relay", "slow-sink")
    return graph


def main():
    sleep_holder = [0.0]
    source = CountingSource(total=None, payload_size=100)  # endless
    sink = VariableRateProcessor(sleep_holder)
    graph = build_graph(source, sink)

    phases = [(0.0, 1.0), (0.001, 2.0), (0.002, 2.0), (0.0, 1.0)]
    with NeptuneRuntime() as runtime:
        handle = runtime.submit(graph)
        print(f"{'sink sleep':>12} {'source rate':>14} {'processed rate':>15}")
        for sleep, duration in phases:
            sleep_holder[0] = sleep
            time.sleep(0.3)  # settle into the new regime
            e0, p0 = source.emitted, sink.processed
            time.sleep(duration)
            src_rate = (source.emitted - e0) / duration
            sink_rate = (sink.processed - p0) / duration
            print(
                f"{sleep * 1000:>9.0f} ms {src_rate:>11.0f}/s {sink_rate:>12.0f}/s"
            )
        handle.stop(timeout=60)

    print(
        f"\nemitted {source.emitted}, processed {sink.processed} "
        "— drained, nothing dropped"
    )
    assert sink.processed == source.emitted


if __name__ == "__main__":
    main()
