#!/usr/bin/env python3
"""Regenerate the paper's full evaluation on the simulated cluster.

Runs every table/figure driver at reduced sweep sizes (a few minutes
total) and prints the same series the paper plots.  The benchmarks
under ``benchmarks/`` run the same drivers individually; this example
is the one-command tour.

Run:  python examples/paper_evaluation.py [--quick]
"""

import sys

from repro.sim import experiments as exp
from repro.stats import summarize


def main(quick: bool = True):
    duration = 1.0 if quick else 2.0
    max_events = 60_000 if quick else 150_000

    print("=" * 72)
    print("Figure 2 — throughput/latency/bandwidth vs buffer size")
    rows = exp.fig2_buffer_sweep(
        message_sizes=(50, 1024, 10240) if quick else exp.FIG2_MESSAGE_SIZES,
        duration=duration,
        max_events=max_events,
    )
    print(exp.format_rows(rows))

    print("=" * 72)
    print("Table I — context switches, batched vs individual scheduling")
    print(exp.format_rows(exp.table1_context_switches(repeats=3, duration=duration)))

    print("=" * 72)
    print("Object reuse — GC time as % of processing (paper: 8.63% → 0.79%)")
    print(exp.format_rows(exp.gc_object_reuse(duration=duration)))

    print("=" * 72)
    print("Figure 4 — backpressure staircase (source tracks stage-C rate)")
    print(exp.format_rows(exp.fig4_backpressure()))

    print("=" * 72)
    print("Figure 5 — cumulative throughput vs concurrent jobs (50 nodes)")
    print(exp.format_rows(exp.fig5_concurrent_jobs()))

    print("=" * 72)
    print("Figure 6 — cumulative throughput vs cluster size (50 jobs)")
    print(exp.format_rows(exp.fig6_cluster_size()))

    print("=" * 72)
    print("Figure 7 — NEPTUNE vs Storm message relay")
    print(
        exp.format_rows(
            exp.fig7_neptune_vs_storm(
                message_sizes=(50, 1024, 10240) if quick else exp.FIG7_MESSAGE_SIZES,
                duration=duration,
                max_events=max_events,
            )
        )
    )

    print("=" * 72)
    print("Figure 9 — manufacturing monitoring, NEPTUNE vs Storm")
    print(exp.format_rows(exp.fig9_manufacturing()))

    print("=" * 72)
    print("Figure 10 — cluster-wide resource consumption (50 jobs)")
    fig10 = exp.fig10_resource_usage()
    print(f"  NEPTUNE CPU per node: {summarize(fig10['neptune_cpu_pct'])}")
    print(f"  Storm   CPU per node: {summarize(fig10['storm_cpu_pct'])}")
    print(f"  one-tailed t-test (Storm > NEPTUNE): p = {fig10['cpu_one_tailed_p']:.2e}")
    print(f"  NEPTUNE mem per node: {summarize(fig10['neptune_mem_pct'])}")
    print(f"  Storm   mem per node: {summarize(fig10['storm_mem_pct'])}")
    print(f"  two-tailed t-test (memory): p = {fig10['mem_two_tailed_p']:.4f}")

    print("=" * 72)
    print("Headline numbers (paper §VI)")
    head = exp.headline_numbers()
    print(f"  single pipeline: {head['single_pipeline_msg_s'] / 1e6:.2f} M msg/s "
          f"(paper: ~2 M)")
    print(f"  bandwidth:       {head['single_pipeline_bandwidth_gbps']:.3f} Gbps "
          f"(paper: 0.937)")
    print(f"  50-node cluster: {head['cluster_cumulative_msg_s'] / 1e6:.0f} M msg/s "
          f"(paper: ~100 M)")
    print(f"  p99 latency @10KB: {head['latency_p99_ms_10KB']:.1f} ms "
          f"(paper: ≤87.8 ms)")
    print(f"  manufacturing:   {head['manufacturing_cumulative_msg_s'] / 1e6:.1f} M msg/s "
          f"(paper: ~15 M)")


if __name__ == "__main__":
    main(quick="--full" not in sys.argv)
