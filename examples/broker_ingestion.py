#!/usr/bin/env python3
"""Broker-based ingestion: the paper's archetypal deployment.

§III-A2: "Typical implementations of stream sources may read data from
message brokers and message queues.  A NEPTUNE stream source can ingest
streams using a pull-based approach from an IoT gateway."

An IoT gateway publishes sensor readings into a partitioned topic; a
NEPTUNE job consumes it with two parallel BrokerSource instances
(partition-sharing), enriches the readings, and publishes results to an
output topic.  A second, independent consumer group replays the same
input topic from offset zero — broker retention makes streams
replayable.  Finally the job checkpoint carries the consumer offsets,
so recovery does not re-ingest.

Run:  python examples/broker_ingestion.py
"""

from repro.broker import BrokerSink, BrokerSource, MessageBroker
from repro.core import (
    NeptuneConfig,
    NeptuneRuntime,
    PacketCodec,
    StreamProcessingGraph,
)
from repro.workloads.iot import SENSOR_SCHEMA, SensorFleet

N_READINGS = 5_000


def gateway_publishes(broker: MessageBroker) -> None:
    """The IoT gateway: batches of fleet telemetry into the topic."""
    codec = PacketCodec(SENSOR_SCHEMA)
    fleet = SensorFleet(n_sensors=16, seed=5)
    broker.publish_many(
        "telemetry",
        (
            (pkt.get("sensor_id").encode(), codec.encode(pkt))
            for pkt in fleet.packets(N_READINGS)
        ),
    )


def build_graph(broker=None):
    if broker is None:
        broker = MessageBroker()
        broker.create_topic("telemetry", partitions=4)
        broker.create_topic("enriched", partitions=2)

    graph = StreamProcessingGraph(
        "broker-ingestion",
        config=NeptuneConfig(buffer_capacity=16 * 1024, buffer_max_delay=0.005),
    )
    graph.add_source(
        "ingest",
        lambda: BrokerSource(
            broker, "telemetry", group="enricher", schema=SENSOR_SCHEMA,
            stop_at_end=True,
        ),
        parallelism=2,  # two instances share the 4 partitions
    )
    graph.add_processor(
        "publish",
        lambda: BrokerSink(broker, "enriched", SENSOR_SCHEMA, key_field="sensor_id"),
    )
    graph.link("ingest", "publish", partitioning="round-robin")
    return graph


def main():
    broker = MessageBroker()
    broker.create_topic("telemetry", partitions=4)
    broker.create_topic("enriched", partitions=2)
    gateway_publishes(broker)
    print(f"gateway published {N_READINGS} readings into 4 partitions")

    graph = build_graph(broker)

    with NeptuneRuntime() as runtime:
        handle = runtime.submit(graph)
        ok = handle.await_completion(timeout=120)
        ckpt = handle.checkpoint()
    print(f"job completed: {ok}")
    print(f"consumer lag after run: {broker.lag('enricher', 'telemetry')}")
    out_total = sum(len(p) for p in broker.topic("enriched"))
    print(f"records published to 'enriched': {out_total}")
    offsets = [
        ckpt.state_for("ingest", i)["offsets"] for i in range(2)
    ]
    print(f"checkpointed consumer offsets: {offsets}")

    # An independent group replays the same topic from scratch.
    replayed = sum(
        len(broker.poll("auditor", "telemetry", p, max_messages=10_000))
        for p in range(4)
    )
    print(f"independent 'auditor' group replayed {replayed} readings")

    assert out_total == N_READINGS
    assert replayed == N_READINGS
    assert broker.lag("enricher", "telemetry") == 0


if __name__ == "__main__":
    main()
