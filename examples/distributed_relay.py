#!/usr/bin/env python3
"""The Fig. 1 relay deployed across multiple Granules resources.

"The sender and receiver are deployed in the same Granules resource
whereas the message relay was deployed in a different resource" — here
each worker is its own resource with its own thread pools; frames cross
real TCP sockets (checksummed, sequence-verified), and backpressure
propagates through the kernel's TCP flow control exactly as §III-B4
describes.

Run:  python examples/distributed_relay.py
"""

import time

from repro.core import NeptuneConfig, StreamProcessingGraph
from repro.core.distributed import DistributedJob, round_robin_plan
from repro.workloads import CollectingSink, CountingSource, RelayProcessor

TOTAL = 10_000


def build_graph(store=None):
    if store is None:
        store = []
    graph = StreamProcessingGraph(
        "distributed-relay",
        config=NeptuneConfig(buffer_capacity=32 * 1024, buffer_max_delay=0.005),
    )
    graph.add_source("sender", lambda: CountingSource(total=TOTAL, payload_size=100))
    graph.add_processor("relay", RelayProcessor)
    graph.add_processor("receiver", lambda: CollectingSink(store))
    graph.link("sender", "relay").link("relay", "receiver")
    return graph


def main():
    store = []
    graph = build_graph(store)

    plan = round_robin_plan(graph, n_workers=2)
    print("deployment plan:")
    for worker in range(plan.n_workers):
        print(f"  resource {worker}: {plan.instances_on(worker)}")

    job = DistributedJob(graph, n_workers=2)
    for w in job.workers:
        print(f"  resource {w.worker_id} listening on {w.address[0]}:{w.address[1]}")
    t0 = time.monotonic()
    job.start()
    ok = job.await_completion(timeout=120)
    elapsed = time.monotonic() - t0

    metrics = job.metrics()
    print(f"\ncompleted: {ok} in {elapsed:.1f}s")
    print(f"relayed {metrics['relay']['packets_in']} packets over TCP")
    print(f"receiver got {len(store)} packets, in order: {store == list(range(TOTAL))}")
    print(f"throughput: {len(store) / elapsed:,.0f} packets/s (pure-Python, 1 core)")
    assert store == list(range(TOTAL))


if __name__ == "__main__":
    main()
