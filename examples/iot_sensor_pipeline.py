#!/usr/bin/env python3
"""IoT sensing pipeline: fleet telemetry → keyed anomaly detection.

The paper's motivating scenario (§I): many small (~100 B) sensor
readings that must be processed in real time.  This example runs:

    sensor fleet ──(fields partitioning by sensor_id)──▶ detector x4 ──▶ alerts

- The detector is *stateful per sensor* (a sliding window of recent
  temperatures), so the link uses fields partitioning (§III-A6) to pin
  each sensor to one detector instance.
- Detectors emit an alert packet when a reading deviates more than
  3 sigma from the sensor's one-minute window.

Run:  python examples/iot_sensor_pipeline.py
"""

import statistics

from repro.core import (
    FieldType,
    NeptuneConfig,
    NeptuneRuntime,
    PacketSchema,
    SlidingWindow,
    StreamProcessingGraph,
    StreamProcessor,
    StreamSource,
)
from repro.workloads.iot import SENSOR_SCHEMA, SensorFleet

ALERT = PacketSchema(
    [
        ("ts", FieldType.INT64),
        ("sensor_id", FieldType.STRING),
        ("value", FieldType.FLOAT64),
        ("zscore", FieldType.FLOAT64),
    ]
)

N_READINGS = 20_000
N_SENSORS = 32


class FleetSource(StreamSource):
    """Replays the synthetic fleet, injecting a few hot readings."""

    def __init__(self):
        super().__init__()
        fleet = SensorFleet(n_sensors=N_SENSORS, period_ms=1000, seed=42)
        self._packets = fleet.packets(N_READINGS)
        self.count = 0

    def generate(self, ctx):
        try:
            pkt = next(self._packets)
        except StopIteration:
            ctx.finish()
            return
        self.count += 1
        if self.count % 3001 == 0:  # inject an anomaly (~6 total)
            pkt.set("temperature", 95.0)
        out = ctx.new_packet()
        out.copy_from(pkt)
        ctx.emit(out)

    def output_schema(self, stream):
        return SENSOR_SCHEMA


class AnomalyDetector(StreamProcessor):
    """Per-sensor sliding-window z-score detector."""

    WINDOW_SECONDS = 60.0

    def __init__(self):
        super().__init__()
        self._windows: dict[str, SlidingWindow] = {}

    def input_schema(self, stream):
        # Static contract (NEPG113): the detector reads these three
        # fields; upstream must produce (at least) them.
        return PacketSchema(
            [
                ("ts", FieldType.INT64),
                ("sensor_id", FieldType.STRING),
                ("temperature", FieldType.FLOAT64),
            ]
        )

    def process(self, packet, ctx):
        sensor = packet.get("sensor_id")
        temp = packet.get("temperature")
        window = self._windows.setdefault(sensor, SlidingWindow(self.WINDOW_SECONDS))
        values = list(window.values())
        if len(values) >= 10:
            mean = statistics.fmean(values)
            std = statistics.stdev(values)
            if std > 0 and abs(temp - mean) / std > 3.0:
                alert = ctx.new_packet()
                alert.set("ts", packet.get("ts"))
                alert.set("sensor_id", sensor)
                alert.set("value", temp)
                alert.set("zscore", (temp - mean) / std)
                ctx.emit(alert)
        window.add(packet.get("ts") / 1000.0, temp)

    def output_schema(self, stream):
        return ALERT


class AlertSink(StreamProcessor):
    def __init__(self, store):
        super().__init__()
        self.store = store

    def process(self, packet, ctx):
        self.store.append(packet.to_dict())

    def output_schema(self, stream):
        raise KeyError(stream)


def build_graph(alerts=None):
    if alerts is None:
        alerts = []
    graph = StreamProcessingGraph(
        "iot-anomaly",
        config=NeptuneConfig(buffer_capacity=32 * 1024, buffer_max_delay=0.005),
    )
    graph.add_source("fleet", FleetSource)
    graph.add_processor("detector", AnomalyDetector, parallelism=4)
    graph.add_processor("alerts", lambda: AlertSink(alerts))
    # Keyed state needs key affinity: fields partitioning on sensor_id.
    graph.link(
        "fleet",
        "detector",
        partitioning={"scheme": "fields", "fields": ["sensor_id"]},
    )
    graph.link("detector", "alerts")
    return graph


def main():
    alerts = []
    graph = build_graph(alerts)

    with NeptuneRuntime() as runtime:
        handle = runtime.submit(graph)
        ok = handle.await_completion(timeout=120)
        metrics = handle.metrics()
    print(f"completed: {ok}")
    print(
        f"processed {metrics['detector']['packets_in']} readings "
        f"across {metrics['detector']['instances']} detector instances"
    )
    print(f"raised {len(alerts)} alerts:")
    for a in alerts:
        print(
            f"  t={a['ts']} {a['sensor_id']}: {a['value']:.1f}°C "
            f"(z={a['zscore']:+.1f})"
        )
    assert metrics["detector"]["packets_in"] == N_READINGS
    assert alerts, "expected the injected anomalies to be detected"


if __name__ == "__main__":
    main()
