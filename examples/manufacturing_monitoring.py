#!/usr/bin/env python3
"""The paper's manufacturing-equipment monitoring application (Fig. 8).

"The system ingests a continuous stream of readings captured by
sensors.  ... Three of these sensor readings correspond to the states
of three chemical additive sensors whereas the other three readings
capture the states of the corresponding valves.  When the state of a
sensor changes, the valves actuate resulting in a change of its state.
The objective of the job is to monitor the delay between the sensor
state change and actuation of the corresponding valve over a 24-hour
time window."

Four stages, mirroring Fig. 8:

    ingest ─▶ state-change detector x3 ─▶ delay matcher x3 ─▶ monitor

The detector is partitioned by sensor index so each matcher sees a
consistent per-sensor event order.  The link from ingest compresses
well (low-entropy telemetry, §III-B5), so compression is enabled there.

Run:  python examples/manufacturing_monitoring.py
"""

from repro.core import (
    FieldType,
    NeptuneConfig,
    NeptuneRuntime,
    PacketSchema,
    SlidingWindow,
    StreamProcessingGraph,
    StreamProcessor,
    StreamSource,
)
from repro.workloads.debs import MANUFACTURING_SCHEMA, ManufacturingStream

N_RECORDS = 40_000
WINDOW_HOURS = 24.0

#: A detected state-change or actuation event for one sensor.
EVENT = PacketSchema(
    [
        ("ts", FieldType.INT64),
        ("sensor", FieldType.INT32),
        ("kind", FieldType.STRING),  # "sensor" | "valve"
        ("state", FieldType.BOOL),
    ]
)

#: A matched sensor→valve actuation delay.
DELAY = PacketSchema(
    [
        ("sensor", FieldType.INT32),
        ("changed_ms", FieldType.INT64),
        ("actuated_ms", FieldType.INT64),
        ("delay_ms", FieldType.INT64),
    ]
)


class TelemetrySource(StreamSource):
    """Ingests the (synthetic) DEBS equipment telemetry."""

    def __init__(self):
        super().__init__()
        self.stream = ManufacturingStream(
            period_ms=10, state_change_prob=0.004, seed=2016
        )
        self._packets = self.stream.packets(N_RECORDS)

    def generate(self, ctx):
        try:
            pkt = next(self._packets)
        except StopIteration:
            ctx.finish()
            return
        out = ctx.new_packet()
        out.copy_from(pkt)
        ctx.emit(out)

    def output_schema(self, stream):
        return MANUFACTURING_SCHEMA


class StateChangeDetector(StreamProcessor):
    """Stage 2: turn level telemetry into edge events (per sensor).

    The paper's job uses only 6 of the 66 fields + the timestamp; this
    stage performs that projection as well.
    """

    def __init__(self):
        super().__init__()
        self._last: dict[tuple[int, str], bool] = {}

    def process(self, packet, ctx):
        ts = packet.get("ts")
        for sensor in range(3):
            for kind, fname in (
                ("sensor", f"additive_sensor_{sensor + 1}"),
                ("valve", f"valve_{sensor + 1}"),
            ):
                state = packet.get(fname)
                key = (sensor, kind)
                if key in self._last and self._last[key] != state:
                    event = ctx.new_packet()
                    event.set("ts", ts)
                    event.set("sensor", sensor)
                    event.set("kind", kind)
                    event.set("state", state)
                    ctx.emit(event)
                self._last[key] = state

    def output_schema(self, stream):
        return EVENT


class DelayMatcher(StreamProcessor):
    """Stage 3: pair each sensor change with its valve actuation."""

    def __init__(self):
        super().__init__()
        self._pending: dict[int, int] = {}  # sensor → change ts

    def process(self, packet, ctx):
        sensor = packet.get("sensor")
        if packet.get("kind") == "sensor":
            self._pending[sensor] = packet.get("ts")
            return
        changed = self._pending.pop(sensor, None)
        if changed is None:
            return  # valve event without a tracked change (startup)
        out = ctx.new_packet()
        out.set("sensor", sensor)
        out.set("changed_ms", changed)
        out.set("actuated_ms", packet.get("ts"))
        out.set("delay_ms", packet.get("ts") - changed)
        ctx.emit(out)

    def output_schema(self, stream):
        return DELAY


class DelayMonitor(StreamProcessor):
    """Stage 4: per-sensor delay statistics over a 24-hour window."""

    def __init__(self, results):
        super().__init__()
        self.windows = {s: SlidingWindow(WINDOW_HOURS * 3600.0) for s in range(3)}
        self.results = results

    def process(self, packet, ctx):
        sensor = packet.get("sensor")
        self.windows[sensor].add(
            packet.get("actuated_ms") / 1000.0, packet.get("delay_ms")
        )
        self.results.append(packet.to_dict())

    def output_schema(self, stream):
        raise KeyError(stream)


def build_graph(monitor=None):
    if monitor is None:
        monitor = DelayMonitor([])
    graph = StreamProcessingGraph(
        "manufacturing-monitoring",
        config=NeptuneConfig(buffer_capacity=128 * 1024, buffer_max_delay=0.010),
    )
    graph.add_source("ingest", TelemetrySource)
    graph.add_processor("detect", StateChangeDetector)
    graph.add_processor("match", DelayMatcher, parallelism=3)
    graph.add_processor("monitor", lambda: monitor)
    # Telemetry is low-entropy → compress this high-volume link.
    graph.link("ingest", "detect", compression=True)
    graph.link(
        "detect", "match", partitioning={"scheme": "fields", "fields": ["sensor"]}
    )
    graph.link("match", "monitor")
    return graph


def main():
    results = []
    monitor = DelayMonitor(results)
    graph = build_graph(monitor)

    with NeptuneRuntime() as runtime:
        handle = runtime.submit(graph)
        ok = handle.await_completion(timeout=180)
        metrics = handle.metrics()

    print(f"completed: {ok}")
    print(f"telemetry records: {metrics['detect']['packets_in']}")
    print(f"edge events:       {metrics['match']['packets_in']}")
    print(f"matched delays:    {len(results)}")
    for sensor in range(3):
        window = monitor.windows[sensor]
        if len(window):
            mean = window.aggregate(lambda v: sum(v) / len(v))
            print(
                f"  additive sensor {sensor + 1}: {len(window)} actuations, "
                f"mean delay {mean:.1f} ms over the 24h window"
            )
    # Wire-level check: the compressed ingest link moved fewer bytes
    # than the serialized telemetry.
    print(
        f"ingest bytes serialized: {metrics['ingest']['bytes_out']}; "
        f"received on the wire: {metrics['detect']['bytes_in']} (compressed)"
    )
    assert metrics["detect"]["packets_in"] == N_RECORDS
    assert results, "expected actuation delays"
    assert metrics["detect"]["bytes_in"] < metrics["ingest"]["bytes_out"]


if __name__ == "__main__":
    main()
