"""Descriptive statistics for benchmark reporting."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy import stats


@dataclass(frozen=True)
class Summary:
    """Five-number-style summary of one metric's samples."""

    n: int
    mean: float
    std: float
    minimum: float
    p50: float
    p95: float
    p99: float
    maximum: float

    def __str__(self) -> str:
        return (
            f"n={self.n} mean={self.mean:.6g} std={self.std:.6g} "
            f"min={self.minimum:.6g} p50={self.p50:.6g} "
            f"p95={self.p95:.6g} p99={self.p99:.6g} max={self.maximum:.6g}"
        )


def summarize(samples: Sequence[float]) -> Summary:
    """Summarize samples (requires at least one observation)."""
    arr = np.asarray(samples, dtype=float)
    if arr.size == 0:
        raise ValueError("cannot summarize an empty sample")
    return Summary(
        n=int(arr.size),
        mean=float(arr.mean()),
        std=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
        minimum=float(arr.min()),
        p50=float(np.percentile(arr, 50)),
        p95=float(np.percentile(arr, 95)),
        p99=float(np.percentile(arr, 99)),
        maximum=float(arr.max()),
    )


def confidence_interval(
    samples: Sequence[float], confidence: float = 0.95
) -> tuple[float, float]:
    """Two-sided t-based confidence interval for the mean."""
    if not 0 < confidence < 1:
        raise ValueError(f"confidence must be in (0,1): {confidence}")
    arr = np.asarray(samples, dtype=float)
    if arr.size < 2:
        raise ValueError("confidence interval needs at least 2 observations")
    mean = float(arr.mean())
    se = float(arr.std(ddof=1)) / math.sqrt(arr.size)
    t_crit = float(stats.t.ppf((1 + confidence) / 2, arr.size - 1))
    return mean - t_crit * se, mean + t_crit * se
