"""Statistical procedures used by the paper's evaluation.

- :func:`tukey_hsd` — Tukey's Honest Significant Difference multiple
  comparison (the compression study, §III-B5: "results were
  statistically validated using a Tukey's HSD multiple comparison
  procedure").
- :func:`t_test_ind` — one/two-tailed independent two-sample t-tests
  (Fig. 10's CPU and memory comparisons).
- :mod:`repro.stats.descriptive` — means, std-devs, percentiles and
  confidence intervals for benchmark reporting.
"""

from repro.stats.tukey import TukeyResult, PairwiseComparison, tukey_hsd
from repro.stats.anova import AnovaResult, one_way_anova
from repro.stats.ttest import TTestResult, t_test_ind
from repro.stats.descriptive import summarize, Summary, confidence_interval

__all__ = [
    "tukey_hsd",
    "one_way_anova",
    "AnovaResult",
    "TukeyResult",
    "PairwiseComparison",
    "t_test_ind",
    "TTestResult",
    "summarize",
    "Summary",
    "confidence_interval",
]
