"""Independent two-sample t-tests (Fig. 10's statistical validation).

The paper reports "NEPTUNE's CPU consumption is consistently lower ...
(p-value for the one tailed t-test < 0.0001)" and "With respect to
memory consumption, there is no noticeable difference (p-value for the
two-tailed t-test = 0.0863)".  This module wraps the Student/Welch test
with explicit tail handling so the benchmarks can state the same
hypotheses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy import stats


@dataclass(frozen=True)
class TTestResult:
    """Outcome of one t-test."""

    statistic: float
    p_value: float
    df: float
    tail: str
    mean_a: float
    mean_b: float

    def significant(self, alpha: float = 0.05) -> bool:
        """Whether the result rejects H0 at the given alpha."""
        return self.p_value < alpha


def t_test_ind(
    a: Sequence[float],
    b: Sequence[float],
    tail: str = "two-sided",
    equal_var: bool = False,
) -> TTestResult:
    """Independent two-sample t-test of mean(a) vs mean(b).

    Parameters
    ----------
    tail:
        ``"two-sided"``, ``"greater"`` (H1: mean(a) > mean(b)), or
        ``"less"``.
    equal_var:
        False (default) uses Welch's test — the safer choice for the
        heterogeneous-node samples of Fig. 10.
    """
    if tail not in ("two-sided", "greater", "less"):
        raise ValueError(f"unknown tail {tail!r}")
    arr_a = np.asarray(a, dtype=float)
    arr_b = np.asarray(b, dtype=float)
    if arr_a.size < 2 or arr_b.size < 2:
        raise ValueError("each sample needs at least 2 observations")
    res = stats.ttest_ind(arr_a, arr_b, equal_var=equal_var, alternative=tail)
    # Welch-Satterthwaite degrees of freedom for reporting.
    if equal_var:
        df = arr_a.size + arr_b.size - 2
    else:
        va, vb = arr_a.var(ddof=1) / arr_a.size, arr_b.var(ddof=1) / arr_b.size
        denom = 0.0
        if va + vb > 0:
            denom = (va**2 / (arr_a.size - 1)) + (vb**2 / (arr_b.size - 1))
        df = (va + vb) ** 2 / denom if denom > 0 else arr_a.size + arr_b.size - 2
    return TTestResult(
        statistic=float(res.statistic),
        p_value=float(res.pvalue),
        df=float(df),
        tail=tail,
        mean_a=float(arr_a.mean()),
        mean_b=float(arr_b.mean()),
    )
