"""One-way analysis of variance.

Tukey's HSD (``repro.stats.tukey``) controls the family-wise error of
*pairwise* comparisons; the one-way ANOVA F-test answers the prior
question — "do these groups differ at all?" — from the same
between/within variance decomposition.  Offered because a disciplined
replication of the paper's §III-B5 analysis runs the omnibus test
before the HSD table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy import stats


@dataclass(frozen=True)
class AnovaResult:
    """Omnibus F-test outcome."""

    f_statistic: float
    p_value: float
    df_between: int
    df_within: int
    ss_between: float
    ss_within: float

    @property
    def eta_squared(self) -> float:
        """Effect size: fraction of total variance between groups."""
        total = self.ss_between + self.ss_within
        return self.ss_between / total if total > 0 else 0.0

    def significant(self, alpha: float = 0.05) -> bool:
        """Whether the result rejects H0 at the given alpha."""
        return self.p_value < alpha


def one_way_anova(groups: dict[str, Sequence[float]]) -> AnovaResult:
    """Classic fixed-effects one-way ANOVA across named groups."""
    if len(groups) < 2:
        raise ValueError("ANOVA needs at least two groups")
    arrays = {k: np.asarray(v, dtype=float) for k, v in groups.items()}
    for name, arr in arrays.items():
        if arr.size < 2:
            raise ValueError(f"group {name!r} needs at least 2 observations")
    all_values = np.concatenate(list(arrays.values()))
    grand_mean = all_values.mean()
    k = len(arrays)
    n_total = all_values.size

    ss_between = float(
        sum(arr.size * (arr.mean() - grand_mean) ** 2 for arr in arrays.values())
    )
    ss_within = float(
        sum(((arr - arr.mean()) ** 2).sum() for arr in arrays.values())
    )
    df_between = k - 1
    df_within = n_total - k
    ms_between = ss_between / df_between
    ms_within = ss_within / df_within if df_within > 0 else float("nan")
    if ms_within == 0:
        f_stat = float("inf") if ms_between > 0 else 0.0
        p = 0.0 if ms_between > 0 else 1.0
    else:
        f_stat = ms_between / ms_within
        p = float(stats.f.sf(f_stat, df_between, df_within))
    return AnovaResult(
        f_statistic=float(f_stat),
        p_value=min(max(p, 0.0), 1.0),
        df_between=df_between,
        df_within=df_within,
        ss_between=ss_between,
        ss_within=ss_within,
    )
