"""Tukey's Honest Significant Difference multiple-comparison procedure.

Given k independent groups, performs a one-way ANOVA-style decomposition
and tests every pairwise mean difference against the studentized-range
distribution, controlling the family-wise error rate.  This is the
procedure the paper applies to the compression study's throughput /
latency / bandwidth samples (§III-B5).

Implemented from the standard construction (unequal group sizes use the
Tukey-Kramer adjustment); the studentized-range quantiles come from
``scipy.stats.studentized_range``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy.stats import studentized_range


@dataclass(frozen=True)
class PairwiseComparison:
    """One Tukey pairwise test."""

    group_a: str
    group_b: str
    mean_diff: float  # mean(a) - mean(b)
    se: float
    q_statistic: float
    p_value: float
    ci_low: float
    ci_high: float
    significant: bool


@dataclass(frozen=True)
class TukeyResult:
    """Full HSD table."""

    groups: tuple[str, ...]
    means: dict
    mse: float
    df_error: int
    alpha: float
    comparisons: tuple[PairwiseComparison, ...]

    def comparison(self, a: str, b: str) -> PairwiseComparison:
        """Look up the (a, b) or (b, a) comparison."""
        for c in self.comparisons:
            if {c.group_a, c.group_b} == {a, b}:
                return c
        raise KeyError(f"no comparison between {a!r} and {b!r}")

    def any_significant(self) -> bool:
        """Whether any pairwise comparison is significant."""
        return any(c.significant for c in self.comparisons)


def tukey_hsd(
    groups: dict[str, Sequence[float]],
    alpha: float = 0.05,
) -> TukeyResult:
    """Run Tukey's HSD across named sample groups.

    Parameters
    ----------
    groups:
        Mapping of group name → samples.  At least two groups, each with
        at least two observations.
    alpha:
        Family-wise significance level.
    """
    if len(groups) < 2:
        raise ValueError("Tukey HSD needs at least two groups")
    names = tuple(groups)
    data = {name: np.asarray(groups[name], dtype=float) for name in names}
    for name, arr in data.items():
        if arr.size < 2:
            raise ValueError(f"group {name!r} needs at least 2 observations")
    if not 0 < alpha < 1:
        raise ValueError(f"alpha must be in (0,1): {alpha}")

    k = len(names)
    n_total = sum(arr.size for arr in data.values())
    df_error = n_total - k
    if df_error < 1:
        raise ValueError("not enough observations for error degrees of freedom")
    # Pooled within-group variance (ANOVA mean square error).
    sse = sum(float(((arr - arr.mean()) ** 2).sum()) for arr in data.values())
    mse = sse / df_error
    means = {name: float(arr.mean()) for name, arr in data.items()}

    q_crit = float(studentized_range.ppf(1 - alpha, k, df_error))
    comparisons = []
    for i in range(k):
        for j in range(i + 1, k):
            a, b = names[i], names[j]
            na, nb = data[a].size, data[b].size
            # Tukey-Kramer standard error for unequal group sizes.
            se = math.sqrt(mse / 2.0 * (1.0 / na + 1.0 / nb))
            diff = means[a] - means[b]
            if se == 0:
                q = math.inf if diff != 0 else 0.0
                p = 0.0 if diff != 0 else 1.0
            else:
                q = abs(diff) / se
                p = float(studentized_range.sf(q, k, df_error))
            margin = q_crit * se
            comparisons.append(
                PairwiseComparison(
                    group_a=a,
                    group_b=b,
                    mean_diff=diff,
                    se=se,
                    q_statistic=q,
                    p_value=min(max(p, 0.0), 1.0),
                    ci_low=diff - margin,
                    ci_high=diff + margin,
                    significant=bool(p < alpha),
                )
            )
    return TukeyResult(
        groups=names,
        means=means,
        mse=mse,
        df_error=df_error,
        alpha=alpha,
        comparisons=tuple(comparisons),
    )
