"""IoT / sensing-environment stream generators.

§III-B1: "majority of the message sizes found in IoT and sensing
environment datasets are within [the 50-400 byte] range" — these
generators produce that regime: many small, structured sensor readings
with realistic temporal smoothness (readings drift, they don't jump).
"""

from __future__ import annotations

import math
import random
from typing import Iterator

from repro.core.fieldtypes import FieldType
from repro.core.packet import PacketSchema, StreamPacket

#: A typical environmental-sensor observation (~100 B serialized).
SENSOR_SCHEMA = PacketSchema(
    [
        ("ts", FieldType.INT64),  # epoch milliseconds
        ("sensor_id", FieldType.STRING),
        ("temperature", FieldType.FLOAT64),
        ("humidity", FieldType.FLOAT64),
        ("pressure", FieldType.FLOAT64),
        ("battery", FieldType.FLOAT32),
        ("flags", FieldType.INT32),
    ]
)


class SensorFleet:
    """Generates interleaved readings from ``n_sensors`` devices.

    Each sensor follows a slow sinusoidal drift plus Gaussian jitter —
    consecutive readings are strongly correlated, which is what makes
    real sensor streams low-entropy (the compression study's premise).
    """

    def __init__(
        self,
        n_sensors: int = 32,
        period_ms: int = 1000,
        start_ms: int = 1_600_000_000_000,
        seed: int = 7,
    ) -> None:
        if n_sensors <= 0:
            raise ValueError(f"n_sensors must be positive: {n_sensors}")
        if period_ms <= 0:
            raise ValueError(f"period_ms must be positive: {period_ms}")
        self.n_sensors = n_sensors
        self.period_ms = period_ms
        self.start_ms = start_ms
        self._rng = random.Random(seed)
        self._phases = [self._rng.uniform(0, 2 * math.pi) for _ in range(n_sensors)]

    def packets(self, count: int) -> Iterator[StreamPacket]:
        """Yield ``count`` readings, round-robin across the fleet."""
        rng = self._rng
        for i in range(count):
            sensor = i % self.n_sensors
            t_ms = self.start_ms + (i // self.n_sensors) * self.period_ms
            day_phase = 2 * math.pi * (t_ms % 86_400_000) / 86_400_000
            temp = 20.0 + 8.0 * math.sin(day_phase + self._phases[sensor])
            temp += rng.gauss(0, 0.05)
            pkt = StreamPacket(SENSOR_SCHEMA)
            pkt.set("ts", t_ms)
            pkt.set("sensor_id", f"sensor-{sensor:04d}")
            pkt.set("temperature", round(temp, 2))
            pkt.set("humidity", round(55.0 + 10.0 * math.sin(day_phase / 2) + rng.gauss(0, 0.1), 2))
            pkt.set("pressure", round(1013.0 + rng.gauss(0, 0.2), 2))
            pkt.set("battery", round(max(0.0, 100.0 - t_ms / 1e9), 1))
            pkt.set("flags", 0)
            yield pkt
