"""Synthetic DEBS-2012 Grand Challenge manufacturing telemetry.

The paper's application benchmark (Figs. 8-9) and its compression study
use "the manufacturing equipment monitoring use case presented in DEBS
Grand Challenge": high-frequency telemetry from sensors attached to
manufacturing equipment.  The original dataset is not redistributable,
so this module generates a synthetic stream preserving the properties
the paper relies on:

- a wide record (the original has 66 data fields; we generate all 66,
  though like the paper's job only 6 + timestamp are consumed),
- three *chemical additive* sensors whose states change rarely,
- three corresponding *valves* that actuate shortly after their
  sensor's state changes (the monitored delay),
- very low temporal entropy: consecutive readings are nearly
  identical, which is why buffered batches compress so well.
"""

from __future__ import annotations

import random
from typing import Iterator

from repro.core.fieldtypes import FieldType
from repro.core.packet import PacketSchema, StreamPacket

N_EXTRA_FIELDS = 59  # 66 total: ts + 3 sensors + 3 valves = 7 named

_fields: list[tuple[str, FieldType]] = [("ts", FieldType.INT64)]
for _i in range(1, 4):
    _fields.append((f"additive_sensor_{_i}", FieldType.BOOL))
    _fields.append((f"valve_{_i}", FieldType.BOOL))
for _i in range(N_EXTRA_FIELDS):
    _fields.append((f"aux_{_i:02d}", FieldType.FLOAT32))

#: The full 66-field manufacturing record.
MANUFACTURING_SCHEMA = PacketSchema(_fields)


class ManufacturingStream:
    """Generates the synthetic equipment-telemetry stream.

    Parameters
    ----------
    period_ms:
        Sampling interval (the original records at ~100 Hz; default
        10 ms).
    state_change_prob:
        Per-record probability that one additive sensor flips state.
        Low by design — "sensor readings do not change frequently over
        time which results in a low entropy" (§III-B5).
    actuation_delay_ms:
        Mean sensor→valve actuation delay being monitored (the job's
        output metric); jittered ±50 %.
    """

    def __init__(
        self,
        period_ms: int = 10,
        state_change_prob: float = 0.001,
        actuation_delay_ms: float = 40.0,
        start_ms: int = 1_600_000_000_000,
        seed: int = 11,
    ) -> None:
        if period_ms <= 0:
            raise ValueError(f"period_ms must be positive: {period_ms}")
        if not 0 <= state_change_prob <= 1:
            raise ValueError(f"state_change_prob must be in [0,1]: {state_change_prob}")
        self.period_ms = period_ms
        self.state_change_prob = state_change_prob
        self.actuation_delay_ms = actuation_delay_ms
        self.start_ms = start_ms
        self._rng = random.Random(seed)
        self._sensor_state = [False, False, False]
        self._valve_state = [False, False, False]
        #: sensor index → time its valve will actuate.
        self._pending_actuation: dict[int, int] = {}
        #: ground truth of (sensor_idx, change_ms, actuation_ms) pairs,
        #: recorded so tests can verify the monitoring job's output.
        self.actuation_log: list[tuple[int, int, int]] = []
        self._aux = [round(self._rng.uniform(0, 100), 1) for _ in range(N_EXTRA_FIELDS)]

    def packets(self, count: int) -> Iterator[StreamPacket]:
        """Yield ``count`` sequential telemetry records."""
        rng = self._rng
        for i in range(count):
            t_ms = self.start_ms + i * self.period_ms
            # Occasionally flip one additive sensor; schedule its valve.
            if rng.random() < self.state_change_prob:
                s = rng.randrange(3)
                if s not in self._pending_actuation:
                    self._sensor_state[s] = not self._sensor_state[s]
                    jitter = rng.uniform(0.5, 1.5)
                    delay = max(self.period_ms, int(self.actuation_delay_ms * jitter))
                    self._pending_actuation[s] = t_ms + delay
                    self.actuation_log.append((s, t_ms, t_ms + delay))
            # Fire due actuations.
            for s, due in list(self._pending_actuation.items()):
                if t_ms >= due:
                    self._valve_state[s] = self._sensor_state[s]
                    del self._pending_actuation[s]
            # Slow drift on a couple of aux channels keeps the stream
            # realistic without raising entropy much.
            if i % 50 == 0:
                j = rng.randrange(N_EXTRA_FIELDS)
                self._aux[j] = round(
                    min(100.0, max(0.0, self._aux[j] + rng.gauss(0, 0.1))), 1
                )
            pkt = StreamPacket(MANUFACTURING_SCHEMA)
            pkt.set("ts", t_ms)
            for s in range(3):
                pkt.set(f"additive_sensor_{s + 1}", self._sensor_state[s])
                pkt.set(f"valve_{s + 1}", self._valve_state[s])
            for j, v in enumerate(self._aux):
                pkt.set(f"aux_{j:02d}", v)
            yield pkt

    def serialized_stream(self, count: int) -> bytes:
        """The packets' concatenated wire form (compression studies)."""
        from repro.core.serde import PacketCodec

        codec = PacketCodec(MANUFACTURING_SCHEMA)
        return codec.encode_batch(list(self.packets(count)))
