"""Standard reusable operators: map, filter, windowed aggregate, paced
and file-replay sources.

These close the gap between the framework primitives and everyday
stream jobs — the operators a downstream user reaches for first — and
they exercise framework features end-to-end (token-bucket pacing,
sliding windows, checkpointable file replay).
"""

from __future__ import annotations

import json
from typing import Any, Callable

from repro.core.operators import StreamProcessor, StreamSource
from repro.core.packet import PacketSchema, StreamPacket
from repro.core.windows import SlidingWindow
from repro.util.clock import Clock, SYSTEM_CLOCK
from repro.util.ratelimit import TokenBucket


class MapProcessor(StreamProcessor):
    """Applies ``fn(in_packet, out_packet)`` to every packet.

    ``fn`` fills the (pooled) output packet from the input packet; the
    framework handles emission, batching, and reuse::

        MapProcessor(OUT_SCHEMA, lambda src, dst: dst.set("f", src["f"] * 2))
    """

    def __init__(
        self,
        schema: PacketSchema,
        fn: Callable[[StreamPacket, StreamPacket], Any],
        name: str | None = None,
    ) -> None:
        super().__init__()
        self._schema = schema
        self._fn = fn
        if name:
            self.name = name

    def process(self, packet, ctx) -> None:
        """Handle one stream packet (StreamProcessor contract)."""
        out = ctx.new_packet()
        self._fn(packet, out)
        ctx.emit(out)

    def output_schema(self, stream: str) -> PacketSchema:
        """Declare the schema of the named outgoing stream."""
        return self._schema


class FilterProcessor(StreamProcessor):
    """Forwards only packets matching ``predicate`` (same schema)."""

    def __init__(
        self,
        schema: PacketSchema,
        predicate: Callable[[StreamPacket], bool],
        name: str | None = None,
    ) -> None:
        super().__init__()
        self._schema = schema
        self._predicate = predicate
        if name:
            self.name = name
        self.passed = 0
        self.dropped = 0

    def process(self, packet, ctx) -> None:
        """Handle one stream packet (StreamProcessor contract)."""
        if self._predicate(packet):
            out = ctx.new_packet()
            out.copy_from(packet)
            ctx.emit(out)
            self.passed += 1
        else:
            self.dropped += 1

    def output_schema(self, stream: str) -> PacketSchema:
        """Declare the schema of the named outgoing stream."""
        return self._schema


class WindowedAggregateProcessor(StreamProcessor):
    """Keyed sliding-window aggregation.

    For every input packet, updates the key's time window and emits the
    aggregate — the "descriptive statistic for a sliding window"
    operator the paper's buffering discussion uses as its low-rate
    example (§III-B1).  Emission can be thinned with ``emit_every``.

    Checkpointable: window contents snapshot/restore.
    """

    def __init__(
        self,
        out_schema: PacketSchema,
        key_field: str,
        time_field: str,
        value_field: str,
        window_seconds: float,
        aggregate: Callable[[list], float],
        fill: Callable[[StreamPacket, str, float], Any],
        time_scale: float = 1.0,
        emit_every: int = 1,
    ) -> None:
        super().__init__()
        if emit_every <= 0:
            raise ValueError(f"emit_every must be positive: {emit_every}")
        self._out_schema = out_schema
        self.key_field = key_field
        self.time_field = time_field
        self.value_field = value_field
        self.window_seconds = window_seconds
        self.aggregate = aggregate
        self.fill = fill
        self.time_scale = time_scale
        self.emit_every = emit_every
        self._windows: dict[Any, SlidingWindow] = {}
        self._since_emit: dict[Any, int] = {}

    def process(self, packet, ctx) -> None:
        """Handle one stream packet (StreamProcessor contract)."""
        key = packet.get(self.key_field)
        ts = packet.get(self.time_field) * self.time_scale
        window = self._windows.get(key)
        if window is None:
            window = self._windows[key] = SlidingWindow(self.window_seconds)
        window.add(ts, packet.get(self.value_field))
        n = self._since_emit.get(key, 0) + 1
        if n >= self.emit_every:
            self._since_emit[key] = 0
            out = ctx.new_packet()
            self.fill(out, key, self.aggregate(list(window.values())))
            ctx.emit(out)
        else:
            self._since_emit[key] = n

    def output_schema(self, stream: str) -> PacketSchema:
        """Declare the schema of the named outgoing stream."""
        return self._out_schema

    # -- checkpoint hooks -------------------------------------------------
    def snapshot_state(self) -> Any:
        """Checkpoint hook: return this operator's state."""
        return {
            "windows": {
                key: list(win._items) for key, win in self._windows.items()
            }
        }

    def restore_state(self, state: Any) -> None:
        """Checkpoint hook: rehydrate state captured by snapshot_state."""
        for key, items in state["windows"].items():
            win = SlidingWindow(self.window_seconds)
            for ts, value in items:
                win.add(ts, value)
            self._windows[key] = win


class ThrottledSource(StreamSource):
    """Wraps another source, pacing emission with a token bucket.

    Models a fixed-rate external stream (sensors sampling at a known
    frequency) instead of an as-fast-as-possible replay.  The paced
    rate composes with backpressure: the slower of the two wins.
    """

    def __init__(
        self,
        inner: StreamSource,
        rate: float,
        burst: float | None = None,
        clock: Clock = SYSTEM_CLOCK,
    ) -> None:
        super().__init__()
        self.inner = inner
        self._bucket = TokenBucket(rate=rate, burst=burst or max(rate / 100, 1.0), clock=clock)

    def setup(self, ctx) -> None:
        """Per-instance initialization before the first execution."""
        self.inner.setup(ctx)

    def teardown(self) -> None:
        """Per-instance cleanup at job shutdown."""
        self.inner.teardown()

    def generate(self, ctx) -> None:
        """Produce packets for one scheduling quantum (StreamSource contract)."""
        self._bucket.acquire(1.0)
        self.inner.generate(ctx)

    def output_schema(self, stream: str) -> PacketSchema:
        """Declare the schema of the named outgoing stream."""
        return self.inner.output_schema(stream)

    # -- checkpoint hooks delegate to the wrapped source -------------------
    def snapshot_state(self) -> Any:
        """Checkpoint hook: return this operator's state."""
        inner_snapshot = getattr(self.inner, "snapshot_state", None)
        return inner_snapshot() if inner_snapshot is not None else None

    def restore_state(self, state: Any) -> None:
        """Checkpoint hook: rehydrate state captured by snapshot_state."""
        inner_restore = getattr(self.inner, "restore_state", None)
        if inner_restore is not None:
            inner_restore(state)


class JsonLinesFileSource(StreamSource):
    """Replays a JSON-lines file as stream packets.

    Each line is a JSON object whose keys match the schema's fields.
    The byte position is checkpointable: on restore, replay resumes at
    the exact line where the snapshot was taken
    (:class:`repro.core.checkpoint.ReplayableSource` semantics).
    """

    def __init__(self, path: str, schema: PacketSchema) -> None:
        super().__init__()
        from repro.granules.dataset import FileDataset

        self.path = path
        self.schema = schema
        self._file = FileDataset(f"jsonl:{path}", path, mode="lines")
        self.lines_read = 0

    def generate(self, ctx) -> None:
        """Produce packets for one scheduling quantum (StreamSource contract)."""
        try:
            line = self._file.next()
        except StopIteration:
            ctx.finish()
            return
        if not line.strip():
            return
        record = json.loads(line)
        pkt = ctx.new_packet()
        for name in self.schema.names:
            pkt.set(name, record[name])
        ctx.emit(pkt)
        self.lines_read += 1

    def teardown(self) -> None:
        """Per-instance cleanup at job shutdown."""
        self._file.close()

    def output_schema(self, stream: str) -> PacketSchema:
        """Declare the schema of the named outgoing stream."""
        return self.schema

    # -- checkpoint hooks (ReplayableSource semantics) ---------------------
    def snapshot_state(self) -> Any:
        """Checkpoint hook: return this operator's state."""
        return {"position": self._file.tell()}

    def restore_state(self, state: Any) -> None:
        """Checkpoint hook: rehydrate state captured by snapshot_state."""
        self._file.seek(state["position"])
