"""Reference operators used by examples, tests, and benchmarks.

These mirror the operators the paper's experiments use: counting/replay
sources, the message relay (Fig. 1), a variable-rate processor (the
Fig. 3 backpressure trigger), and collecting sinks.
"""

from __future__ import annotations

import threading
import time
from typing import Iterable

from repro.core.fieldtypes import FieldType
from repro.core.operators import StreamProcessor, StreamSource
from repro.core.packet import PacketSchema, StreamPacket

#: Schema used by the relay experiments: a sequence number, an emit
#: timestamp (for end-to-end latency), and a variable-size payload.
RELAY_SCHEMA = PacketSchema(
    [
        ("seq", FieldType.INT64),
        ("emitted_at", FieldType.FLOAT64),
        ("payload", FieldType.BYTES),
    ]
)


class CountingSource(StreamSource):
    """Emits ``total`` sequenced packets with a fixed-size payload.

    ``payload_size`` controls the message size (the paper sweeps 50 B
    to 10 KB).  With ``total=None`` it emits until the job stops it.
    """

    def __init__(
        self,
        total: int | None = 1000,
        payload_size: int = 50,
        stream: str | None = None,
    ) -> None:
        super().__init__()
        self.total = total
        self.payload = bytes(payload_size)
        self.stream = stream
        self.emitted = 0

    def generate(self, ctx) -> None:
        """Produce packets for one scheduling quantum (StreamSource contract)."""
        if self.total is not None and self.emitted >= self.total:
            ctx.finish()
            return
        pkt = ctx.new_packet(self.stream)
        pkt.set("seq", self.emitted)
        pkt.set("emitted_at", time.monotonic())
        pkt.set("payload", self.payload)
        ctx.emit(pkt, self.stream)
        self.emitted += 1

    def output_schema(self, stream: str) -> PacketSchema:
        """Declare the schema of the named outgoing stream."""
        return RELAY_SCHEMA


class ReplaySource(StreamSource):
    """Replays prebuilt packets from any iterable (file/dataset replay)."""

    def __init__(self, packets: Iterable[StreamPacket], schema: PacketSchema) -> None:
        super().__init__()
        self._iter = iter(packets)
        self._schema = schema

    def generate(self, ctx) -> None:
        """Produce packets for one scheduling quantum (StreamSource contract)."""
        try:
            pkt = next(self._iter)
        except StopIteration:
            ctx.finish()
            return
        ctx.emit(pkt)

    def output_schema(self, stream: str) -> PacketSchema:
        """Declare the schema of the named outgoing stream."""
        return self._schema


class RelayProcessor(StreamProcessor):
    """Stage-2 of the paper's Fig. 1 message relay: forward every packet."""

    def __init__(self) -> None:
        super().__init__()
        self.relayed = 0

    def process(self, packet: StreamPacket, ctx) -> None:
        """Handle one stream packet (StreamProcessor contract)."""
        out = ctx.new_packet()
        out.copy_from(packet)
        ctx.emit(out)
        self.relayed += 1

    def output_schema(self, stream: str) -> PacketSchema:
        """Declare the schema of the named outgoing stream."""
        return RELAY_SCHEMA


class VariableRateProcessor(StreamProcessor):
    """Fig. 3's stage-C processor: sleeps after each packet.

    The sleep interval is read from a shared mutable holder so the
    experiment driver can vary it (0 → 3 ms staircase) while the job
    runs, triggering backpressure upstream.
    """

    def __init__(self, sleep_holder: list[float] | None = None) -> None:
        super().__init__()
        self.sleep_holder = sleep_holder if sleep_holder is not None else [0.0]
        self.processed = 0

    def process(self, packet: StreamPacket, ctx) -> None:
        """Handle one stream packet (StreamProcessor contract)."""
        delay = self.sleep_holder[0]
        if delay > 0:
            time.sleep(delay)
        self.processed += 1

    def output_schema(self, stream: str) -> PacketSchema:
        """Declare the schema of the named outgoing stream."""
        raise KeyError(stream)


class CollectingSink(StreamProcessor):
    """Terminal stage recording (a projection of) every packet.

    Thread-safe across parallel instances: all instances append to the
    shared class-level store created per sink object via
    :meth:`make_store`.
    """

    def __init__(self, store: list | None = None, field: str | None = "seq") -> None:
        super().__init__()
        self.store = store if store is not None else []
        self.field = field
        self._lock = threading.Lock()

    def process(self, packet: StreamPacket, ctx) -> None:
        """Handle one stream packet (StreamProcessor contract)."""
        value = packet.get(self.field) if self.field else packet.clone()
        with self._lock:
            self.store.append(value)

    def output_schema(self, stream: str) -> PacketSchema:
        """Declare the schema of the named outgoing stream."""
        raise KeyError(stream)


class LatencySink(StreamProcessor):
    """Terminal stage computing end-to-end latency from ``emitted_at``."""

    #: Static input contract (checked by ``repro analyze``, NEPG113):
    #: upstream must carry the emission timestamp this sink subtracts.
    REQUIRES = PacketSchema([("emitted_at", FieldType.FLOAT64)])

    def __init__(self, samples: list | None = None) -> None:
        super().__init__()
        self.samples = samples if samples is not None else []
        self._lock = threading.Lock()

    def input_schema(self, stream: str) -> PacketSchema:
        """Declare the fields this sink requires on its inbound stream."""
        return self.REQUIRES

    def process(self, packet: StreamPacket, ctx) -> None:
        """Handle one stream packet (StreamProcessor contract)."""
        lat = time.monotonic() - packet.get("emitted_at")
        with self._lock:
            self.samples.append(lat)

    def output_schema(self, stream: str) -> PacketSchema:
        """Declare the schema of the named outgoing stream."""
        raise KeyError(stream)
