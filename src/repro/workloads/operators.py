"""Reference operators used by examples, tests, and benchmarks.

These mirror the operators the paper's experiments use: counting/replay
sources, the message relay (Fig. 1), a variable-rate processor (the
Fig. 3 backpressure trigger), and collecting sinks.
"""

from __future__ import annotations

import threading
import time
from typing import Iterable

from repro.core.fieldtypes import FieldType
from repro.core.operators import StreamProcessor, StreamSource
from repro.core.packet import PacketSchema, StreamPacket

#: Schema used by the relay experiments: a sequence number, an emit
#: timestamp (for end-to-end latency), and a variable-size payload.
RELAY_SCHEMA = PacketSchema(
    [
        ("seq", FieldType.INT64),
        ("emitted_at", FieldType.FLOAT64),
        ("payload", FieldType.BYTES),
    ]
)


class CountingSource(StreamSource):
    """Emits ``total`` sequenced packets with a fixed-size payload.

    ``payload_size`` controls the message size (the paper sweeps 50 B
    to 10 KB).  With ``total=None`` it emits until the job stops it.
    ``interval`` paces emission (seconds between packets) for workloads
    that must stay below a downstream stage's service rate.
    """

    def __init__(
        self,
        total: int | None = 1000,
        payload_size: int = 50,
        stream: str | None = None,
        interval: float = 0.0,
    ) -> None:
        super().__init__()
        self.total = total
        self.payload = bytes(payload_size)
        self.stream = stream
        self.interval = interval
        self.emitted = 0

    def generate(self, ctx) -> None:
        """Produce packets for one scheduling quantum (StreamSource contract)."""
        if self.total is not None and self.emitted >= self.total:
            ctx.finish()
            return
        if self.interval > 0.0:
            time.sleep(self.interval)
        pkt = ctx.new_packet(self.stream)
        pkt.set("seq", self.emitted)
        pkt.set("emitted_at", time.monotonic())
        pkt.set("payload", self.payload)
        ctx.emit(pkt, self.stream)
        self.emitted += 1

    def output_schema(self, stream: str) -> PacketSchema:
        """Declare the schema of the named outgoing stream."""
        return RELAY_SCHEMA


#: Schema for keyed-ordering workloads: a partition key plus a global
#: emission sequence number.
KEYED_SCHEMA = PacketSchema(
    [
        ("key", FieldType.INT64),
        ("seq", FieldType.INT64),
    ]
)


class KeyedSource(StreamSource):
    """Deterministic keyed counter: packet ``i`` carries ``(i % keys, i)``.

    The per-key subsequence of ``seq`` values is strictly increasing by
    construction, which makes it the reference stream for per-key
    ordering properties: any reordering within a key, anywhere
    downstream, is detectable by comparing against this source replayed.
    """

    def __init__(self, total: int = 1000, keys: int = 4) -> None:
        super().__init__()
        if keys < 1:
            raise ValueError("KeyedSource needs at least one key")
        self.total = total
        self.keys = keys
        self.emitted = 0

    def generate(self, ctx) -> None:
        """Produce packets for one scheduling quantum (StreamSource contract)."""
        if self.emitted >= self.total:
            ctx.finish()
            return
        pkt = ctx.new_packet()
        pkt.set("key", self.emitted % self.keys)
        pkt.set("seq", self.emitted)
        ctx.emit(pkt)
        self.emitted += 1

    def output_schema(self, stream: str) -> PacketSchema:
        """Declare the schema of the named outgoing stream."""
        return KEYED_SCHEMA


class KeyedRelayProcessor(StreamProcessor):
    """Forward keyed packets unchanged (schema-preserving relay)."""

    def __init__(self) -> None:
        super().__init__()
        self.relayed = 0

    def process(self, packet: StreamPacket, ctx) -> None:
        """Handle one stream packet (StreamProcessor contract)."""
        out = ctx.new_packet()
        out.copy_from(packet)
        ctx.emit(out)
        self.relayed += 1

    def output_schema(self, stream: str) -> PacketSchema:
        """Declare the schema of the named outgoing stream."""
        return KEYED_SCHEMA


class ReplaySource(StreamSource):
    """Replays prebuilt packets from any iterable (file/dataset replay)."""

    def __init__(self, packets: Iterable[StreamPacket], schema: PacketSchema) -> None:
        super().__init__()
        self._iter = iter(packets)
        self._schema = schema

    def generate(self, ctx) -> None:
        """Produce packets for one scheduling quantum (StreamSource contract)."""
        try:
            pkt = next(self._iter)
        except StopIteration:
            ctx.finish()
            return
        ctx.emit(pkt)

    def output_schema(self, stream: str) -> PacketSchema:
        """Declare the schema of the named outgoing stream."""
        return self._schema


class RelayProcessor(StreamProcessor):
    """Stage-2 of the paper's Fig. 1 message relay: forward every packet."""

    def __init__(self) -> None:
        super().__init__()
        self.relayed = 0

    def process(self, packet: StreamPacket, ctx) -> None:
        """Handle one stream packet (StreamProcessor contract)."""
        out = ctx.new_packet()
        out.copy_from(packet)
        ctx.emit(out)
        self.relayed += 1

    def output_schema(self, stream: str) -> PacketSchema:
        """Declare the schema of the named outgoing stream."""
        return RELAY_SCHEMA


class SpinProcessor(StreamProcessor):
    """A compute-hog relay: burns ``spin_seconds`` of CPU per packet.

    Unlike :class:`VariableRateProcessor` (which *sleeps*, parking its
    worker off-CPU), this stage busy-loops — the workload the sampling
    profiler exists to expose.  Fed below its service rate it never
    fills its inbound buffer, so no backpressure gate ever opens: the
    only honest diagnosis for the latency it adds is compute_bound.
    """

    def __init__(self, spin_seconds: float = 0.02) -> None:
        super().__init__()
        self.spin_seconds = spin_seconds
        self.processed = 0

    def process(self, packet: StreamPacket, ctx) -> None:
        """Handle one stream packet (StreamProcessor contract)."""
        self._spin(self.spin_seconds)
        out = ctx.new_packet()
        out.copy_from(packet)
        ctx.emit(out)
        self.processed += 1

    @staticmethod
    def _spin(seconds: float) -> None:
        # perf_counter-bounded arithmetic loop: pure user CPU, no
        # syscalls a scheduler could park the thread on.
        deadline = time.perf_counter() + seconds
        acc = 0
        while time.perf_counter() < deadline:
            for i in range(256):
                acc += i * i

    def output_schema(self, stream: str) -> PacketSchema:
        """Declare the schema of the named outgoing stream."""
        return RELAY_SCHEMA


class VariableRateProcessor(StreamProcessor):
    """Fig. 3's stage-C processor: sleeps after each packet.

    The sleep interval is read from a shared mutable holder so the
    experiment driver can vary it (0 → 3 ms staircase) while the job
    runs, triggering backpressure upstream.
    """

    def __init__(self, sleep_holder: list[float] | None = None) -> None:
        super().__init__()
        self.sleep_holder = sleep_holder if sleep_holder is not None else [0.0]
        self.processed = 0

    def process(self, packet: StreamPacket, ctx) -> None:
        """Handle one stream packet (StreamProcessor contract)."""
        delay = self.sleep_holder[0]
        if delay > 0:
            time.sleep(delay)
        self.processed += 1

    def output_schema(self, stream: str) -> PacketSchema:
        """Declare the schema of the named outgoing stream."""
        raise KeyError(stream)


#: Per-process exclusive resource modelling the GIL for scaling
#: benchmarks: one lock per interpreter, shared by every
#: ExclusiveServiceProcessor instance hosted in that process.
_SERVICE_LOCK = threading.Lock()


class ExclusiveServiceProcessor(StreamProcessor):
    """Relay whose per-packet service time holds a *process-wide* lock.

    A portable stand-in for GIL-bound CPU work: all instances in one
    interpreter serialize on the same module-level lock, so their
    aggregate throughput caps at ``1/service_time`` packets/s no matter
    how many threads or cores the process has — exactly the ceiling the
    multi-process split exists to break.  Instances in *different*
    worker processes hold different locks and run truly in parallel,
    which makes cluster scale-up measurable even on a single-core
    machine (the ratio depends on process count, not core count).
    """

    def __init__(self, service_time: float = 0.001) -> None:
        super().__init__()
        self.service_time = service_time
        self.processed = 0

    def process(self, packet: StreamPacket, ctx) -> None:
        """Handle one stream packet (StreamProcessor contract)."""
        with _SERVICE_LOCK:
            if self.service_time > 0:
                time.sleep(self.service_time)
        out = ctx.new_packet()
        out.copy_from(packet)
        ctx.emit(out)
        self.processed += 1

    def output_schema(self, stream: str) -> PacketSchema:
        """Declare the schema of the named outgoing stream."""
        return RELAY_SCHEMA


class FileSink(StreamProcessor):
    """Terminal stage appending one line per packet to a text file.

    The cross-process analogue of :class:`CollectingSink`: a list in a
    worker process is invisible to the coordinator, a file is not.
    Lines are written through an OS-level append so the record survives
    even if the hosting worker is later killed; chaos tests read the
    file back to audit exactly-once delivery end-to-end.

    ``field`` names the packet field to write — or several, comma
    separated (``"key,seq"``), written comma-joined in that order.
    """

    def __init__(self, path: str = "", field: str = "seq") -> None:
        super().__init__()
        if not path:
            raise ValueError("FileSink needs a path")
        self.path = path
        self.fields = [name.strip() for name in field.split(",")]
        self._lock = threading.Lock()
        self._fh = open(path, "a", encoding="utf-8")

    def process(self, packet: StreamPacket, ctx) -> None:
        """Handle one stream packet (StreamProcessor contract)."""
        line = ",".join(str(packet.get(name)) for name in self.fields) + "\n"
        with self._lock:
            self._fh.write(line)
            self._fh.flush()

    def output_schema(self, stream: str) -> PacketSchema:
        """Declare the schema of the named outgoing stream."""
        raise KeyError(stream)


class CollectingSink(StreamProcessor):
    """Terminal stage recording (a projection of) every packet.

    Thread-safe across parallel instances: all instances append to the
    shared class-level store created per sink object via
    :meth:`make_store`.
    """

    def __init__(self, store: list | None = None, field: str | None = "seq") -> None:
        super().__init__()
        self.store = store if store is not None else []
        self.field = field
        self._lock = threading.Lock()

    def process(self, packet: StreamPacket, ctx) -> None:
        """Handle one stream packet (StreamProcessor contract)."""
        value = packet.get(self.field) if self.field else packet.clone()
        with self._lock:
            self.store.append(value)

    def output_schema(self, stream: str) -> PacketSchema:
        """Declare the schema of the named outgoing stream."""
        raise KeyError(stream)


class BatchOverheadSink(StreamProcessor):
    """Terminal stage paying a fixed cost per *batch*, not per packet.

    Models a sink whose expensive step is per-delivery (an fsync, an
    HTTP round-trip, a transaction commit): ``overhead`` seconds on
    every batch start, then each packet is free.  Under NEPTUNE's
    flush bound (§III-B) a small ``max_delay`` produces many tiny
    batches, so the per-batch cost dominates and the sink drowns —
    while a live retune of the legs feeding it ("batch up": larger
    capacity, longer deadline) amortizes the same cost over many
    packets and the backlog drains.  This is the healable breach the
    elasticity policy bench and the live self-healing test inject:
    unlike :class:`SlowSink`'s per-packet stall, the stall here is
    *caused by the batching regime* and reconfiguration genuinely
    cures it.  ``path`` (optional) appends one line per packet, FileSink
    style, so exactly-once survives audit across process boundaries.
    """

    def __init__(self, overhead: float = 0.01, path: str = "", field: str = "seq") -> None:
        super().__init__()
        self.overhead = float(overhead)
        self.batches = 0
        self.seen = 0
        self.fields = [name.strip() for name in field.split(",")]
        self._fh = open(path, "a", encoding="utf-8") if path else None
        self._lock = threading.Lock()

    def on_batch_start(self, size: int, ctx) -> None:
        """Pay the per-delivery overhead before the batch's packets."""
        with self._lock:
            self.batches += 1
        if self.overhead > 0:
            time.sleep(self.overhead)

    def process(self, packet: StreamPacket, ctx) -> None:
        """Handle one stream packet (StreamProcessor contract)."""
        line = None
        if self._fh is not None:
            line = ",".join(str(packet.get(name)) for name in self.fields) + "\n"
        with self._lock:
            self.seen += 1
            if self._fh is not None and line is not None:
                self._fh.write(line)
                self._fh.flush()

    def output_schema(self, stream: str) -> PacketSchema:
        """Declare the schema of the named outgoing stream."""
        raise KeyError(stream)


class SlowSink(StreamProcessor):
    """Terminal stage that stalls after a warm-up — a backpressure seed.

    Processes the first ``after`` packets at full speed, then sleeps
    ``sleep`` seconds per packet.  Its inbound buffer fills, the
    watermark gate closes, and the stall propagates upstream — the
    canonical root-cause scenario the cluster doctor must attribute
    across process boundaries.  Descriptor-friendly: both knobs are
    plain JSON kwargs.
    """

    def __init__(self, sleep: float = 0.05, after: int = 0) -> None:
        super().__init__()
        self.sleep = float(sleep)
        self.after = int(after)
        self.seen = 0
        self._lock = threading.Lock()

    def process(self, packet: StreamPacket, ctx) -> None:
        """Handle one stream packet (StreamProcessor contract)."""
        with self._lock:
            self.seen += 1
            stall = self.seen > self.after
        if stall and self.sleep > 0:
            time.sleep(self.sleep)

    def output_schema(self, stream: str) -> PacketSchema:
        """Declare the schema of the named outgoing stream."""
        raise KeyError(stream)


class LatencySink(StreamProcessor):
    """Terminal stage computing end-to-end latency from ``emitted_at``."""

    #: Static input contract (checked by ``repro analyze``, NEPG113):
    #: upstream must carry the emission timestamp this sink subtracts.
    REQUIRES = PacketSchema([("emitted_at", FieldType.FLOAT64)])

    def __init__(self, samples: list | None = None) -> None:
        super().__init__()
        self.samples = samples if samples is not None else []
        self._lock = threading.Lock()

    def input_schema(self, stream: str) -> PacketSchema:
        """Declare the fields this sink requires on its inbound stream."""
        return self.REQUIRES

    def process(self, packet: StreamPacket, ctx) -> None:
        """Handle one stream packet (StreamProcessor contract)."""
        lat = time.monotonic() - packet.get("emitted_at")
        with self._lock:
            self.samples.append(lat)

    def output_schema(self, stream: str) -> PacketSchema:
        """Declare the schema of the named outgoing stream."""
        raise KeyError(stream)
