"""Workload generators and reference operators for the evaluation.

- :mod:`repro.workloads.operators` — sources/processors/sinks used by
  the paper's experiment topologies (relay, backpressure trigger).
- :mod:`repro.workloads.iot` — small-packet IoT/sensing streams (the
  50-400 B regime §III-B1 cites).
- :mod:`repro.workloads.debs` — synthetic DEBS-2012 manufacturing
  equipment telemetry (low-entropy sensor + valve state streams).
- :mod:`repro.workloads.synthetic` — random/low-entropy byte payload
  generators for the compression study.
"""

from repro.workloads.operators import (
    KEYED_SCHEMA,
    RELAY_SCHEMA,
    BatchOverheadSink,
    CollectingSink,
    CountingSource,
    ExclusiveServiceProcessor,
    FileSink,
    KeyedRelayProcessor,
    KeyedSource,
    LatencySink,
    RelayProcessor,
    ReplaySource,
    SlowSink,
    VariableRateProcessor,
)
from repro.workloads.stdlib import (
    FilterProcessor,
    JsonLinesFileSource,
    MapProcessor,
    ThrottledSource,
    WindowedAggregateProcessor,
)

__all__ = [
    "KEYED_SCHEMA",
    "RELAY_SCHEMA",
    "BatchOverheadSink",
    "CountingSource",
    "KeyedSource",
    "KeyedRelayProcessor",
    "ReplaySource",
    "RelayProcessor",
    "VariableRateProcessor",
    "CollectingSink",
    "ExclusiveServiceProcessor",
    "FileSink",
    "LatencySink",
    "SlowSink",
    "MapProcessor",
    "FilterProcessor",
    "WindowedAggregateProcessor",
    "ThrottledSource",
    "JsonLinesFileSource",
]
