"""Multi-process cluster deployment: control plane + N worker processes.

The paper deploys one NEPTUNE worker per Granules resource; this
package provides that shape on one machine (and, with TCP endpoints,
across machines): a :class:`ClusterCoordinator` plans operator shards
with the existing deployment planners, spawns one OS process per
worker (``multiprocessing`` spawn context), distributes per-shard
graph descriptors, and drives the workers through their JSON-lines
control ports.  The data plane between shards is the existing
:class:`~repro.net.transport.TcpTransport` recovery protocol
(ack + replay + duplicate suppression), optionally over Unix-domain
sockets for same-host fabrics.
"""

from repro.cluster.coordinator import (
    ClusterCoordinator,
    WorkerHandle,
    attach_proxies,
)
from repro.cluster.faults import ProcessFaultDriver, worker_site
from repro.cluster.ports import reserve_port, reserve_ports
from repro.cluster.spec import WorkerSpec, build_plan, config_to_dict

__all__ = [
    "ClusterCoordinator",
    "ProcessFaultDriver",
    "WorkerHandle",
    "WorkerSpec",
    "attach_proxies",
    "build_plan",
    "config_to_dict",
    "reserve_port",
    "reserve_ports",
    "worker_site",
]
