"""Ephemeral-port reservation (shared by the coordinator and tests).

Hardcoding "probably free" ports is the classic flake: a parallel test
run, a lingering ``TIME_WAIT`` socket, or another service can own the
port and the bind fails (or worse, the test talks to a stranger).
Reserving through the kernel — bind port 0, read the assignment back —
cannot collide, and ``SO_REUSEADDR`` on both the probe socket and the
eventual listener lets the listener rebind the port immediately even
while the probe's closed socket (or a previous listener's accepted
connections) linger in ``TIME_WAIT``.

The reservation is advisory (the socket is closed before the caller
binds), but the window is microseconds and — unlike a hardcoded port —
two concurrent calls can never return overlapping sets, because every
probe socket is held open until the whole batch is allocated.
"""

from __future__ import annotations

import socket


def reserve_port(host: str = "127.0.0.1") -> int:
    """Reserve one free TCP port on ``host`` and return it."""
    return reserve_ports(1, host)[0]


def reserve_ports(n: int, host: str = "127.0.0.1") -> list[int]:
    """Reserve ``n`` distinct free TCP ports on ``host``.

    All probe sockets are held open until every port is assigned, so
    the returned ports are pairwise distinct even within one call.
    """
    if n < 0:
        raise ValueError(f"cannot reserve {n} ports")
    probes: list[socket.socket] = []
    try:
        for _ in range(n):
            s = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            s.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            s.bind((host, 0))
            probes.append(s)
        return [s.getsockname()[1] for s in probes]
    finally:
        for s in probes:
            s.close()
