"""Cluster coordinator: plan shards, spawn worker processes, drive them.

The control plane half of the process split: one coordinator object
owns N worker *processes* (``multiprocessing`` spawn context — fresh
interpreters, no forked locks), ships each a :class:`WorkerSpec`,
connects a :class:`~repro.core.control.RemoteWorker` proxy to every
control port, and reuses :class:`~repro.core.control.RemoteDistributedJob`
for the coordinated global drain.  The data plane between shards is
the workers' own :class:`~repro.net.transport.TcpTransport` links —
over loopback TCP, or over Unix-domain sockets when ``fabric="unix"``.

Failure semantics: a worker that dies mid-stream can be respawned with
the *identical* spec (:meth:`ClusterCoordinator.restart_worker`); its
peers' listeners keep their :class:`~repro.net.framing.SequenceTracker`
state, so the restarted shard's replayed frames are suppressed as
duplicates and delivery stays exactly-once (see DESIGN.md §12).
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import tempfile
import time
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.cluster.ports import reserve_ports
from repro.cluster.spec import WorkerSpec, build_plan, config_to_dict
from repro.cluster.worker import worker_entry
from repro.core.control import ControlError, RemoteDistributedJob, RemoteWorker
from repro.core.distributed import DeploymentPlan
from repro.core.graph import StreamProcessingGraph
from repro.util.errors import NeptuneError


@dataclass
class WorkerHandle:
    """One worker shard: its spec, live process, and control proxy."""

    spec: WorkerSpec
    log_path: Optional[str] = None
    process: Optional[Any] = None
    proxy: Optional[RemoteWorker] = None
    restarts: int = field(default=0)

    @property
    def worker_id(self) -> int:
        return self.spec.worker_id

    @property
    def pid(self) -> Optional[int]:
        return self.process.pid if self.process is not None else None

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()


class ClusterCoordinator:
    """Plan, spawn, and coordinate N worker processes for one graph.

    Parameters
    ----------
    graph:
        The full :class:`StreamProcessingGraph`; every worker receives
        its complete descriptor (wire ids derive from the shared
        topology without coordination) plus the deployment plan naming
        which operator instances it hosts.
    n_workers:
        Shard count (ignored when an explicit ``plan`` is given).
    plan:
        Pre-built :class:`DeploymentPlan`; default is
        :func:`~repro.cluster.spec.build_plan` round-robin.
    fabric:
        ``"tcp"`` (loopback TCP data plane) or ``"unix"`` (Unix-domain
        sockets — same framing/ack/replay protocol, no TCP stack).
        Control ports are always TCP.
    socket_dir:
        Directory for ``fabric="unix"`` socket files (default: a fresh
        temp dir, removed on :meth:`stop`).
    log_dir:
        When set, each worker appends stdout/stderr to
        ``<log_dir>/worker-<id>.log`` instead of inheriting the
        coordinator's streams.
    verify:
        Run the NEPG130–139 deployment-plan verifier before spawning
        (:mod:`repro.analysis.plancheck`); :meth:`launch` raises
        :class:`~repro.util.errors.PlanVerificationError` on any error
        finding, before any process exists.  ``False`` opts out (e.g.
        to deliberately deploy a degraded plan in a chaos test).
    observe:
        When set (even ``{}``), every worker runs its observability
        plane (see :class:`~repro.cluster.spec.WorkerSpec`) and the
        coordinator runs a :class:`~repro.observe.collector.ClusterCollector`
        that polls worker deltas over the control channel and merges
        them into one worker-labeled cluster view.  Keys are the
        WorkerSpec ``observe`` keys plus ``flight_dir`` (where
        per-worker flight-recorder dumps land; default ``log_dir`` or a
        fresh temp dir — dumps are post-mortems, never cleaned up).
    slos:
        Cluster-scope :class:`~repro.observe.health.SLO` list evaluated
        against the merged registry after each poll (implies
        ``observe={}`` if not given).
    collect_interval:
        Background poll period of the cluster collector, seconds.
    policy:
        Enable the elasticity policy engine
        (:class:`~repro.observe.policy.PolicyEngine`): ``True`` for the
        default :class:`~repro.observe.policy.PolicyConfig`, or a
        config instance.  Requires ``slos`` (the engine reacts to their
        breach/recover transitions).  After every collector poll's
        health scan, breaches are diagnosed
        (:func:`~repro.observe.doctor.diagnose`) and the engine's
        actions applied live: retunes/scales through the workers'
        ``reconfigure`` control command, migrations through
        :meth:`migrate_operator`.  Every decision is appended to
        ``policy-actions.log`` (under ``log_dir``, else the flight
        dir) — one canonical JSON line each, byte-identical across
        identical runs.
    """

    def __init__(
        self,
        graph: StreamProcessingGraph,
        n_workers: int = 2,
        plan: Optional[DeploymentPlan] = None,
        fabric: str = "tcp",
        host: str = "127.0.0.1",
        socket_dir: Optional[str] = None,
        log_dir: Optional[str] = None,
        verify: bool = True,
        observe: Optional[Mapping[str, Any]] = None,
        slos: Optional[Sequence[Any]] = None,
        collect_interval: float = 0.25,
        policy: Any = None,
    ) -> None:
        graph.validate()
        if fabric not in ("tcp", "unix"):
            raise NeptuneError(f"unknown fabric {fabric!r} (tcp or unix)")
        self._graph = graph
        self.verify = verify
        self.plan = plan if plan is not None else build_plan(graph, n_workers)
        self.n_workers = self.plan.n_workers
        self.fabric = fabric
        self._ctx = multiprocessing.get_context("spawn")
        self._own_socket_dir = fabric == "unix" and socket_dir is None
        self._socket_dir = socket_dir
        if fabric == "unix":
            if self._socket_dir is None:
                self._socket_dir = tempfile.mkdtemp(prefix="neptune-cluster-")
            endpoints = {
                w: (f"unix:{os.path.join(self._socket_dir, f'w{w}.sock')}", 0)
                for w in range(self.n_workers)
            }
            control_ports = reserve_ports(self.n_workers, "127.0.0.1")
        elif host == "127.0.0.1":
            # Data and control share the loopback host: reserve both in
            # ONE batch.  Two sequential reserve_ports calls release the
            # first batch's probe sockets before the second binds, so
            # the kernel may hand a data port back as a control port —
            # a NEPG133 collision that kills a worker at spawn.
            batch = reserve_ports(2 * self.n_workers, host)
            data_ports = batch[: self.n_workers]
            control_ports = batch[self.n_workers :]
            endpoints = {w: (host, data_ports[w]) for w in range(self.n_workers)}
        else:
            data_ports = reserve_ports(self.n_workers, host)
            control_ports = reserve_ports(self.n_workers, "127.0.0.1")
            endpoints = {w: (host, data_ports[w]) for w in range(self.n_workers)}
        self.collector: Optional[Any] = None
        self.flight_dir: Optional[str] = None
        obs_cfg: Optional[Dict[str, Any]] = None
        if observe is not None or slos:
            obs_cfg = dict(observe or {})
            obs_cfg.setdefault("sample_every", 1)
            flight_dir = obs_cfg.pop("flight_dir", None) or log_dir
            if flight_dir is None:
                flight_dir = tempfile.mkdtemp(prefix="neptune-flight-")
            self.flight_dir = str(flight_dir)
            from repro.observe.collector import ClusterCollector

            self.collector = ClusterCollector(
                slos=list(slos or ()), interval=collect_interval
            )
        self.policy: Optional[Any] = None
        self.policy_log_path: Optional[str] = None
        self.policy_applied: List[Dict[str, Any]] = []
        self.policy_errors = 0
        if policy:
            if self.collector is None or self.collector.health is None:
                raise NeptuneError(
                    "policy requires cluster-scope SLOs (pass slos=[...])"
                )
            from repro.observe.policy import PolicyConfig, PolicyEngine

            config = policy if isinstance(policy, PolicyConfig) else None
            self.policy = PolicyEngine(config)
            policy_dir = log_dir or self.flight_dir
            if policy_dir is None:
                policy_dir = tempfile.mkdtemp(prefix="neptune-policy-")
            self.policy_log_path = os.path.join(policy_dir, "policy-actions.log")
        descriptor = graph.to_descriptor()
        descriptor["config"] = config_to_dict(graph.config)
        plan_raw = {
            "n_workers": self.plan.n_workers,
            "assignment": [
                [op, idx, worker]
                for (op, idx), worker in sorted(self.plan.assignment.items())
            ],
        }
        self.handles: List[WorkerHandle] = []
        for w in range(self.n_workers):
            worker_obs: Optional[Dict[str, Any]] = None
            if obs_cfg is not None and self.flight_dir is not None:
                worker_obs = dict(obs_cfg)
                worker_obs["flight_path"] = os.path.join(
                    self.flight_dir, f"flight-w{w}.json"
                )
            spec = WorkerSpec(
                worker_id=w,
                descriptor=descriptor,
                plan=plan_raw,
                endpoints=endpoints,
                control_port=control_ports[w],
                observe=worker_obs,
            )
            log_path = (
                os.path.join(log_dir, f"worker-{w}.log") if log_dir else None
            )
            self.handles.append(WorkerHandle(spec=spec, log_path=log_path))
        self.job: Optional[RemoteDistributedJob] = None

    # -- lifecycle -----------------------------------------------------------
    def launch(self, connect_timeout: float = 60.0) -> RemoteDistributedJob:
        """Spawn every worker, connect control proxies, return the job.

        When ``verify`` is on (the default), the NEPG130–139 plan
        verifier runs first and a failing plan raises
        :class:`~repro.util.errors.PlanVerificationError` *before* any
        worker process is spawned — fail-fast, nothing to tear down.
        """
        if self.verify:
            from repro.analysis.plancheck import verify_plan
            from repro.util.errors import PlanVerificationError

            report = verify_plan(
                self._graph, self.plan, specs=[h.spec for h in self.handles]
            )
            if report.errors():
                raise PlanVerificationError(report)
        for handle in self.handles:
            self._spawn(handle)
        for handle in self.handles:
            self._connect(handle, connect_timeout)
        self.job = RemoteDistributedJob([h.proxy for h in self.handles])
        if self.collector is not None:
            for handle in self.handles:
                self._attach_collect(handle)
            # Drain hook: one final synchronous poll after the cluster
            # quiesces but before workers stop, so the merged view holds
            # the run's complete tail (spans, events, final counters).
            self.job.pre_stop_hooks.append(self._final_collect)
            if self.policy is not None and self.policy_log_path is not None:
                # Fresh log per launch: the file holds exactly this
                # run's canonical action lines (the determinism unit).
                with open(self.policy_log_path, "w", encoding="utf-8"):
                    pass
                self.collector.on_scan = self._on_health_scan
            self.collector.start()
        return self.job

    def _attach_collect(self, handle: WorkerHandle) -> None:
        collector = self.collector
        if collector is None:
            return

        def fetch(h: WorkerHandle = handle) -> Optional[Mapping[str, Any]]:
            # Re-read the proxy each call: restart_worker splices in a
            # fresh one and this closure keeps working unchanged.
            proxy = h.proxy
            if proxy is None or not h.alive:
                return None
            return proxy.collect()

        collector.attach(handle.worker_id, fetch)

    def _final_collect(self) -> None:
        if self.collector is not None:
            self.collector.stop()
            self.collector.poll_once()

    def _spawn(self, handle: WorkerHandle) -> None:
        process = self._ctx.Process(
            target=worker_entry,
            args=(handle.spec.to_json(), handle.log_path),
            name=f"neptune-worker-{handle.worker_id}",
        )
        process.start()
        handle.process = process
        handle.proxy = None

    def _connect(self, handle: WorkerHandle, timeout: float) -> None:
        try:
            handle.proxy = RemoteWorker(
                "127.0.0.1", handle.spec.control_port, connect_timeout=timeout
            )
        except ControlError:
            self.terminate()
            raise

    def kill_worker(
        self,
        worker_id: int,
        sig: int = signal.SIGKILL,
        dump: Optional[bool] = None,
    ) -> None:
        """Send ``sig`` to one worker process and reap it (chaos path:
        SIGKILL means no drain, no goodbye — exactly what a crashed
        shard looks like to its peers).

        When the observability plane is on, a flight-recorder dump is
        requested over the control channel first (best-effort — the
        worker's own periodic dump already survives a straight SIGKILL).
        Pass ``dump=False`` for a pure, no-warning kill.
        """
        handle = self.handles[worker_id]
        if handle.process is None:
            raise NeptuneError(f"worker {worker_id} was never spawned")
        if dump is None:
            dump = self.collector is not None
        if dump and handle.proxy is not None and handle.alive:
            try:
                handle.proxy.flight_dump()
            except (ControlError, OSError):
                pass
        if handle.pid is not None and handle.alive:
            os.kill(handle.pid, sig)
        handle.process.join(10.0)

    def restart_worker(
        self,
        worker_id: int,
        connect_timeout: float = 60.0,
        spec: Optional[WorkerSpec] = None,
    ) -> None:
        """Respawn a dead worker (same ports / socket paths) and splice
        the fresh proxy into the job.

        ``spec`` overrides the shard's spec for the new incarnation
        (the migration path ships a re-planned spec); default is the
        identical spec.  Either way the spec's ``incarnation`` is
        bumped to the new restart count so the collector can fence the
        dead incarnation's in-flight telemetry.
        """
        handle = self.handles[worker_id]
        if handle.alive:
            raise NeptuneError(f"worker {worker_id} is still running")
        new_incarnation = handle.restarts + 1
        handle.spec = replace(
            spec if spec is not None else handle.spec,
            incarnation=new_incarnation,
        )
        self._spawn(handle)
        handle.restarts += 1
        if self.collector is not None:
            # Fence BEFORE the fresh proxy is spliced in: a delta the
            # dead incarnation built (fetched pre-kill, absorbed after
            # this point) would otherwise land under the new worker
            # label with a high seq and bury the restarted sequence.
            # reset_worker also forgets the old cursor so the fresh
            # process's seq=1 is not dropped as stale (span identity
            # dedup still suppresses re-shipped hops).
            self.collector.reset_worker(worker_id, incarnation=new_incarnation)
        self._connect(handle, connect_timeout)
        if self.job is not None:
            self.job.workers[worker_id] = handle.proxy

    # -- elasticity (policy act path) ----------------------------------------
    def _on_health_scan(self, scan: int, transitions: List[Any]) -> None:
        """Collector hook: one health scan's transitions → policy →
        applied actions.  Runs on the collector poll thread, which also
        runs the delta fetchers — every proxy use here is serialized
        with collection (and RemoteWorker calls are locked anyway)."""
        if self.policy is None or not transitions:
            return
        from repro.observe.doctor import diagnose
        from repro.observe.export import snapshot

        report = diagnose(snapshot(self.collector.observer))
        actions = self.policy.observe(
            scan, transitions, report, self.collector.observer
        )
        for action in actions:
            self._apply_policy_action(action)

    def _apply_policy_action(self, action: Any) -> None:
        """Apply one engine decision to the live cluster.

        Retunes broadcast to every worker (the buffer legs feeding an
        operator live on whichever shards host its upstreams; shards
        owning none apply nothing).  Scales target the attributed
        worker.  Migrations go through :meth:`migrate_operator` with a
        deterministic target (lowest-id other worker).  The action is
        logged whether or not applying succeeds: the log records
        decisions, the ``policy_applied`` journal records outcomes.
        """
        from repro.observe.policy import action_to_changes

        applied: List[Dict[str, Any]] = []
        try:
            if action.kind == "migrate":
                from_worker = int(action.params.get("from_worker", -1))
                targets = [
                    h.worker_id for h in self.handles if h.worker_id != from_worker
                ]
                if not targets:
                    self.policy_errors += 1
                else:
                    applied.append(self.migrate_operator(action.operator, targets[0]))
            else:
                changes = action_to_changes(action)
                handles = self.handles
                if action.kind == "scale" and action.worker is not None:
                    handles = [self.handles[action.worker]]
                for handle in handles:
                    proxy = handle.proxy
                    if proxy is None or not handle.alive:
                        continue
                    try:
                        applied.append(proxy.reconfigure(changes))
                    except (ControlError, OSError):
                        self.policy_errors += 1
        except NeptuneError:
            self.policy_errors += 1
        finally:
            self.policy_applied.append(
                {"action": action.as_dict(), "applied": applied}
            )
            if self.policy_log_path is not None:
                with open(self.policy_log_path, "a", encoding="utf-8") as fh:
                    fh.write(action.as_line() + "\n")

    def policy_status(self) -> Dict[str, Any]:
        """JSON-friendly policy summary (``repro policy status``)."""
        if self.policy is None:
            return {"enabled": False}
        status = dict(self.policy.status())
        status["enabled"] = True
        status["log"] = self.policy_log_path
        status["errors"] = self.policy_errors
        status["applied"] = self.policy_applied
        return status

    def migrate_operator(
        self, operator: str, to_worker: int, connect_timeout: float = 60.0
    ) -> Dict[str, Any]:
        """Move every instance of ``operator`` to ``to_worker`` via
        verified re-plan + kill/restart splicing, preserving
        exactly-once delivery.

        Safety interlocks, in order:

        1. The new plan (current assignment with ``operator`` pinned to
           ``to_worker``) is re-verified by the NEPG130–139 checker —
           including NEPG138 exactly-once coverage — *before* any
           process is touched; a failing plan raises and the cluster is
           untouched.
        2. The restart set is ``to_worker`` plus every worker hosting
           ``operator`` or any operator transitively upstream of it.
           Restarted shards replay deterministically from their
           sources; surviving receivers' link-id-keyed
           :class:`~repro.net.framing.SequenceTracker` state suppresses
           the replayed prefix, so delivery stays exactly-once (the
           same mechanism as :meth:`restart_worker`; DESIGN.md §12).
        3. No worker in the restart set may host a sink: a sink's
           external effects have already escaped, so replaying into a
           *fresh* tracker would emit duplicates.  Such a migration is
           refused.

        Returns a JSON-able report of what moved and what restarted.
        """
        if operator not in self._graph.operators:
            raise NeptuneError(f"unknown operator {operator!r}")
        if not 0 <= to_worker < self.n_workers:
            raise NeptuneError(
                f"target worker {to_worker} out of range 0..{self.n_workers - 1}"
            )
        new_assignment = dict(self.plan.assignment)
        moved_from = sorted(
            {w for (op, _idx), w in new_assignment.items() if op == operator}
        )
        for key in list(new_assignment):
            if key[0] == operator:
                new_assignment[key] = to_worker
        new_plan = DeploymentPlan(self.n_workers, new_assignment)
        # Transitive upstream closure of the migrated operator: those
        # shards must replay from their sources for the migrated
        # instances to regenerate their full input.
        upstream_of: Dict[str, set] = {}
        for link in self._graph.links:
            upstream_of.setdefault(link.to_op, set()).add(link.from_op)
        replay_ops = {operator}
        frontier = [operator]
        while frontier:
            for up in upstream_of.get(frontier.pop(), ()):
                if up not in replay_ops:
                    replay_ops.add(up)
                    frontier.append(up)
        restart = {to_worker}
        for (op, _idx), worker in self.plan.assignment.items():
            if op in replay_ops:
                restart.add(worker)
        sinks = {
            name
            for name in self._graph.operators
            if name not in {link.from_op for link in self._graph.links}
        }
        for (op, _idx), worker in self.plan.assignment.items():
            if op in sinks and worker in restart and op not in replay_ops:
                raise NeptuneError(
                    f"cannot migrate {operator!r}: worker {worker} is in the "
                    f"restart set but hosts sink {op!r} whose effects have "
                    "already escaped (replay into a fresh tracker would "
                    "duplicate them)"
                )
        if sinks & replay_ops:
            raise NeptuneError(
                f"cannot migrate {operator!r}: the replay closure contains "
                f"sink(s) {sorted(sinks & replay_ops)!r} — sink effects are "
                "external and cannot be replayed exactly-once"
            )
        plan_raw = {
            "n_workers": new_plan.n_workers,
            "assignment": [
                [op, idx, worker]
                for (op, idx), worker in sorted(new_plan.assignment.items())
            ],
        }
        new_specs = [replace(h.spec, plan=plan_raw) for h in self.handles]
        from repro.analysis.plancheck import verify_plan
        from repro.util.errors import PlanVerificationError

        report = verify_plan(self._graph, new_plan, specs=new_specs)
        if report.errors():
            raise PlanVerificationError(report)
        # Commit: every future (re)spawn — including unrelated crash
        # restarts — uses the converged plan.
        self.plan = new_plan
        for handle, spec in zip(self.handles, new_specs):
            handle.spec = spec
        ordered = sorted(restart)
        # Kill the whole restart set first so no mixed-plan window
        # exists in which an old-plan sender routes to a new-plan host.
        for worker_id in ordered:
            if self.handles[worker_id].alive:
                self.kill_worker(worker_id)
        for worker_id in ordered:
            self.restart_worker(worker_id, connect_timeout=connect_timeout)
        return {
            "kind": "migrate",
            "operator": operator,
            "from": moved_from,
            "to": to_worker,
            "restarted": ordered,
        }

    def await_completion(self, timeout: float = 60.0) -> bool:
        """Coordinated global drain after natural source completion."""
        if self.job is None:
            raise NeptuneError("cluster not launched")
        try:
            return self.job.await_completion(timeout=timeout)
        except (ControlError, OSError):
            return False  # a worker vanished mid-drain: not quiesced
        finally:
            self._join_all()

    def stop(self, timeout: float = 60.0) -> bool:
        """Force-drain, stop every worker, reap processes, clean up."""
        quiesced = True
        if self.job is not None:
            try:
                quiesced = self.job.stop(timeout=timeout)
            except (ControlError, OSError):
                quiesced = False
        self.terminate()
        return quiesced

    def terminate(self) -> None:
        """Hard teardown: no drain, just reap. Idempotent — the
        guaranteed-cleanup path for tests and error exits.  Flight
        dumps are left on disk: they are the post-mortem."""
        if self.collector is not None:
            self.collector.stop()
        for handle in self.handles:
            proxy, handle.proxy = handle.proxy, None
            if proxy is not None:
                try:
                    proxy._sock.close()
                except OSError:
                    pass
        for handle in self.handles:
            process = handle.process
            if process is None:
                continue
            if process.is_alive():
                process.terminate()
                process.join(5.0)
            if process.is_alive():
                process.kill()
                process.join(5.0)
        self._cleanup_fabric()

    def _join_all(self) -> None:
        if self.collector is not None:
            self.collector.stop()
        for handle in self.handles:
            if handle.process is not None:
                handle.process.join(10.0)
        self._cleanup_fabric()

    def _cleanup_fabric(self) -> None:
        if self.fabric != "unix" or self._socket_dir is None:
            return
        for w in range(self.n_workers):
            try:
                os.unlink(os.path.join(self._socket_dir, f"w{w}.sock"))
            except OSError:
                pass
        if self._own_socket_dir:
            try:
                os.rmdir(self._socket_dir)
            except OSError:
                pass

    # -- observation ---------------------------------------------------------
    def metrics(self) -> Dict[str, Dict[str, float]]:
        """Aggregated per-operator counters across all live shards."""
        if self.job is None:
            raise NeptuneError("cluster not launched")
        return self.job.metrics()

    def scrape_into(self, registry: Any) -> None:
        """Absorb every shard's worker-labelled telemetry series into
        ``registry`` (the cross-process analogue of
        :func:`repro.observe.bridge.scrape_distributed`)."""
        from repro.observe.bridge import absorb_series

        for handle in self.handles:
            if handle.proxy is not None:
                absorb_series(registry, handle.proxy.telemetry())

    def flight_paths(self) -> List[str]:
        """Per-worker flight-dump paths that exist on disk right now."""
        out: List[str] = []
        for handle in self.handles:
            path = (handle.spec.observe or {}).get("flight_path")
            if path and os.path.exists(str(path)):
                out.append(str(path))
        return out

    def status(self) -> List[Dict[str, Any]]:
        """Per-worker liveness/progress snapshot (the CLI's view)."""
        ages: Dict[int, Optional[float]] = (
            self.collector.ages() if self.collector is not None else {}
        )
        out: List[Dict[str, Any]] = []
        for handle in self.handles:
            entry: Dict[str, Any] = {
                "worker_id": handle.worker_id,
                "pid": handle.pid,
                "alive": handle.alive,
                "restarts": handle.restarts,
                "control_port": handle.spec.control_port,
                "endpoint": list(handle.spec.endpoints[handle.worker_id]),
            }
            if self.collector is not None:
                entry["last_collect_age"] = ages.get(handle.worker_id)
            if handle.proxy is not None and handle.alive:
                try:
                    entry["quiet"] = handle.proxy.is_quiet()
                    entry["failures"] = handle.proxy.failures
                except (ControlError, OSError):
                    entry["quiet"] = None
            out.append(entry)
        return out

    # -- state file (CLI attach) ---------------------------------------------
    def state(self) -> Dict[str, Any]:
        """JSON-able handle for out-of-process ``status``/``stop``."""
        return {
            "fabric": self.fabric,
            "observe": self.collector is not None,
            "flight_dir": self.flight_dir,
            "policy": {
                "enabled": self.policy is not None,
                "log": self.policy_log_path,
            },
            "workers": [
                {
                    "worker_id": h.worker_id,
                    "pid": h.pid,
                    "control_host": "127.0.0.1",
                    "control_port": h.spec.control_port,
                    "endpoint": list(h.spec.endpoints[h.worker_id]),
                    "log": h.log_path,
                    "flight_path": (h.spec.observe or {}).get("flight_path"),
                }
                for h in self.handles
            ],
        }

    def write_state(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.state(), fh, indent=2, sort_keys=True)
            fh.write("\n")


def attach_proxies(
    state: Mapping[str, Any], connect_timeout: float = 5.0
) -> List[RemoteWorker]:
    """Connect control proxies to a running cluster from its state file.

    Raises :class:`~repro.core.control.ControlError` if any worker's
    control port is unreachable (cluster gone or still starting).
    """
    workers: Sequence[Mapping[str, Any]] = state.get("workers", [])
    if not workers:
        raise NeptuneError("cluster state lists no workers")
    return [
        RemoteWorker(
            str(w.get("control_host", "127.0.0.1")),
            int(w["control_port"]),
            connect_timeout=connect_timeout,
        )
        for w in workers
    ]
