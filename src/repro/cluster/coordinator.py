"""Cluster coordinator: plan shards, spawn worker processes, drive them.

The control plane half of the process split: one coordinator object
owns N worker *processes* (``multiprocessing`` spawn context — fresh
interpreters, no forked locks), ships each a :class:`WorkerSpec`,
connects a :class:`~repro.core.control.RemoteWorker` proxy to every
control port, and reuses :class:`~repro.core.control.RemoteDistributedJob`
for the coordinated global drain.  The data plane between shards is
the workers' own :class:`~repro.net.transport.TcpTransport` links —
over loopback TCP, or over Unix-domain sockets when ``fabric="unix"``.

Failure semantics: a worker that dies mid-stream can be respawned with
the *identical* spec (:meth:`ClusterCoordinator.restart_worker`); its
peers' listeners keep their :class:`~repro.net.framing.SequenceTracker`
state, so the restarted shard's replayed frames are suppressed as
duplicates and delivery stays exactly-once (see DESIGN.md §12).
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import tempfile
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.cluster.ports import reserve_ports
from repro.cluster.spec import WorkerSpec, build_plan, config_to_dict
from repro.cluster.worker import worker_entry
from repro.core.control import ControlError, RemoteDistributedJob, RemoteWorker
from repro.core.distributed import DeploymentPlan
from repro.core.graph import StreamProcessingGraph
from repro.util.errors import NeptuneError


@dataclass
class WorkerHandle:
    """One worker shard: its spec, live process, and control proxy."""

    spec: WorkerSpec
    log_path: Optional[str] = None
    process: Optional[Any] = None
    proxy: Optional[RemoteWorker] = None
    restarts: int = field(default=0)

    @property
    def worker_id(self) -> int:
        return self.spec.worker_id

    @property
    def pid(self) -> Optional[int]:
        return self.process.pid if self.process is not None else None

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()


class ClusterCoordinator:
    """Plan, spawn, and coordinate N worker processes for one graph.

    Parameters
    ----------
    graph:
        The full :class:`StreamProcessingGraph`; every worker receives
        its complete descriptor (wire ids derive from the shared
        topology without coordination) plus the deployment plan naming
        which operator instances it hosts.
    n_workers:
        Shard count (ignored when an explicit ``plan`` is given).
    plan:
        Pre-built :class:`DeploymentPlan`; default is
        :func:`~repro.cluster.spec.build_plan` round-robin.
    fabric:
        ``"tcp"`` (loopback TCP data plane) or ``"unix"`` (Unix-domain
        sockets — same framing/ack/replay protocol, no TCP stack).
        Control ports are always TCP.
    socket_dir:
        Directory for ``fabric="unix"`` socket files (default: a fresh
        temp dir, removed on :meth:`stop`).
    log_dir:
        When set, each worker appends stdout/stderr to
        ``<log_dir>/worker-<id>.log`` instead of inheriting the
        coordinator's streams.
    verify:
        Run the NEPG130–139 deployment-plan verifier before spawning
        (:mod:`repro.analysis.plancheck`); :meth:`launch` raises
        :class:`~repro.util.errors.PlanVerificationError` on any error
        finding, before any process exists.  ``False`` opts out (e.g.
        to deliberately deploy a degraded plan in a chaos test).
    """

    def __init__(
        self,
        graph: StreamProcessingGraph,
        n_workers: int = 2,
        plan: Optional[DeploymentPlan] = None,
        fabric: str = "tcp",
        host: str = "127.0.0.1",
        socket_dir: Optional[str] = None,
        log_dir: Optional[str] = None,
        verify: bool = True,
    ) -> None:
        graph.validate()
        if fabric not in ("tcp", "unix"):
            raise NeptuneError(f"unknown fabric {fabric!r} (tcp or unix)")
        self._graph = graph
        self.verify = verify
        self.plan = plan if plan is not None else build_plan(graph, n_workers)
        self.n_workers = self.plan.n_workers
        self.fabric = fabric
        self._ctx = multiprocessing.get_context("spawn")
        self._own_socket_dir = fabric == "unix" and socket_dir is None
        self._socket_dir = socket_dir
        if fabric == "unix":
            if self._socket_dir is None:
                self._socket_dir = tempfile.mkdtemp(prefix="neptune-cluster-")
            endpoints = {
                w: (f"unix:{os.path.join(self._socket_dir, f'w{w}.sock')}", 0)
                for w in range(self.n_workers)
            }
            control_ports = reserve_ports(self.n_workers, "127.0.0.1")
        elif host == "127.0.0.1":
            # Data and control share the loopback host: reserve both in
            # ONE batch.  Two sequential reserve_ports calls release the
            # first batch's probe sockets before the second binds, so
            # the kernel may hand a data port back as a control port —
            # a NEPG133 collision that kills a worker at spawn.
            batch = reserve_ports(2 * self.n_workers, host)
            data_ports = batch[: self.n_workers]
            control_ports = batch[self.n_workers :]
            endpoints = {w: (host, data_ports[w]) for w in range(self.n_workers)}
        else:
            data_ports = reserve_ports(self.n_workers, host)
            control_ports = reserve_ports(self.n_workers, "127.0.0.1")
            endpoints = {w: (host, data_ports[w]) for w in range(self.n_workers)}
        descriptor = graph.to_descriptor()
        descriptor["config"] = config_to_dict(graph.config)
        plan_raw = {
            "n_workers": self.plan.n_workers,
            "assignment": [
                [op, idx, worker]
                for (op, idx), worker in sorted(self.plan.assignment.items())
            ],
        }
        self.handles: List[WorkerHandle] = []
        for w in range(self.n_workers):
            spec = WorkerSpec(
                worker_id=w,
                descriptor=descriptor,
                plan=plan_raw,
                endpoints=endpoints,
                control_port=control_ports[w],
            )
            log_path = (
                os.path.join(log_dir, f"worker-{w}.log") if log_dir else None
            )
            self.handles.append(WorkerHandle(spec=spec, log_path=log_path))
        self.job: Optional[RemoteDistributedJob] = None

    # -- lifecycle -----------------------------------------------------------
    def launch(self, connect_timeout: float = 60.0) -> RemoteDistributedJob:
        """Spawn every worker, connect control proxies, return the job.

        When ``verify`` is on (the default), the NEPG130–139 plan
        verifier runs first and a failing plan raises
        :class:`~repro.util.errors.PlanVerificationError` *before* any
        worker process is spawned — fail-fast, nothing to tear down.
        """
        if self.verify:
            from repro.analysis.plancheck import verify_plan
            from repro.util.errors import PlanVerificationError

            report = verify_plan(
                self._graph, self.plan, specs=[h.spec for h in self.handles]
            )
            if report.errors():
                raise PlanVerificationError(report)
        for handle in self.handles:
            self._spawn(handle)
        for handle in self.handles:
            self._connect(handle, connect_timeout)
        self.job = RemoteDistributedJob([h.proxy for h in self.handles])
        return self.job

    def _spawn(self, handle: WorkerHandle) -> None:
        process = self._ctx.Process(
            target=worker_entry,
            args=(handle.spec.to_json(), handle.log_path),
            name=f"neptune-worker-{handle.worker_id}",
        )
        process.start()
        handle.process = process
        handle.proxy = None

    def _connect(self, handle: WorkerHandle, timeout: float) -> None:
        try:
            handle.proxy = RemoteWorker(
                "127.0.0.1", handle.spec.control_port, connect_timeout=timeout
            )
        except ControlError:
            self.terminate()
            raise

    def kill_worker(self, worker_id: int, sig: int = signal.SIGKILL) -> None:
        """Send ``sig`` to one worker process and reap it (chaos path:
        SIGKILL means no drain, no goodbye — exactly what a crashed
        shard looks like to its peers)."""
        handle = self.handles[worker_id]
        if handle.process is None:
            raise NeptuneError(f"worker {worker_id} was never spawned")
        if handle.pid is not None and handle.alive:
            os.kill(handle.pid, sig)
        handle.process.join(10.0)

    def restart_worker(self, worker_id: int, connect_timeout: float = 60.0) -> None:
        """Respawn a dead worker with its identical spec (same ports /
        socket paths) and splice the fresh proxy into the job."""
        handle = self.handles[worker_id]
        if handle.alive:
            raise NeptuneError(f"worker {worker_id} is still running")
        self._spawn(handle)
        handle.restarts += 1
        self._connect(handle, connect_timeout)
        if self.job is not None:
            self.job.workers[worker_id] = handle.proxy

    def await_completion(self, timeout: float = 60.0) -> bool:
        """Coordinated global drain after natural source completion."""
        if self.job is None:
            raise NeptuneError("cluster not launched")
        try:
            return self.job.await_completion(timeout=timeout)
        except (ControlError, OSError):
            return False  # a worker vanished mid-drain: not quiesced
        finally:
            self._join_all()

    def stop(self, timeout: float = 60.0) -> bool:
        """Force-drain, stop every worker, reap processes, clean up."""
        quiesced = True
        if self.job is not None:
            try:
                quiesced = self.job.stop(timeout=timeout)
            except (ControlError, OSError):
                quiesced = False
        self.terminate()
        return quiesced

    def terminate(self) -> None:
        """Hard teardown: no drain, just reap. Idempotent — the
        guaranteed-cleanup path for tests and error exits."""
        for handle in self.handles:
            proxy, handle.proxy = handle.proxy, None
            if proxy is not None:
                try:
                    proxy._sock.close()
                except OSError:
                    pass
        for handle in self.handles:
            process = handle.process
            if process is None:
                continue
            if process.is_alive():
                process.terminate()
                process.join(5.0)
            if process.is_alive():
                process.kill()
                process.join(5.0)
        self._cleanup_fabric()

    def _join_all(self) -> None:
        for handle in self.handles:
            if handle.process is not None:
                handle.process.join(10.0)
        self._cleanup_fabric()

    def _cleanup_fabric(self) -> None:
        if self.fabric != "unix" or self._socket_dir is None:
            return
        for w in range(self.n_workers):
            try:
                os.unlink(os.path.join(self._socket_dir, f"w{w}.sock"))
            except OSError:
                pass
        if self._own_socket_dir:
            try:
                os.rmdir(self._socket_dir)
            except OSError:
                pass

    # -- observation ---------------------------------------------------------
    def metrics(self) -> Dict[str, Dict[str, float]]:
        """Aggregated per-operator counters across all live shards."""
        if self.job is None:
            raise NeptuneError("cluster not launched")
        return self.job.metrics()

    def scrape_into(self, registry: Any) -> None:
        """Absorb every shard's worker-labelled telemetry series into
        ``registry`` (the cross-process analogue of
        :func:`repro.observe.bridge.scrape_distributed`)."""
        from repro.observe.bridge import absorb_series

        for handle in self.handles:
            if handle.proxy is not None:
                absorb_series(registry, handle.proxy.telemetry())

    def status(self) -> List[Dict[str, Any]]:
        """Per-worker liveness/progress snapshot (the CLI's view)."""
        out: List[Dict[str, Any]] = []
        for handle in self.handles:
            entry: Dict[str, Any] = {
                "worker_id": handle.worker_id,
                "pid": handle.pid,
                "alive": handle.alive,
                "restarts": handle.restarts,
                "control_port": handle.spec.control_port,
                "endpoint": list(handle.spec.endpoints[handle.worker_id]),
            }
            if handle.proxy is not None and handle.alive:
                try:
                    entry["quiet"] = handle.proxy.is_quiet()
                    entry["failures"] = handle.proxy.failures
                except (ControlError, OSError):
                    entry["quiet"] = None
            out.append(entry)
        return out

    # -- state file (CLI attach) ---------------------------------------------
    def state(self) -> Dict[str, Any]:
        """JSON-able handle for out-of-process ``status``/``stop``."""
        return {
            "fabric": self.fabric,
            "workers": [
                {
                    "worker_id": h.worker_id,
                    "pid": h.pid,
                    "control_host": "127.0.0.1",
                    "control_port": h.spec.control_port,
                    "endpoint": list(h.spec.endpoints[h.worker_id]),
                    "log": h.log_path,
                }
                for h in self.handles
            ],
        }

    def write_state(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.state(), fh, indent=2, sort_keys=True)
            fh.write("\n")


def attach_proxies(
    state: Mapping[str, Any], connect_timeout: float = 5.0
) -> List[RemoteWorker]:
    """Connect control proxies to a running cluster from its state file.

    Raises :class:`~repro.core.control.ControlError` if any worker's
    control port is unreachable (cluster gone or still starting).
    """
    workers: Sequence[Mapping[str, Any]] = state.get("workers", [])
    if not workers:
        raise NeptuneError("cluster state lists no workers")
    return [
        RemoteWorker(
            str(w.get("control_host", "127.0.0.1")),
            int(w["control_port"]),
            connect_timeout=connect_timeout,
        )
        for w in workers
    ]
