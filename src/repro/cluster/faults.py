"""Drive :mod:`repro.chaos` fault plans against live worker processes.

The simulator applies a :class:`~repro.chaos.plan.FaultPlan` to
modelled resources; here the same plan vocabulary addresses *real*
processes: a scripted ``KILL_NODE`` entry at site
``cluster.worker.<id>`` with index ``K`` means "when end-to-end
progress reaches K, SIGKILL worker <id>".  Progress is whatever
counter the test polls (typically the sink's delivered-packet count),
so kill points are expressed in stream position — deterministic and
replayable — rather than wall-clock time.
"""

from __future__ import annotations

import signal
from typing import List, Tuple

from repro.chaos.plan import FaultAction, FaultPlan
from repro.cluster.coordinator import ClusterCoordinator

#: Site prefix addressing worker processes in a fault plan.
SITE_PREFIX = "cluster.worker"


def worker_site(worker_id: int) -> str:
    """The fault-plan site naming one worker process."""
    return f"{SITE_PREFIX}.{worker_id}"


class ProcessFaultDriver:
    """Apply a plan's scripted ``KILL_NODE`` entries to real processes.

    Parameters
    ----------
    coordinator:
        The live cluster; kills go through
        :meth:`~repro.cluster.coordinator.ClusterCoordinator.kill_worker`.
    plan:
        Fault plan whose *scripted* entries at ``cluster.worker.<id>``
        sites are honoured (rate-based faults make no sense against a
        progress counter and are ignored).
    restart:
        Respawn each killed worker immediately with its identical spec
        (the recovery path under test); False leaves the hole open.
    """

    def __init__(
        self,
        coordinator: ClusterCoordinator,
        plan: FaultPlan,
        restart: bool = True,
    ) -> None:
        self.coordinator = coordinator
        self.restart = restart
        self.killed: List[Tuple[int, int]] = []  # (progress, worker_id)
        pending: List[Tuple[int, int]] = []
        for scripted in plan.script:
            if scripted.action != FaultAction.KILL_NODE:
                continue
            if not scripted.site.startswith(SITE_PREFIX + "."):
                continue
            worker_id = int(scripted.site[len(SITE_PREFIX) + 1 :])
            if not 0 <= worker_id < coordinator.n_workers:
                raise ValueError(
                    f"fault plan kills worker {worker_id}, but the cluster "
                    f"has {coordinator.n_workers}"
                )
            pending.append((scripted.index, worker_id))
        self._pending = sorted(pending, reverse=True)  # pop() takes lowest

    @property
    def pending(self) -> int:
        """Kill entries not yet fired."""
        return len(self._pending)

    def poll(self, progress: int) -> List[int]:
        """Fire every kill whose index has been reached; returns the
        worker ids killed on this call (empty most of the time)."""
        fired: List[int] = []
        while self._pending and progress >= self._pending[-1][0]:
            index, worker_id = self._pending.pop()
            self.coordinator.kill_worker(worker_id, sig=signal.SIGKILL)
            self.killed.append((index, worker_id))
            fired.append(worker_id)
            if self.restart:
                self.coordinator.restart_worker(worker_id)
        return fired
