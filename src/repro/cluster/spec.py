"""Per-shard worker specs: everything one worker process needs to run.

A :class:`WorkerSpec` is the unit the coordinator ships to each spawned
process: the full graph descriptor (every worker knows the whole
topology — wire ids are derived from it without coordination), the
deployment plan, the data-plane endpoint map, and the worker's own
control port.  Specs are plain JSON so the spawn boundary stays
interpreter-agnostic and a spec file can be inspected or replayed by
hand.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Sequence, Tuple

from repro.core.config import NeptuneConfig
from repro.core.distributed import (
    DeploymentPlan,
    capability_weighted_plan,
    round_robin_plan,
)
from repro.core.graph import StreamProcessingGraph
from repro.util.errors import NeptuneError


def config_to_dict(config: NeptuneConfig) -> Dict[str, Any]:
    """Serialize a :class:`NeptuneConfig` for a descriptor ``"config"``
    block (``from_descriptor`` rebuilds it with ``NeptuneConfig(**d)``)."""
    return dataclasses.asdict(config)


def build_plan(
    graph: StreamProcessingGraph,
    n_workers: int,
    scheme: str = "round-robin",
    capabilities: Optional[Sequence[float]] = None,
    pin: Optional[Mapping[str, int]] = None,
) -> DeploymentPlan:
    """Plan operator shards for ``n_workers`` processes.

    ``scheme`` picks the base planner (``round-robin`` or
    ``capability``); ``pin`` then overrides the placement of whole
    operators (every instance of that operator) onto a named worker —
    chaos tests use this to isolate a source on its own process.
    """
    if scheme == "round-robin":
        plan = round_robin_plan(graph, n_workers)
    elif scheme == "capability":
        caps = list(capabilities) if capabilities is not None else [1.0] * n_workers
        if len(caps) != n_workers:
            raise NeptuneError(
                f"capability list has {len(caps)} entries for {n_workers} workers"
            )
        plan = capability_weighted_plan(graph, caps)
    else:
        raise NeptuneError(f"unknown plan scheme: {scheme!r}")
    if not pin:
        return plan
    known = set(graph.operators)
    assignment = dict(plan.assignment)
    for op_name, worker in pin.items():
        if op_name not in known:
            raise NeptuneError(f"pin names unknown operator: {op_name!r}")
        if not 0 <= worker < n_workers:
            raise NeptuneError(
                f"pin for {op_name!r} targets worker {worker} of {n_workers}"
            )
        for key in assignment:
            if key[0] == op_name:
                assignment[key] = worker
    return DeploymentPlan(n_workers=n_workers, assignment=assignment)


@dataclass(frozen=True)
class WorkerSpec:
    """One worker process's share of a cluster deployment.

    ``observe`` (optional) configures the worker's observability plane:
    ``sample_every`` (trace sampling), ``slos`` (worker-local health
    engine config), ``flight_path`` / ``flight_every`` (black-box
    flight recorder), ``scan_interval``.  Absent → the worker runs
    unobserved, exactly as before this field existed.

    ``incarnation`` counts process (re)spawns of this shard: 0 for the
    first launch, then the coordinator's restart count.  The worker
    stamps it on every telemetry delta so the collector can fence
    deltas from a dead incarnation (see
    :meth:`~repro.observe.collector.ClusterCollector.reset_worker`).
    """

    worker_id: int
    descriptor: Dict[str, Any]
    plan: Dict[str, Any]
    endpoints: Dict[int, Tuple[str, int]]
    control_port: int
    observe: Optional[Dict[str, Any]] = None
    incarnation: int = 0

    def to_json(self) -> str:
        raw: Dict[str, Any] = {
            "worker_id": self.worker_id,
            "descriptor": self.descriptor,
            "plan": self.plan,
            "endpoints": {str(w): list(ep) for w, ep in self.endpoints.items()},
            "control_port": self.control_port,
            "incarnation": self.incarnation,
        }
        if self.observe is not None:
            raw["observe"] = self.observe
        return json.dumps(raw)

    @classmethod
    def from_json(cls, text: str) -> "WorkerSpec":
        raw = json.loads(text)
        try:
            return cls(
                worker_id=int(raw["worker_id"]),
                descriptor=raw["descriptor"],
                plan=raw["plan"],
                endpoints={
                    int(w): (str(ep[0]), int(ep[1]))
                    for w, ep in raw["endpoints"].items()
                },
                control_port=int(raw["control_port"]),
                observe=raw.get("observe"),
                incarnation=int(raw.get("incarnation", 0)),
            )
        except (KeyError, TypeError, ValueError, IndexError) as exc:
            raise NeptuneError(f"bad worker spec: {exc}") from exc

    def deployment_plan(self) -> DeploymentPlan:
        assignment = {
            (str(op), int(idx)): int(worker)
            for op, idx, worker in self.plan["assignment"]
        }
        return DeploymentPlan(
            n_workers=int(self.plan["n_workers"]), assignment=assignment
        )
