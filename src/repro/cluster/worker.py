"""Worker-process entry point for cluster deployments.

The coordinator spawns this via the ``multiprocessing`` spawn context
(a fresh interpreter — no forked locks, no inherited runtime state):
each child rebuilds its :class:`~repro.core.distributed.DistributedWorker`
from the JSON :class:`~repro.cluster.spec.WorkerSpec`, serves control
commands, and blocks until the coordinator says stop.  Also runnable by
hand (``python -m repro.cluster.worker --spec spec.json``) for
debugging a single shard.

When the spec carries an ``observe`` block the worker additionally
builds its observability plane: a :class:`~repro.observe.RuntimeObserver`
threaded through the runtime, a
:class:`~repro.observe.collector.DeltaSource` answering the control
plane's ``collect`` command, optionally a worker-local
:class:`~repro.observe.HealthEngine` over its own shard, and a
:class:`~repro.observe.flightrec.FlightRecorder` persisting a black-box
window so even a SIGKILL leaves a post-mortem on disk.
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, Optional

from repro.cluster.spec import WorkerSpec
from repro.core.control import ControlServer
from repro.core.distributed import DistributedWorker
from repro.core.graph import StreamProcessingGraph


def _build_observability(
    worker: DistributedWorker, spec: WorkerSpec, plan: Any
) -> "tuple[Any, Any]":
    """Attach observer-side facilities per ``spec.observe``.

    Returns ``(health_engine, flight_recorder)`` (either may be None).
    The DeltaSource is attached as ``worker.delta_source`` and the
    recorder as ``worker.flight_recorder`` — the duck-typed attributes
    the control server's ``collect`` / ``flight_dump`` commands read.
    """
    cfg = spec.observe or {}
    observer = worker.observer
    if observer is None:
        return None, None
    from repro.observe.bridge import registry_series, scrape_worker, worker_series
    from repro.observe.collector import DeltaSource

    # Continuous profiler: on by default with an observer attached
    # (``"profile": false`` disables, a dict overrides knobs).
    prof_cfg = cfg.get("profile") if "profile" in cfg else {}
    if prof_cfg is not None and prof_cfg is not False:
        from repro.observe.profiler import SamplingProfiler

        overrides = prof_cfg if isinstance(prof_cfg, dict) else {}
        profiler = SamplingProfiler(
            hz=float(overrides.get("hz", 50.0)),
            window_seconds=float(overrides.get("window_seconds", 5.0)),
        )
        observer.profiler = profiler
        worker.profiler = profiler
        profiler.start()

    health = None
    slo_cfg = cfg.get("slos")
    if slo_cfg:
        from repro.observe.health import HealthEngine, default_slos

        local_ops = sorted(
            {op for (op, _idx), w in plan.assignment.items() if w == spec.worker_id}
        )
        slos = default_slos(
            local_ops,
            latency_budget=float(slo_cfg.get("latency_budget", 0.05)),
            e2e_budget=None,  # e2e needs the full trace: cluster-scope only
        )
        health = HealthEngine(
            observer,
            slos,
            scrape=lambda: scrape_worker(observer.registry, worker),
            interval=float(cfg.get("scan_interval", 0.25)),
        )
    worker.delta_source = DeltaSource(
        observer,
        spec.worker_id,
        worker=worker,
        health=health,
        incarnation=spec.incarnation,
    )
    recorder = None
    flight_path = cfg.get("flight_path")
    if flight_path:
        from repro.observe.flightrec import FlightRecorder

        recorder = FlightRecorder(
            observer,
            str(flight_path),
            worker_id=spec.worker_id,
            every=float(cfg.get("flight_every", 1.0)),
            # Job metrics plus the observer registry (profiler and
            # trace/timeline series), mirroring what DeltaSource ships.
            series_fn=lambda: worker_series(worker)
            + registry_series(observer.registry, {"worker": str(spec.worker_id)}),
            monitors_fn=(
                (lambda: [dict(m.as_dict()) for m in health.monitors])
                if health is not None
                else None
            ),
        )
        recorder.install()  # SIGTERM/atexit/faulthandler (main thread)
        recorder.start()
        worker.flight_recorder = recorder
    return health, recorder


def run_worker(spec: WorkerSpec) -> int:
    """Build, wire, start, and serve one worker shard until stopped."""
    graph = StreamProcessingGraph.from_descriptor(spec.descriptor)
    graph.validate()
    plan = spec.deployment_plan()
    listen_host, listen_port = spec.endpoints[spec.worker_id]
    observer = None
    if spec.observe is not None:
        from repro.observe import RuntimeObserver

        observer = RuntimeObserver(
            sample_every=int(spec.observe.get("sample_every", 0) or 0)
        )
    worker = DistributedWorker(
        spec.worker_id,
        graph,
        plan,
        listen_host=listen_host,
        listen_port=listen_port,
        observer=observer,
    )
    health, recorder = _build_observability(worker, spec, plan)
    control = ControlServer(worker, port=spec.control_port)
    try:
        worker.connect(spec.endpoints)
        worker.start()
        if health is not None:
            health.start()
        print(
            f"worker {spec.worker_id}: data={worker.address} "
            f"control={control.port} "
            f"instances={plan.instances_on(spec.worker_id)}",
            flush=True,
        )
        control.stop_requested.wait()
    finally:
        if health is not None:
            health.stop()
        profiler = getattr(worker, "profiler", None)
        if profiler is not None:
            profiler.stop()
        if recorder is not None:
            recorder.stop()
            recorder.dump("shutdown")
        control.close()
    return 0


def worker_entry(spec_json: str, log_path: Optional[str] = None) -> None:
    """Spawn target: optionally redirect output to ``log_path``, then
    :func:`run_worker`.  Module-level so the spawn context can pickle it."""
    if log_path:
        log = open(log_path, "a", buffering=1, encoding="utf-8")
        sys.stdout = log
        sys.stderr = log
    raise SystemExit(run_worker(WorkerSpec.from_json(spec_json)))


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(prog="repro.cluster.worker")
    parser.add_argument("--spec", required=True, help="WorkerSpec JSON file")
    args = parser.parse_args(argv)
    with open(args.spec, "r", encoding="utf-8") as fh:
        return run_worker(WorkerSpec.from_json(fh.read()))


if __name__ == "__main__":  # pragma: no cover — exercised via subprocess
    raise SystemExit(main())
