"""Worker-process entry point for cluster deployments.

The coordinator spawns this via the ``multiprocessing`` spawn context
(a fresh interpreter — no forked locks, no inherited runtime state):
each child rebuilds its :class:`~repro.core.distributed.DistributedWorker`
from the JSON :class:`~repro.cluster.spec.WorkerSpec`, serves control
commands, and blocks until the coordinator says stop.  Also runnable by
hand (``python -m repro.cluster.worker --spec spec.json``) for
debugging a single shard.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional

from repro.cluster.spec import WorkerSpec
from repro.core.control import ControlServer
from repro.core.distributed import DistributedWorker
from repro.core.graph import StreamProcessingGraph


def run_worker(spec: WorkerSpec) -> int:
    """Build, wire, start, and serve one worker shard until stopped."""
    graph = StreamProcessingGraph.from_descriptor(spec.descriptor)
    graph.validate()
    plan = spec.deployment_plan()
    listen_host, listen_port = spec.endpoints[spec.worker_id]
    worker = DistributedWorker(
        spec.worker_id, graph, plan, listen_host=listen_host, listen_port=listen_port
    )
    control = ControlServer(worker, port=spec.control_port)
    try:
        worker.connect(spec.endpoints)
        worker.start()
        print(
            f"worker {spec.worker_id}: data={worker.address} "
            f"control={control.port} "
            f"instances={plan.instances_on(spec.worker_id)}",
            flush=True,
        )
        control.stop_requested.wait()
    finally:
        control.close()
    return 0


def worker_entry(spec_json: str, log_path: Optional[str] = None) -> None:
    """Spawn target: optionally redirect output to ``log_path``, then
    :func:`run_worker`.  Module-level so the spawn context can pickle it."""
    if log_path:
        log = open(log_path, "a", buffering=1, encoding="utf-8")
        sys.stdout = log
        sys.stderr = log
    raise SystemExit(run_worker(WorkerSpec.from_json(spec_json)))


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(prog="repro.cluster.worker")
    parser.add_argument("--spec", required=True, help="WorkerSpec JSON file")
    args = parser.parse_args(argv)
    with open(args.spec, "r", encoding="utf-8") as fh:
        return run_worker(WorkerSpec.from_json(fh.read()))


if __name__ == "__main__":  # pragma: no cover — exercised via subprocess
    raise SystemExit(main())
