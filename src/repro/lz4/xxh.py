"""xxHash32 — the checksum used by the LZ4 frame format.

NEPTUNE's wire framing uses xxh32 to detect corrupted stream packets in
flight (the paper's correctness requirement: no corrupted packets).
Implemented from the xxHash specification; verified against published
test vectors in the test suite.
"""

from __future__ import annotations

_PRIME1 = 2654435761
_PRIME2 = 2246822519
_PRIME3 = 3266489917
_PRIME4 = 668265263
_PRIME5 = 374761393
_MASK = 0xFFFFFFFF


def _rotl(x: int, r: int) -> int:
    x &= _MASK
    return ((x << r) | (x >> (32 - r))) & _MASK


def _round(acc: int, lane: int) -> int:
    acc = (acc + lane * _PRIME2) & _MASK
    return (_rotl(acc, 13) * _PRIME1) & _MASK


def xxh32(data: bytes | bytearray | memoryview, seed: int = 0) -> int:
    """Compute the 32-bit xxHash of ``data`` with the given ``seed``."""
    buf = bytes(data)
    n = len(buf)
    seed &= _MASK
    i = 0
    if n >= 16:
        v1 = (seed + _PRIME1 + _PRIME2) & _MASK
        v2 = (seed + _PRIME2) & _MASK
        v3 = seed
        v4 = (seed - _PRIME1) & _MASK
        limit = n - 16
        while i <= limit:
            v1 = _round(v1, int.from_bytes(buf[i : i + 4], "little"))
            v2 = _round(v2, int.from_bytes(buf[i + 4 : i + 8], "little"))
            v3 = _round(v3, int.from_bytes(buf[i + 8 : i + 12], "little"))
            v4 = _round(v4, int.from_bytes(buf[i + 12 : i + 16], "little"))
            i += 16
        h = (_rotl(v1, 1) + _rotl(v2, 7) + _rotl(v3, 12) + _rotl(v4, 18)) & _MASK
    else:
        h = (seed + _PRIME5) & _MASK
    h = (h + n) & _MASK
    while i + 4 <= n:
        h = (h + int.from_bytes(buf[i : i + 4], "little") * _PRIME3) & _MASK
        h = (_rotl(h, 17) * _PRIME4) & _MASK
        i += 4
    while i < n:
        h = (h + buf[i] * _PRIME5) & _MASK
        h = (_rotl(h, 11) * _PRIME1) & _MASK
        i += 1
    h ^= h >> 15
    h = (h * _PRIME2) & _MASK
    h ^= h >> 13
    h = (h * _PRIME3) & _MASK
    h ^= h >> 16
    return h
