"""LZ4 block-format compression and decompression.

Implements the format documented at
https://github.com/lz4/lz4/blob/dev/doc/lz4_Block_format.md:

A compressed block is a series of *sequences*.  Each sequence is::

    token | [literal-length extension bytes] | literals
          | offset (2 bytes, little-endian)  | [match-length extension bytes]

- token high nibble = literal length (15 means "read extension bytes"),
- token low nibble  = match length - 4 (15 means "read extension bytes"),
- extension bytes add 0..255 each; a value of 255 means "keep reading".

End-of-block rules enforced here (and required for interoperability):

- the last sequence contains only literals (no match part),
- a match may not start within the last 12 bytes of the input,
- the last 5 bytes of input are always emitted as literals.

Inputs shorter than 13 bytes are therefore emitted as a single literal
run.  The compressor uses a greedy single-entry hash table over 4-byte
prefixes, mirroring the reference LZ4 fast compressor.
"""

from __future__ import annotations

MIN_MATCH = 4
# A match must not start within the last MFLIMIT bytes of input.
MFLIMIT = 12
# The last LAST_LITERALS bytes are always literals.
LAST_LITERALS = 5
MAX_OFFSET = 65535

_HASH_LOG = 16
_HASH_SIZE = 1 << _HASH_LOG


def max_compressed_length(n: int) -> int:
    """Worst-case compressed size for ``n`` input bytes.

    Matches the reference ``LZ4_compressBound``: incompressible data
    expands by one token byte plus one extension byte per 255 literals.
    """
    if n < 0:
        raise ValueError(f"negative length: {n}")
    return n + n // 255 + 16


def _hash4(v: int) -> int:
    # Fibonacci hashing of a 4-byte little-endian word, as in reference LZ4.
    return ((v * 2654435761) >> (32 - _HASH_LOG)) & (_HASH_SIZE - 1)


def compress(data: bytes | bytearray | memoryview) -> bytes:
    """Compress ``data`` into an LZ4 block.

    Returns the raw block (no frame header; callers needing the original
    length must carry it out-of-band, as NEPTUNE's wire format does).
    """
    src = bytes(data)
    n = len(src)
    if n == 0:
        # A zero-length input encodes as a single empty-literal token.
        return b"\x00"
    out = bytearray()
    if n < MFLIMIT + 1:
        _emit_last_literals(out, src, 0, n)
        return bytes(out)

    table = [-1] * _HASH_SIZE
    match_limit = n - LAST_LITERALS
    anchor = 0
    pos = 0
    # Matches may not *start* beyond n - MFLIMIT.
    search_end = n - MFLIMIT

    while pos <= search_end:
        word = int.from_bytes(src[pos : pos + 4], "little")
        h = _hash4(word)
        cand = table[h]
        table[h] = pos
        if (
            cand >= 0
            and pos - cand <= MAX_OFFSET
            and src[cand : cand + 4] == src[pos : pos + 4]
        ):
            # Extend the match forward as far as allowed.
            m = pos + MIN_MATCH
            c = cand + MIN_MATCH
            while m < match_limit and src[m] == src[c]:
                m += 1
                c += 1
            match_len = m - pos
            _emit_sequence(out, src, anchor, pos, pos - cand, match_len)
            pos = m
            anchor = m
            # Seed the table inside the match region to find overlapping
            # repeats (cheap approximation of the reference's step).
            if pos <= search_end:
                w2 = int.from_bytes(src[pos - 2 : pos + 2], "little")
                table[_hash4(w2)] = pos - 2
        else:
            pos += 1

    _emit_last_literals(out, src, anchor, n)
    return bytes(out)


def _emit_length(out: bytearray, extra: int) -> None:
    """Emit 255-extension bytes for a length value beyond the nibble."""
    while extra >= 255:
        out.append(255)
        extra -= 255
    out.append(extra)


def _emit_sequence(
    out: bytearray,
    src: bytes,
    anchor: int,
    pos: int,
    offset: int,
    match_len: int,
) -> None:
    lit_len = pos - anchor
    ml = match_len - MIN_MATCH
    token = (min(lit_len, 15) << 4) | min(ml, 15)
    out.append(token)
    if lit_len >= 15:
        _emit_length(out, lit_len - 15)
    out += src[anchor:pos]
    out += offset.to_bytes(2, "little")
    if ml >= 15:
        _emit_length(out, ml - 15)


def _emit_last_literals(out: bytearray, src: bytes, anchor: int, end: int) -> None:
    lit_len = end - anchor
    out.append(min(lit_len, 15) << 4)
    if lit_len >= 15:
        _emit_length(out, lit_len - 15)
    out += src[anchor:end]


def decompress(block: bytes | bytearray | memoryview, max_size: int | None = None) -> bytes:
    """Decompress an LZ4 block produced by :func:`compress`.

    Parameters
    ----------
    block:
        The compressed block bytes.
    max_size:
        Optional safety cap on the decompressed size; exceeded output
        raises ``ValueError`` (guards against decompression bombs when
        decoding wire data).
    """
    src = bytes(block)
    n = len(src)
    out = bytearray()
    i = 0
    while i < n:
        token = src[i]
        i += 1
        # --- literals ---
        lit_len = token >> 4
        if lit_len == 15:
            while True:
                if i >= n:
                    raise ValueError("truncated literal length")
                b = src[i]
                i += 1
                lit_len += b
                if b != 255:
                    break
        if i + lit_len > n:
            raise ValueError("truncated literals")
        out += src[i : i + lit_len]
        i += lit_len
        if max_size is not None and len(out) > max_size:
            raise ValueError(f"decompressed size exceeds cap of {max_size}")
        if i == n:
            break  # last sequence: literals only
        # --- match ---
        if i + 2 > n:
            raise ValueError("truncated match offset")
        offset = src[i] | (src[i + 1] << 8)
        i += 2
        if offset == 0:
            raise ValueError("invalid zero match offset")
        match_len = (token & 0x0F) + MIN_MATCH
        if (token & 0x0F) == 15:
            while True:
                if i >= n:
                    raise ValueError("truncated match length")
                b = src[i]
                i += 1
                match_len += b
                if b != 255:
                    break
        start = len(out) - offset
        if start < 0:
            raise ValueError(f"match offset {offset} beyond output start")
        if max_size is not None and len(out) + match_len > max_size:
            raise ValueError(f"decompressed size exceeds cap of {max_size}")
        if offset >= match_len:
            out += out[start : start + match_len]
        else:
            # Overlapping match: copy byte-by-byte semantics (RLE-style).
            for k in range(match_len):
                out.append(out[start + k])
    return bytes(out)
