"""Pure-Python LZ4 block-format codec.

The paper uses the native LZ4 library for NEPTUNE's selective
compression because of its very fast compression/decompression with a
reasonable ratio.  No native LZ4 binding is available in this
environment, so this package implements the LZ4 *block* format from its
specification: greedy hash-chain matching on 4-byte sequences, token
bytes carrying literal/match lengths with 255-extension bytes, and
little-endian 2-byte match offsets.

:func:`compress` / :func:`decompress` round-trip arbitrary byte strings
and honour the format's end-of-block constraints (final sequence is
literals-only; matches must not begin within the last 12 bytes).
"""

from repro.lz4.block import compress, decompress, max_compressed_length
from repro.lz4.xxh import xxh32

__all__ = ["compress", "decompress", "max_compressed_length", "xxh32"]
