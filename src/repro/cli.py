"""Command-line interface.

::

    python -m repro.cli validate graph.json
    python -m repro.cli analyze [--graph DESC.json ...] [--cluster SPEC.json ...]
                                [--lint PATH ...] [--witness W.json ...]
    python -m repro.cli run graph.json [--duration 10] [--workers 2]
    python -m repro.cli trace [--example quickstart | DESC.json] [--sample-every N]
    python -m repro.cli metrics [--example quickstart | DESC.json] [--format prometheus|json] [--cluster]
    python -m repro.cli doctor [--example quickstart | DESC.json] [--json] [--cluster] [--from-dump SNAP.json|FLIGHT.json|DIR]
    python -m repro.cli top [--example quickstart | DESC.json] [--workers N] [--frames N] [--state STATE.json]
    python -m repro.cli experiment fig2|table1|gc|fig4|fig5|fig6|fig7|fig9|fig10|headline
    python -m repro.cli chaos [--mode wire|pipeline] [--seed N] [...]
    python -m repro.cli cluster launch DESC.json [--workers N] [--fabric tcp|unix] [--policy]
    python -m repro.cli cluster status --state STATE.json
    python -m repro.cli cluster stop --state STATE.json
    python -m repro.cli policy status|log --state STATE.json
    python -m repro.cli info

``run`` deploys a JSON graph descriptor on the local runtime (or the
distributed multi-resource runtime with ``--workers > 1``) and prints
per-operator metrics; ``analyze`` runs the static analyzers — the
stream-graph verifier over descriptors, the cluster deployment-plan
verifier over cluster specs, the AST concurrency lint over runtime
source, and sanitizer-witness cross-validation against the lint's
static lock-order edges — and exits non-zero on findings (the CI
gate);
``experiment`` regenerates one of the paper's tables/figures on the
simulator; ``chaos`` runs a seeded fault-injection scenario against
the TCP recovery protocol and exits 0 iff delivery stayed
exactly-once; ``cluster`` shards a descriptor across real worker
*processes* (the multi-process data plane — ``launch`` runs it in the
foreground, ``status``/``stop`` attach to a running cluster through
the ``--state`` file ``launch`` wrote); ``trace`` runs a graph with
causal packet tracing on and
prints the per-stage latency breakdown; ``metrics`` runs a graph and
exports the unified telemetry registry (Prometheus text exposition or
a JSON snapshot); ``top`` renders a live cluster view — per-worker
throughput, per-stage p99, open gates, SLO state — from the cluster
collector (self-launched workers, or attached to a running cluster via
``--state``).  ``metrics --cluster`` and ``doctor --cluster`` run the
graph across real worker *processes* and operate on the merged
worker-labeled cluster view; ``doctor --from-dump`` also accepts a
flight-recorder dump (or a directory of them, merged), so a SIGKILLed
cluster can be diagnosed from its black boxes.  ``cluster launch
--policy`` additionally runs the elasticity policy engine (SLO breach →
diagnose → live retune/scale/migrate); ``policy status``/``policy log``
read its persisted canonical action log through the state file.
"""

from __future__ import annotations

import argparse
import json
import sys
import time


def _load_graph(path: str):
    from repro.core import StreamProcessingGraph

    with open(path, "r", encoding="utf-8") as fh:
        graph = StreamProcessingGraph.from_descriptor(json.load(fh))
    graph.validate()
    return graph


def cmd_validate(args: argparse.Namespace) -> int:
    """`validate` subcommand: check a descriptor file."""
    graph = _load_graph(args.descriptor)
    print(f"graph {graph.name!r}: OK")
    print(f"  operators: {len(graph.operators)} "
          f"({graph.total_instances()} instances)")
    print(f"  links:     {len(graph.links)}")
    print(f"  stages:    {graph.stages()}")
    return 0


def cmd_analyze(args: argparse.Namespace) -> int:
    """`analyze` subcommand: graph verifier / plan verifier / lint.

    Exit code 0 iff no report reaches the ``--fail-on`` severity
    (default: error; warnings still print).  ``--cluster SPEC.json``
    runs the NEPG130–139 deployment-plan verifier (the same pass
    ``ClusterCoordinator.launch`` gates on); ``--witness W.json``
    cross-validates a sanitizer witness file against the static
    NEPL203 lock-order edges of the ``--lint`` paths.
    """
    from repro.analysis import (
        Severity,
        lint_paths,
        verify_cluster_file,
        verify_descriptor_file,
    )

    if not args.graph and not args.lint and not args.cluster:
        raise SystemExit(
            "repro.cli analyze: error: nothing to do (give --graph "
            "DESC.json, --cluster SPEC.json, and/or --lint PATH)"
        )
    if args.witness and not args.lint:
        raise SystemExit(
            "repro.cli analyze: error: --witness needs --lint PATH "
            "(the source whose static lock-order edges to cross-validate)"
        )
    fail_on = Severity.WARNING if args.fail_on == "warning" else Severity.ERROR
    reports = [verify_descriptor_file(path) for path in args.graph]
    reports += [verify_cluster_file(path) for path in args.cluster]
    if args.lint:
        reports.append(lint_paths(args.lint))
    if args.witness:
        from repro.analysis.lint import collect_models
        from repro.analysis.lintrules import static_order_edges
        from repro.analysis.sanitizer import Witness, witness_report

        edges = static_order_edges(collect_models(args.lint))
        for path in args.witness:
            try:
                witness = Witness.load(path)
            except (OSError, ValueError, KeyError, TypeError) as exc:
                from repro.analysis import DiagnosticReport

                bad = DiagnosticReport(subject=path)
                bad.add(
                    "NEPL200",
                    Severity.ERROR,
                    f"cannot load witness file: {exc}",
                    where=path,
                )
                reports.append(bad)
                continue
            reports.append(witness_report(witness, edges, subject=path))
    if args.json:
        print(json.dumps([json.loads(r.to_json()) for r in reports], indent=2))
    else:
        for report in reports:
            print(report.render())
    return max((r.exit_code(fail_on) for r in reports), default=0)


def cmd_run(args: argparse.Namespace) -> int:
    """`run` subcommand: deploy a descriptor and print metrics."""
    graph = _load_graph(args.descriptor)
    if args.workers > 1:
        return _run_distributed(graph, args)
    from repro.core import NeptuneRuntime

    with NeptuneRuntime() as runtime:
        handle = runtime.submit(graph)
        if args.duration > 0:
            time.sleep(args.duration)
            ok = handle.stop(timeout=args.drain_timeout)
        else:
            ok = handle.await_completion(timeout=args.drain_timeout)
        failures = handle.failures
        metrics = handle.metrics()
    _print_metrics(graph.name, ok, metrics, failures)
    return 0 if ok and not failures else 1


def _run_distributed(graph, args: argparse.Namespace) -> int:
    from repro.core.distributed import DistributedJob

    job = DistributedJob(graph, n_workers=args.workers)
    for w in job.workers:
        print(f"resource {w.worker_id} @ {w.address[0]}:{w.address[1]}: "
              f"{job.plan.instances_on(w.worker_id)}")
    job.start()
    if args.duration > 0:
        time.sleep(args.duration)
        ok = job.stop(timeout=args.drain_timeout)
    else:
        ok = job.await_completion(timeout=args.drain_timeout)
    failures = job.failures()
    _print_metrics(graph.name, ok, job.metrics(), failures)
    return 0 if ok and not failures else 1


def _print_metrics(name: str, ok: bool, metrics: dict, failures: dict) -> None:
    print(f"job {name!r} {'drained' if ok else 'DID NOT QUIESCE'}")
    for op, m in sorted(metrics.items()):
        print(
            f"  {op:20s} in={m['packets_in']:>10} out={m['packets_out']:>10} "
            f"bytes_in={m['bytes_in']:>12} batches={m['batches_in']:>7}"
        )
    for key, exc in failures.items():
        print(f"  FAILED {key}: {exc!r}", file=sys.stderr)


def _observed_graph(args: argparse.Namespace):
    """Resolve ``--example NAME`` / positional descriptor to a graph."""
    if args.descriptor:
        return _load_graph(args.descriptor)
    import importlib.util
    from pathlib import Path

    name = args.example
    path = Path(__file__).resolve().parents[2] / "examples" / f"{name}.py"
    if not path.exists():
        raise SystemExit(f"repro.cli: error: no example {name!r} at {path}")
    spec = importlib.util.spec_from_file_location(f"repro_example_{name}", path)
    assert spec is not None and spec.loader is not None
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    build = getattr(module, "build_graph", None)
    if build is None:
        raise SystemExit(
            f"repro.cli: error: example {name!r} exposes no build_graph()"
        )
    return build()


def cmd_trace(args: argparse.Namespace) -> int:
    """`trace` subcommand: run a graph with tracing, print the breakdown.

    Every ``--sample-every``-th source packet is traced end to end; the
    report shows per-stage latency (serialize / enqueue / flush / wire /
    deserialize / execute) and how much of each trace's end-to-end time
    the stages account for (coverage).
    """
    from repro.core import NeptuneRuntime
    from repro.observe import RuntimeObserver
    from repro.observe.report import format_breakdown, format_timeline

    graph = _observed_graph(args)
    obs = RuntimeObserver(sample_every=args.sample_every)
    with NeptuneRuntime(observer=obs) as runtime:
        handle = runtime.submit(graph)
        ok = handle.await_completion(timeout=args.drain_timeout)
    print(
        f"job {graph.name!r} {'drained' if ok else 'DID NOT QUIESCE'} "
        f"(tracing 1/{args.sample_every} packets)"
    )
    print(format_breakdown(obs.collector))
    if args.timeline:
        print()
        print(format_timeline(obs.timeline, limit=args.timeline))
    return 0 if ok else 1


def cmd_metrics(args: argparse.Namespace) -> int:
    """`metrics` subcommand: run a graph, export the telemetry registry.

    With ``--workers > 1`` (default 2) the graph is deployed across
    resources over real TCP, so the export covers transport and
    listener instruments alongside operator / flow-control / buffer /
    compression ones.
    """
    from repro.observe import RuntimeObserver
    from repro.observe import bridge, export

    graph = _observed_graph(args)
    if args.cluster:
        return _metrics_cluster(args, graph)
    obs = RuntimeObserver(sample_every=args.sample_every)
    if args.workers > 1:
        from repro.core.distributed import DistributedJob

        job = DistributedJob(graph, n_workers=args.workers, observer=obs)
        job.start()
        ok = job.await_completion(timeout=args.drain_timeout)
        bridge.scrape_distributed(obs.registry, job)
        job.stop()
    else:
        from repro.core import NeptuneRuntime

        with NeptuneRuntime(observer=obs) as runtime:
            handle = runtime.submit(graph)
            ok = handle.await_completion(timeout=args.drain_timeout)
            bridge.scrape_job(obs.registry, handle)
    bridge.scrape_observer(obs)
    if args.format == "prometheus":
        sys.stdout.write(export.to_prometheus(obs.registry))
    else:
        print(export.to_json(obs))
    return 0 if ok else 1


def _metrics_cluster(args: argparse.Namespace, graph) -> int:
    """``metrics --cluster``: real worker processes, merged registry."""
    from repro.cluster import ClusterCoordinator
    from repro.observe import bridge, export

    coordinator = ClusterCoordinator(
        graph,
        n_workers=max(2, args.workers),
        observe={"sample_every": args.sample_every},
    )
    try:
        coordinator.launch()
        ok = coordinator.await_completion(timeout=args.drain_timeout)
    finally:
        coordinator.terminate()
    collector = coordinator.collector
    assert collector is not None
    bridge.scrape_observer(collector.observer)
    if args.format == "prometheus":
        sys.stdout.write(export.to_prometheus(collector.observer.registry))
    else:
        print(export.to_json(collector.observer))
    return 0 if ok else 1


def _hist_quantile(hists, q: float):
    """Quantile upper bound across merged cumulative histograms."""
    merged: dict = {}
    for hist in hists:
        for bound, cum in hist.cumulative_buckets():
            merged[bound] = merged.get(bound, 0) + cum
    total = merged.get(float("inf"), 0)
    if total <= 0:
        return None
    target = q * total
    for bound in sorted(merged):
        if merged[bound] >= target:
            return bound
    return float("inf")


def _render_top(collector, entries, title: str, frame: int) -> str:
    """One ``repro top`` frame over the merged cluster registry."""
    samples = collector.observer.registry.collect()
    per_in: dict = {}
    per_out: dict = {}
    gates = set()
    stage_hists: dict = {}
    prof_cpu: dict = {}
    prof_off: dict = {}
    for s in samples:
        labels = dict(s.labels)
        worker = labels.get("worker")
        if s.name == "neptune_operator_packets_in_total" and worker is not None:
            per_in[worker] = per_in.get(worker, 0.0) + s.value
        elif s.name == "neptune_operator_packets_out_total" and worker is not None:
            per_out[worker] = per_out.get(worker, 0.0) + s.value
        elif s.name == "neptune_flowcontrol_gated" and s.value > 0:
            gates.add(labels.get("operator", "?"))
        elif s.name == "neptune_trace_stage_seconds" and s.histogram is not None:
            stage_hists.setdefault(labels.get("stage", "?"), []).append(s.histogram)
        elif (
            s.name == "neptune_profile_cpu_seconds_total"
            and labels.get("kind") == "operator"
        ):
            op = labels.get("operator", "?")
            prof_cpu[op] = prof_cpu.get(op, 0.0) + s.value
        elif (
            s.name == "neptune_profile_off_cpu_seconds_total"
            and labels.get("kind") == "operator"
        ):
            op = labels.get("operator", "?")
            prof_off[op] = prof_off.get(op, 0.0) + s.value
    stats = collector.status()
    lines = [
        f"=== repro top — {title} frame {frame} "
        f"(polls={stats['polls']} absorbed={stats['absorbed']} "
        f"stale={stats['stale']} fetch_errors={stats['fetch_errors']}) ==="
    ]
    for entry in entries:
        wid = str(entry["worker_id"])
        age = entry.get("last_collect_age")
        age_s = f"{age:.2f}s" if isinstance(age, float) else "never"
        bits = [
            f"w{wid}",
            "up" if entry.get("alive", True) else "DOWN",
            f"restarts={entry.get('restarts', 0)}",
            f"collect_age={age_s}",
            f"in={per_in.get(wid, 0):.0f}",
            f"out={per_out.get(wid, 0):.0f}",
        ]
        lines.append("  " + " ".join(bits))
    for stage in sorted(stage_hists):
        hists = stage_hists[stage]
        p99 = _hist_quantile(hists, 0.99)
        count = sum(h.count for h in hists)
        p99_s = f"<= {p99 * 1e3:.3g}ms" if p99 is not None else "n/a"
        lines.append(f"  stage {stage:12s} p99 {p99_s:>14s}  n={count}")
    total_cpu = sum(prof_cpu.values())
    for op in sorted(prof_cpu, key=lambda o: -prof_cpu[o]):
        share = 100.0 * prof_cpu[op] / total_cpu if total_cpu > 0 else 0.0
        lines.append(
            f"  cpu {op:14s} {share:5.1f}%  on={prof_cpu[op]:.2f}s "
            f"off={prof_off.get(op, 0.0):.2f}s"
        )
    lines.append(
        "  gates open: " + (", ".join(sorted(gates)) if gates else "none")
    )
    monitors = []
    if collector.health is not None:
        monitors = collector.health.status().get("monitors", [])
    for mon in monitors:
        value = mon.get("value")
        value_s = f"{value:.4g}" if isinstance(value, (int, float)) else "n/a"
        lines.append(
            f"  slo {mon.get('slo', '?'):28s} {mon.get('status', '?'):7s} "
            f"value={value_s} threshold={mon.get('threshold')}"
        )
    stitched = collector.stitched()
    complete = sum(1 for t in stitched if t.complete)
    cross = sum(1 for t in stitched if len(t.workers) > 1)
    lines.append(
        f"  traces: {len(stitched)} stitched, {complete} complete, "
        f"{cross} cross-worker"
    )
    return "\n".join(lines)


def _top_attached(args: argparse.Namespace) -> int:
    """``top --state``: attach to a running cluster, poll it ourselves."""
    from repro.cluster import attach_proxies
    from repro.core.control import ControlError
    from repro.observe.collector import ClusterCollector

    state = _load_cluster_state(args.state)
    try:
        proxies = attach_proxies(state, connect_timeout=args.connect_timeout)
    except (ControlError, OSError) as exc:
        raise SystemExit(f"repro.cli top: error: cannot attach: {exc}")
    collector = ClusterCollector(interval=max(0.05, min(args.refresh, 0.25)))
    for wid, proxy in enumerate(proxies):
        collector.attach(wid, lambda p=proxy: p.collect())
    frame = 0
    try:
        while args.frames <= 0 or frame < args.frames:
            collector.poll_once()
            frame += 1
            ages = collector.ages()
            entries = [
                {"worker_id": wid, "last_collect_age": ages.get(wid)}
                for wid in sorted(ages)
            ]
            print(_render_top(collector, entries, "attached", frame))
            if args.frames <= 0 or frame < args.frames:
                time.sleep(args.refresh)
    except KeyboardInterrupt:
        pass
    finally:
        for proxy in proxies:
            proxy.close()
    return 0


def cmd_top(args: argparse.Namespace) -> int:
    """`top` subcommand: live cluster status from the collector plane.

    Default mode launches the graph across ``--workers`` real worker
    processes with observability on and renders one frame per
    ``--refresh`` seconds: per-worker throughput and collection age,
    cluster-wide p99 per trace stage, open backpressure gates, SLO
    monitor state, and stitched-trace counts.  ``--frames N`` bounds
    the run (CI smoke); ``--state`` attaches to an already-running
    cluster instead of launching one.
    """
    if args.state:
        return _top_attached(args)
    from repro.cluster import ClusterCoordinator
    from repro.observe.health import default_slos

    graph = _observed_graph(args)
    slos = default_slos(
        graph.operators,
        latency_budget=args.latency_budget,
        e2e_budget=args.e2e_budget,
    )
    coordinator = ClusterCoordinator(
        graph,
        n_workers=args.workers,
        observe={"sample_every": max(1, args.sample_every)},
        slos=slos,
        collect_interval=max(0.05, min(args.refresh, 0.25)),
    )
    frame = 0
    quiet_frames = 0
    ok = True
    try:
        coordinator.launch(connect_timeout=args.connect_timeout)
        try:
            while args.frames <= 0 or frame < args.frames:
                time.sleep(args.refresh)
                frame += 1
                entries = coordinator.status()
                print(_render_top(coordinator.collector, entries, graph.name, frame))
                if not any(e.get("alive") for e in entries):
                    break
                # Two consecutive all-quiet frames = the job is done;
                # stop rendering and drain instead of spinning forever.
                if all(e.get("quiet") for e in entries):
                    quiet_frames += 1
                    if quiet_frames >= 2:
                        break
                else:
                    quiet_frames = 0
        except KeyboardInterrupt:
            print("interrupted — draining", file=sys.stderr)
        ok = coordinator.await_completion(timeout=args.drain_timeout)
    finally:
        coordinator.terminate()
    return 0 if ok else 1


def _load_doctor_dump(path: str) -> dict:
    """Resolve ``--from-dump``: an observer snapshot, one flight dump,
    or a directory of flight dumps (merged into one snapshot)."""
    import os

    from repro.observe.flightrec import (
        FLIGHT_SCHEMA,
        load_flight_dump,
        merge_flight_dumps,
    )

    if os.path.isdir(path):
        dumps = []
        for name in sorted(os.listdir(path)):
            if not name.endswith(".json"):
                continue
            try:
                dump = load_flight_dump(os.path.join(path, name))
            except (OSError, ValueError):
                continue
            if dump.get("schema") == FLIGHT_SCHEMA:
                dumps.append(dump)
        if not dumps:
            raise SystemExit(
                f"repro.cli doctor: error: no flight dumps under {path!r}"
            )
        return merge_flight_dumps(dumps)
    with open(path, "r", encoding="utf-8") as fh:
        snap = json.load(fh)
    if isinstance(snap, dict) and snap.get("schema") == FLIGHT_SCHEMA:
        return merge_flight_dumps([snap])
    return snap


def _doctor_cluster(args: argparse.Namespace, graph, slos) -> int:
    """``doctor --cluster``: diagnose the merged multi-process view."""
    from repro.cluster import ClusterCoordinator
    from repro.observe import bridge, export
    from repro.observe import doctor as doctor_mod

    coordinator = ClusterCoordinator(
        graph,
        n_workers=max(2, args.workers),
        observe={"sample_every": max(1, args.sample_every)},
        slos=slos,
        collect_interval=max(0.1, args.scan_interval),
    )
    try:
        coordinator.launch()
        ok = coordinator.await_completion(timeout=args.drain_timeout)
    finally:
        coordinator.terminate()
    collector = coordinator.collector
    assert collector is not None
    obs = collector.observer
    if collector.health is not None:
        collector.health.scan_once()  # final verdict over the merged view
    bridge.scrape_observer(obs)
    snap = export.snapshot(obs)
    if args.dump:
        with open(args.dump, "w", encoding="utf-8") as fh:
            json.dump(snap, fh, indent=2, default=str, sort_keys=True)
        print(f"wrote {args.dump}", file=sys.stderr)
    report = doctor_mod.diagnose(snap, max_causes=args.max_causes)
    _print_doctor(report, args.json)
    return 0 if ok else 1


def cmd_doctor(args: argparse.Namespace) -> int:
    """`doctor` subcommand: correlate signals into a root-cause report.

    Live mode runs a graph with the health engine attached (online SLO
    monitors + adaptive trace sampling) and diagnoses the resulting
    snapshot; ``--from-dump`` diagnoses a snapshot written earlier by
    ``--dump`` (or any ``repro.observe.export.snapshot`` JSON), so a
    production incident can be analyzed post-hoc.
    """
    from repro.observe import doctor as doctor_mod

    if args.from_dump:
        snap = _load_doctor_dump(args.from_dump)
        report = doctor_mod.diagnose(snap, max_causes=args.max_causes)
        _print_doctor(report, args.json)
        return 0

    from repro.observe import RuntimeObserver, bridge, export
    from repro.observe.health import (
        AdaptiveSampler,
        HealthEngine,
        default_slos,
        graph_regions,
    )

    graph = _observed_graph(args)
    obs = RuntimeObserver(sample_every=max(1, args.sample_every))
    slos = default_slos(
        graph.operators,
        latency_budget=args.latency_budget,
        e2e_budget=args.e2e_budget,
    )
    if args.cluster:
        return _doctor_cluster(args, graph, slos)
    sampler = AdaptiveSampler(obs.tracer)
    if args.workers > 1:
        from repro.core.distributed import DistributedJob

        job = DistributedJob(graph, n_workers=args.workers, observer=obs)
        engine = HealthEngine(
            obs,
            slos,
            scrape=lambda: bridge.scrape_distributed(obs.registry, job),
            sampler=sampler,
            regions=graph_regions(graph),
            interval=args.scan_interval,
        )
        job.start()
        engine.start()
        ok = job.await_completion(timeout=args.drain_timeout)
        engine.stop()
        bridge.scrape_distributed(obs.registry, job)
        job.stop()
    else:
        from repro.core import NeptuneRuntime

        with NeptuneRuntime(observer=obs) as runtime:
            handle = runtime.submit(graph)
            engine = HealthEngine(
                obs,
                slos,
                scrape=lambda: bridge.scrape_job(obs.registry, handle),
                sampler=sampler,
                regions=graph_regions(graph),
                interval=args.scan_interval,
            )
            engine.start()
            ok = handle.await_completion(timeout=args.drain_timeout)
            engine.stop()
            bridge.scrape_job(obs.registry, handle)
    engine.scan_once()  # final verdict over the drained job's telemetry
    bridge.scrape_observer(obs)
    snap = export.snapshot(obs)
    if args.dump:
        with open(args.dump, "w", encoding="utf-8") as fh:
            json.dump(snap, fh, indent=2, default=str, sort_keys=True)
        print(f"wrote {args.dump}", file=sys.stderr)
    report = doctor_mod.diagnose(snap, max_causes=args.max_causes)
    _print_doctor(report, args.json)
    return 0 if ok else 1


def _print_doctor(report: dict, as_json: bool) -> None:
    from repro.observe.doctor import render_report

    if as_json:
        print(json.dumps(report, indent=2, default=str, sort_keys=True))
    else:
        print(render_report(report))


def _load_profile_dump(path: str) -> dict:
    """Resolve ``profile --from-dump``: a profile snapshot, one flight
    dump, or a directory of flight dumps (profiles merged)."""
    import os

    from repro.observe.flightrec import (
        FLIGHT_SCHEMA,
        load_flight_dump,
        merge_flight_dumps,
    )
    from repro.observe.profiler import PROFILE_SCHEMA, merge_profile_snapshots

    if os.path.isdir(path):
        dumps = []
        for name in sorted(os.listdir(path)):
            if not name.endswith(".json"):
                continue
            try:
                dump = load_flight_dump(os.path.join(path, name))
            except (OSError, ValueError):
                continue
            if dump.get("schema") == FLIGHT_SCHEMA:
                dumps.append(dump)
        profiles = merge_flight_dumps(dumps).get("profiles") or {}
        if not profiles:
            raise SystemExit(
                f"repro.cli profile: error: no profile sections under {path!r}"
            )
        return merge_profile_snapshots(profiles)
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    if not isinstance(data, dict):
        raise SystemExit(f"repro.cli profile: error: {path!r} is not a JSON object")
    if data.get("schema") == PROFILE_SCHEMA:
        return data
    if data.get("schema") == FLIGHT_SCHEMA:
        profiles = merge_flight_dumps([data]).get("profiles") or {}
        if not profiles:
            raise SystemExit(
                f"repro.cli profile: error: flight dump {path!r} carries no "
                "profile section"
            )
        return merge_profile_snapshots(profiles)
    raise SystemExit(
        f"repro.cli profile: error: {path!r} is neither a profile snapshot "
        "nor a flight dump"
    )


def _print_profile_summary(snap: dict, top: int) -> None:
    operators = snap.get("operators") or {}
    op_total = sum(
        float(i.get("cpu_seconds", 0.0))
        for i in operators.values()
        if i.get("kind") == "operator"
    )
    print(
        f"profile: state={snap.get('state')} cpu_mode={snap.get('cpu_mode')} "
        f"sweeps={snap.get('samples')} operators={len(operators)}"
    )
    ranked = sorted(
        operators.items(),
        key=lambda kv: (-float(kv[1].get("cpu_seconds", 0.0)), kv[0]),
    )
    for label, info in ranked[: max(1, top)]:
        cpu = float(info.get("cpu_seconds", 0.0))
        off = float(info.get("off_cpu_seconds", 0.0))
        kind = str(info.get("kind", "?"))
        share = (
            f"{100.0 * cpu / op_total:5.1f}%"
            if kind == "operator" and op_total > 0
            else "     -"
        )
        frames = info.get("top_frames") or {}
        hottest = max(frames.items(), key=lambda kv: kv[1])[0] if frames else "-"
        print(
            f"  {label:22s} {kind:8s} cpu={share} on={cpu:8.2f}s "
            f"off={off:8.2f}s top={hottest}"
        )


def _write_profile_snap(snap: dict, path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(snap, fh, indent=2, sort_keys=True)
    print(f"wrote {path}", file=sys.stderr)


def _write_profile_dump(snap: dict, path: str, fmt: str, name: str) -> None:
    from repro.observe.profiler import collapsed, speedscope

    operators = snap.get("operators") or {}
    if fmt == "collapsed":
        text = collapsed(operators)
    else:
        text = json.dumps(speedscope(operators, name=name), indent=2, sort_keys=True)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(text)
    print(f"wrote {path}", file=sys.stderr)


def _profile_cluster(args: argparse.Namespace, graph) -> int:
    """``profile --cluster``: sample every worker, merge over control."""
    from repro.cluster import ClusterCoordinator
    from repro.observe.profiler import merge_profile_snapshots

    coordinator = ClusterCoordinator(
        graph,
        n_workers=max(2, args.workers),
        observe={"sample_every": 1, "profile": {"hz": args.hz}},
    )
    profiles: dict = {}

    def grab() -> None:
        # Runs after the cluster quiesces but before the workers are
        # stopped (stopping severs the control sockets).
        for handle in coordinator.handles:
            proxy = getattr(handle, "proxy", None)
            if proxy is None:
                continue
            try:
                snap = proxy.profile()
            except Exception:
                continue
            if snap:
                profiles[str(handle.worker_id)] = snap

    try:
        job = coordinator.launch()
        job.pre_stop_hooks.append(grab)
        ok = coordinator.await_completion(timeout=args.drain_timeout)
    finally:
        coordinator.terminate()
    if not profiles:
        print("repro.cli profile: no worker returned a profile", file=sys.stderr)
        return 1
    snap = merge_profile_snapshots(profiles)
    if args.snap:
        _write_profile_snap(snap, args.snap)
    if args.dump:
        _write_profile_dump(snap, args.dump, args.format, graph.name)
    _print_profile_summary(snap, args.top)
    return 0 if ok else 1


def cmd_profile(args: argparse.Namespace) -> int:
    """`profile` subcommand: run a graph under the sampling profiler.

    Prints the per-operator CPU attribution (on/off-CPU split where
    ``/proc`` allows) and optionally writes collapsed-stack or
    speedscope-JSON dumps for flamegraph tooling.  ``--cluster``
    profiles every worker process and merges the snapshots over the
    control plane; ``--from-dump`` renders a profile recovered from
    flight-recorder dumps post-mortem.
    """
    if args.from_dump:
        snap = _load_profile_dump(args.from_dump)
        if args.dump:
            _write_profile_dump(snap, args.dump, args.format, "from-dump")
        _print_profile_summary(snap, args.top)
        return 0

    from repro.core import NeptuneRuntime
    from repro.observe import RuntimeObserver
    from repro.observe.profiler import SamplingProfiler

    graph = _observed_graph(args)
    if args.cluster:
        return _profile_cluster(args, graph)
    obs = RuntimeObserver()
    profiler = SamplingProfiler(hz=args.hz)
    obs.profiler = profiler
    with NeptuneRuntime(observer=obs) as runtime:
        profiler.start()
        handle = runtime.submit(graph)
        ok = handle.await_completion(timeout=args.drain_timeout)
        profiler.stop()
    snap = profiler.snapshot()
    if args.snap:
        _write_profile_snap(snap, args.snap)
    if args.dump:
        _write_profile_dump(snap, args.dump, args.format, graph.name)
    _print_profile_summary(snap, args.top)
    return 0 if ok else 1


def cmd_experiment(args: argparse.Namespace) -> int:
    """`experiment` subcommand: regenerate a paper artefact."""
    from repro.sim import experiments as exp
    from repro.stats import summarize

    name = args.name
    quick = not args.full
    duration = 1.0 if quick else 2.0
    max_events = 60_000 if quick else 150_000
    if name == "fig2":
        rows = exp.fig2_buffer_sweep(
            message_sizes=(50, 1024, 10240) if quick else exp.FIG2_MESSAGE_SIZES,
            duration=duration,
            max_events=max_events,
        )
        print(exp.format_rows(rows, "FIG2: relay sweep"))
    elif name == "table1":
        print(exp.format_rows(
            exp.table1_context_switches(repeats=3, duration=duration),
            "TABLE I: context switches per 5s",
        ))
    elif name == "gc":
        print(exp.format_rows(exp.gc_object_reuse(duration=duration), "GC study"))
    elif name == "fig4":
        print(exp.format_rows(exp.fig4_backpressure(), "FIG4: backpressure"))
    elif name == "fig5":
        print(exp.format_rows(exp.fig5_concurrent_jobs(), "FIG5: concurrent jobs"))
    elif name == "fig6":
        print(exp.format_rows(exp.fig6_cluster_size(), "FIG6: cluster size"))
    elif name == "fig7":
        rows = exp.fig7_neptune_vs_storm(
            message_sizes=(50, 1024, 10240) if quick else exp.FIG7_MESSAGE_SIZES,
            duration=duration,
            max_events=max_events,
        )
        print(exp.format_rows(rows, "FIG7: NEPTUNE vs Storm"))
    elif name == "fig9":
        print(exp.format_rows(exp.fig9_manufacturing(), "FIG9: manufacturing"))
    elif name == "fig10":
        out = exp.fig10_resource_usage()
        print("FIG10: per-node resource consumption")
        print(f"  NEPTUNE CPU: {summarize(out['neptune_cpu_pct'])}")
        print(f"  Storm   CPU: {summarize(out['storm_cpu_pct'])}")
        print(f"  CPU one-tailed p = {out['cpu_one_tailed_p']:.2e}; "
              f"memory two-tailed p = {out['mem_two_tailed_p']:.4f}")
    elif name == "headline":
        head = exp.headline_numbers()
        for key, value in head.items():
            print(f"  {key}: {value:,.3f}")
    else:  # pragma: no cover — argparse choices guard this
        raise SystemExit(f"unknown experiment {name!r}")
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    """`chaos` subcommand: seeded fault-injection scenario.

    Exit code 0 iff every packet was delivered exactly once (content
    verified) despite the injected faults.  The printed trace digest is
    the reproducibility receipt: the same seed and options must yield
    the same digest on any machine.
    """
    from repro.chaos.plan import FaultRates
    from repro.chaos.scenario import run_pipeline_scenario, run_wire_scenario

    if args.mode == "wire":
        try:
            rates = FaultRates(
                drop=args.drop,
                delay=args.delay,
                duplicate=args.duplicate,
                truncate=args.truncate,
                bitflip=args.bitflip,
                kill_connection=args.kill,
            )
        except ValueError as exc:
            raise SystemExit(f"repro.cli chaos: error: {exc}")
        result = run_wire_scenario(
            seed=args.seed,
            frames=args.frames,
            payload_size=args.payload_size,
            rates=rates,
        )
    else:
        try:
            kill_frames = tuple(int(x) for x in args.kill_at.split(",") if x)
        except ValueError:
            raise SystemExit(
                f"repro.cli chaos: error: --kill-at expects comma-separated "
                f"frame indexes, got {args.kill_at!r}"
            )
        result = run_pipeline_scenario(
            seed=args.seed, total=args.total, kill_frames=kill_frames
        )
    print(result.summary())
    if args.trace:
        for line in result.trace_lines:
            print(f"  fault: {line}")
    return 0 if result.exactly_once else 1


def cmd_bench(args: argparse.Namespace) -> int:
    """`bench` subcommand: run hot-path scenarios, write/check BENCH json."""
    from repro.bench import (
        PROFILES,
        build_report,
        calibration_score,
        check_regression,
        run_scenarios,
        write_report,
    )
    from repro.bench.report import load_report

    profile = PROFILES[args.profile]
    baseline = None
    if args.check:
        # Load the baseline BEFORE writing: --check and --out usually
        # name the same file.
        baseline = load_report(args.check)
    print(f"repro bench: profile={profile.name}")
    calibration = calibration_score()
    results = run_scenarios(profile)
    report = build_report(results, profile.name, calibration)
    for result in results:
        print(f"  [{result.name}]")
        for key, value in sorted(result.metrics.items()):
            print(f"    {key:32s} {value:,.4g}")
    if args.out:
        write_report(report, args.out)
        print(f"wrote {args.out}")
    if baseline is not None:
        failures = check_regression(report, baseline, tolerance=args.tolerance)
        if failures:
            print(f"REGRESSION vs {args.check} (tolerance {args.tolerance:.0%}):")
            for line in failures:
                print(f"  {line}")
            return 1
        print(f"no regression vs {args.check} (tolerance {args.tolerance:.0%})")
    return 0


def cmd_cluster_launch(args: argparse.Namespace) -> int:
    """`cluster launch`: shard a descriptor across worker processes.

    Runs in the foreground; ``--state`` additionally writes a JSON
    handle that ``cluster status`` / ``cluster stop`` (from another
    terminal) use to attach to the live workers.
    """
    from repro.cluster import ClusterCoordinator
    from repro.core.control import ControlError

    graph = _load_graph(args.descriptor)
    extra: dict = {}
    if getattr(args, "policy", False):
        from repro.observe.health import default_slos

        extra["observe"] = {}
        extra["slos"] = default_slos(
            sorted(graph.operators),
            latency_budget=args.slo_latency,
            e2e_budget=None,
        )
        extra["policy"] = True
    coordinator = ClusterCoordinator(
        graph,
        n_workers=args.workers,
        fabric=args.fabric,
        log_dir=args.log_dir,
        **extra,
    )
    try:
        coordinator.launch(connect_timeout=args.connect_timeout)
        if args.state:
            coordinator.write_state(args.state)
            print(f"wrote cluster state to {args.state}")
        for entry in coordinator.status():
            host, port = entry["endpoint"]
            print(
                f"worker {entry['worker_id']} pid={entry['pid']} "
                f"data={host}:{port} control=127.0.0.1:{entry['control_port']}"
            )
        if args.duration > 0:
            time.sleep(args.duration)
            ok = coordinator.stop(timeout=args.drain_timeout)
        else:
            ok = coordinator.await_completion(timeout=args.drain_timeout)
        try:
            failures = (
                coordinator.job.failures() if coordinator.job is not None else {}
            )
            metrics = coordinator.metrics()
        except ControlError:
            # The workers are gone and no final snapshot exists — e.g.
            # an external `cluster stop` already drained and stopped
            # them (that terminal printed the final metrics).
            print(f"job {graph.name!r}: workers already stopped")
            return 0 if ok else 1
        _print_metrics(graph.name, ok, metrics, failures)
        if coordinator.policy is not None:
            status = coordinator.policy_status()
            print(
                f"policy: {status['actions']} action(s), "
                f"{status['no_cause']} unattributed breach(es), "
                f"log={status['log']}"
            )
        return 0 if ok and not failures else 1
    finally:
        coordinator.terminate()


def _load_cluster_state(path: str) -> dict:
    try:
        with open(path, "r", encoding="utf-8") as fh:
            return json.load(fh)
    except FileNotFoundError:
        raise SystemExit(f"repro.cli cluster: error: no state file at {path!r}")


def cmd_cluster_status(args: argparse.Namespace) -> int:
    """`cluster status`: attach read-only to a running cluster."""
    import os

    from repro.cluster import attach_proxies
    from repro.core.control import ControlError

    state = _load_cluster_state(args.state)
    alive = 0
    for entry in state.get("workers", []):
        pid = entry.get("pid")
        try:
            proxies = attach_proxies(
                {"workers": [entry]}, connect_timeout=args.connect_timeout
            )
        except (ControlError, OSError):
            print(f"worker {entry['worker_id']} pid={pid}: UNREACHABLE")
            continue
        proxy = proxies[0]
        try:
            quiet = proxy.is_quiet()
            n_fail = len(proxy.failures)
            sink_in = sum(
                m.get("packets_in", 0) for m in proxy.metrics().values()
            )
            try:
                collect_info = proxy.collect_info()
            except (ControlError, OSError):
                collect_info = None
        finally:
            proxy.close()
        alive += 1
        if collect_info:
            age = collect_info.get("last_collect_age")
            age_s = f"{age:.2f}s" if isinstance(age, float) else "never"
            collect_s = f" collect_age={age_s} seq={collect_info.get('seq')}"
            prof = collect_info.get("profiler")
            if prof:
                wage = prof.get("window_age_seconds")
                wage_s = (
                    f"{wage:.2f}s"
                    if isinstance(wage, (int, float)) and wage >= 0
                    else "never"
                )
                collect_s += (
                    f" sampler={prof.get('state')}({prof.get('cpu_mode')})"
                    f" profile_window_age={wage_s}"
                )
        print(
            f"worker {entry['worker_id']} pid={pid}: up "
            f"quiet={quiet} failures={n_fail} packets_in={sink_in}{collect_s}"
        )
        if os.name == "posix" and isinstance(pid, int):
            try:
                os.kill(pid, 0)
            except OSError:
                print(f"  note: control port answers but pid {pid} is gone")
    total = len(state.get("workers", []))
    print(f"{alive}/{total} workers reachable")
    return 0 if alive == total else 1


def cmd_cluster_stop(args: argparse.Namespace) -> int:
    """`cluster stop`: drain and stop a running cluster via its state file."""
    from repro.cluster import attach_proxies
    from repro.core.control import ControlError, RemoteDistributedJob

    state = _load_cluster_state(args.state)
    try:
        proxies = attach_proxies(state, connect_timeout=args.connect_timeout)
    except (ControlError, OSError) as exc:
        raise SystemExit(f"repro.cli cluster: error: cannot attach: {exc}")
    job = RemoteDistributedJob(proxies)
    ok = job.stop(timeout=args.drain_timeout)
    _print_metrics("cluster", ok, job.metrics(), {})
    return 0 if ok else 1


def cmd_policy(args: argparse.Namespace) -> int:
    """`policy status|log`: inspect a cluster's elasticity action log.

    The policy engine lives in the ``cluster launch --policy`` process;
    its decisions are persisted as canonical JSON lines (one per
    action, byte-identical across identical runs), so attaching is a
    file read — no control traffic.
    """
    import os

    state = _load_cluster_state(args.state)
    policy = state.get("policy") or {}
    if not policy.get("enabled"):
        print("policy: not enabled for this cluster (launch with --policy)")
        return 1
    log_path = policy.get("log")
    lines: list[str] = []
    if log_path and os.path.exists(str(log_path)):
        with open(str(log_path), "r", encoding="utf-8") as fh:
            lines = [line.rstrip("\n") for line in fh if line.strip()]
    if args.action == "log":
        for line in lines:
            print(line)
        return 0
    by_kind: dict[str, int] = {}
    for line in lines:
        try:
            kind = str(json.loads(line).get("kind"))
        except (json.JSONDecodeError, AttributeError):
            continue
        by_kind[kind] = by_kind.get(kind, 0) + 1
    print(f"policy: enabled log={log_path}")
    kinds = " ".join(f"{k}={v}" for k, v in sorted(by_kind.items()))
    print(f"actions: {len(lines)}" + (f" ({kinds})" if kinds else ""))
    for line in lines[-5:]:
        print(f"  {line}")
    return 0


def cmd_info(args: argparse.Namespace) -> int:
    """`info` subcommand: version and usage."""
    import repro

    print(f"repro {repro.__version__} — NEPTUNE (IPPS 2016) reproduction")
    print(__doc__)
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse CLI parser."""
    parser = argparse.ArgumentParser(prog="repro.cli", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_val = sub.add_parser("validate", help="validate a JSON graph descriptor")
    p_val.add_argument("descriptor")
    p_val.set_defaults(fn=cmd_validate)

    p_an = sub.add_parser(
        "analyze",
        help="static analysis: graph verifier / plan verifier / concurrency lint",
    )
    p_an.add_argument(
        "--graph",
        nargs="+",
        default=[],
        metavar="DESC.json",
        help="JSON graph descriptor(s) to verify",
    )
    p_an.add_argument(
        "--cluster",
        nargs="+",
        default=[],
        metavar="SPEC.json",
        help="cluster spec(s) to run the NEPG130-139 plan verifier over",
    )
    p_an.add_argument(
        "--lint",
        nargs="+",
        default=[],
        metavar="PATH",
        help="Python files/directories to concurrency-lint",
    )
    p_an.add_argument(
        "--witness",
        nargs="+",
        default=[],
        metavar="W.json",
        help="sanitizer witness file(s) to cross-validate against the "
        "--lint paths' static lock-order edges",
    )
    p_an.add_argument(
        "--json", action="store_true", help="machine-readable findings"
    )
    p_an.add_argument(
        "--fail-on",
        choices=["error", "warning"],
        default="error",
        help="lowest severity that makes the exit code non-zero",
    )
    p_an.set_defaults(fn=cmd_analyze)

    p_run = sub.add_parser("run", help="run a JSON graph descriptor")
    p_run.add_argument("descriptor")
    p_run.add_argument(
        "--duration",
        type=float,
        default=0.0,
        help="seconds to run before stopping (0 = wait for sources to finish)",
    )
    p_run.add_argument("--drain-timeout", type=float, default=60.0)
    p_run.add_argument(
        "--workers",
        type=int,
        default=1,
        help="deploy across N Granules resources over TCP (default: local)",
    )
    p_run.set_defaults(fn=cmd_run)

    p_tr = sub.add_parser(
        "trace", help="run a graph with causal tracing and print the breakdown"
    )
    p_tr.add_argument(
        "descriptor", nargs="?", default=None, help="JSON graph descriptor"
    )
    p_tr.add_argument(
        "--example",
        default="quickstart",
        help="examples/<NAME>.py exposing build_graph() (default: quickstart)",
    )
    p_tr.add_argument(
        "--sample-every",
        type=int,
        default=100,
        metavar="N",
        help="trace every Nth source packet (default: 100)",
    )
    p_tr.add_argument("--drain-timeout", type=float, default=60.0)
    p_tr.add_argument(
        "--timeline",
        type=int,
        nargs="?",
        const=50,
        default=0,
        metavar="N",
        help="also print the last N runtime events (default when given: 50)",
    )
    p_tr.set_defaults(fn=cmd_trace)

    p_met = sub.add_parser(
        "metrics", help="run a graph and export the telemetry registry"
    )
    p_met.add_argument(
        "descriptor", nargs="?", default=None, help="JSON graph descriptor"
    )
    p_met.add_argument(
        "--example",
        default="quickstart",
        help="examples/<NAME>.py exposing build_graph() (default: quickstart)",
    )
    p_met.add_argument(
        "--format",
        choices=["prometheus", "json"],
        default="prometheus",
        help="export format (default: prometheus text exposition)",
    )
    p_met.add_argument(
        "--workers",
        type=int,
        default=2,
        help="deploy across N resources over TCP so transport metrics "
        "are exercised (1 = local runtime)",
    )
    p_met.add_argument(
        "--sample-every",
        type=int,
        default=0,
        metavar="N",
        help="also trace every Nth packet (0 = tracing off)",
    )
    p_met.add_argument("--drain-timeout", type=float, default=60.0)
    p_met.add_argument(
        "--cluster",
        action="store_true",
        help="deploy across real worker processes and export the merged "
        "worker-labeled cluster registry (uses --workers, min 2)",
    )
    p_met.set_defaults(fn=cmd_metrics)

    p_top = sub.add_parser(
        "top", help="live cluster view: throughput, p99/stage, gates, SLOs"
    )
    p_top.add_argument(
        "descriptor", nargs="?", default=None, help="JSON graph descriptor"
    )
    p_top.add_argument(
        "--example",
        default="quickstart",
        help="examples/<NAME>.py exposing build_graph() (default: quickstart)",
    )
    p_top.add_argument(
        "--workers",
        type=int,
        default=3,
        help="worker processes to launch (default: 3)",
    )
    p_top.add_argument(
        "--frames",
        type=int,
        default=0,
        metavar="N",
        help="render N frames then drain and exit (0 = until the job "
        "quiesces or Ctrl-C)",
    )
    p_top.add_argument(
        "--refresh",
        type=float,
        default=1.0,
        metavar="SEC",
        help="seconds between frames (default: 1.0)",
    )
    p_top.add_argument(
        "--state",
        default=None,
        metavar="STATE.json",
        help="attach to a running cluster (from `cluster launch --state`) "
        "instead of launching one",
    )
    p_top.add_argument(
        "--sample-every",
        type=int,
        default=1,
        metavar="N",
        help="trace every Nth source packet (default: 1)",
    )
    p_top.add_argument("--latency-budget", type=float, default=0.05)
    p_top.add_argument("--e2e-budget", type=float, default=0.25)
    p_top.add_argument("--drain-timeout", type=float, default=60.0)
    p_top.add_argument("--connect-timeout", type=float, default=60.0)
    p_top.set_defaults(fn=cmd_top)

    p_doc = sub.add_parser(
        "doctor", help="correlate health signals into a root-cause report"
    )
    p_doc.add_argument(
        "descriptor", nargs="?", default=None, help="JSON graph descriptor"
    )
    p_doc.add_argument(
        "--example",
        default="quickstart",
        help="examples/<NAME>.py exposing build_graph() (default: quickstart)",
    )
    p_doc.add_argument(
        "--from-dump",
        default=None,
        metavar="SNAP.json|FLIGHT.json|DIR",
        help="diagnose a snapshot written by --dump, a flight-recorder "
        "dump, or a directory of flight dumps (merged), instead of "
        "running a graph",
    )
    p_doc.add_argument(
        "--cluster",
        action="store_true",
        help="deploy across real worker processes and diagnose the merged "
        "cluster view (uses --workers, min 2)",
    )
    p_doc.add_argument(
        "--dump",
        default=None,
        metavar="SNAP.json",
        help="also write the raw observer snapshot for post-hoc diagnosis",
    )
    p_doc.add_argument(
        "--json", action="store_true", help="machine-readable report"
    )
    p_doc.add_argument(
        "--sample-every",
        type=int,
        default=50,
        metavar="N",
        help="base trace sampling interval (adaptive sampling densifies "
        "breaching regions; default: 50)",
    )
    p_doc.add_argument(
        "--latency-budget",
        type=float,
        default=0.05,
        metavar="SEC",
        help="per-operator p99 stage-latency SLO (default: 0.05s)",
    )
    p_doc.add_argument(
        "--e2e-budget",
        type=float,
        default=0.25,
        metavar="SEC",
        help="job-wide traced end-to-end delay SLO (default: 0.25s)",
    )
    p_doc.add_argument(
        "--scan-interval",
        type=float,
        default=0.05,
        metavar="SEC",
        help="health-engine scan period (default: 0.05s)",
    )
    p_doc.add_argument(
        "--max-causes",
        type=int,
        default=3,
        help="ranked causes reported per breach episode (default: 3)",
    )
    p_doc.add_argument(
        "--workers",
        type=int,
        default=1,
        help="deploy across N resources over TCP (default: local runtime)",
    )
    p_doc.add_argument("--drain-timeout", type=float, default=60.0)
    p_doc.set_defaults(fn=cmd_doctor)

    p_prof = sub.add_parser(
        "profile",
        help="run a graph under the sampling profiler: per-operator CPU "
        "attribution, flamegraph dumps",
    )
    p_prof.add_argument(
        "descriptor", nargs="?", default=None, help="JSON graph descriptor"
    )
    p_prof.add_argument(
        "--example",
        default="quickstart",
        help="examples/<NAME>.py exposing build_graph() (default: quickstart)",
    )
    p_prof.add_argument(
        "--hz",
        type=float,
        default=50.0,
        help="target sampling rate (duty-cycled down under load; default: 50)",
    )
    p_prof.add_argument(
        "--cluster",
        action="store_true",
        help="profile every worker process and merge the snapshots over "
        "the control plane (uses --workers, min 2)",
    )
    p_prof.add_argument(
        "--workers",
        type=int,
        default=2,
        help="worker processes with --cluster (default: 2)",
    )
    p_prof.add_argument(
        "--dump",
        default=None,
        metavar="FILE",
        help="write the profile as speedscope JSON (or collapsed stacks "
        "with --format collapsed)",
    )
    p_prof.add_argument(
        "--format",
        choices=["speedscope", "collapsed"],
        default="speedscope",
        help="--dump format (default: speedscope)",
    )
    p_prof.add_argument(
        "--from-dump",
        default=None,
        metavar="PROFILE.json|FLIGHT.json|DIR",
        help="render a profile snapshot, a flight dump's profile section, "
        "or a directory of flight dumps (merged) instead of running",
    )
    p_prof.add_argument(
        "--snap",
        default=None,
        metavar="FILE",
        help="also write the raw profile snapshot for post-hoc rendering "
        "with --from-dump",
    )
    p_prof.add_argument(
        "--top",
        type=int,
        default=10,
        help="rows in the printed summary (default: 10)",
    )
    p_prof.add_argument("--drain-timeout", type=float, default=60.0)
    p_prof.set_defaults(fn=cmd_profile)

    p_exp = sub.add_parser("experiment", help="regenerate a paper table/figure")
    p_exp.add_argument(
        "name",
        choices=[
            "fig2", "table1", "gc", "fig4", "fig5",
            "fig6", "fig7", "fig9", "fig10", "headline",
        ],
    )
    p_exp.add_argument("--full", action="store_true", help="full-resolution sweep")
    p_exp.set_defaults(fn=cmd_experiment)

    p_chaos = sub.add_parser(
        "chaos", help="run a seeded fault-injection scenario"
    )
    p_chaos.add_argument(
        "--mode",
        choices=["wire", "pipeline"],
        default="wire",
        help="wire: raw transport link under a rate plan; "
        "pipeline: two-resource relay with scripted socket kills",
    )
    p_chaos.add_argument("--seed", type=int, default=0)
    p_chaos.add_argument("--frames", type=int, default=60, help="wire mode: frames to send")
    p_chaos.add_argument("--payload-size", type=int, default=256)
    p_chaos.add_argument("--drop", type=float, default=0.04)
    p_chaos.add_argument("--delay", type=float, default=0.0)
    p_chaos.add_argument("--duplicate", type=float, default=0.04)
    p_chaos.add_argument("--truncate", type=float, default=0.03)
    p_chaos.add_argument("--bitflip", type=float, default=0.03)
    p_chaos.add_argument("--kill", type=float, default=0.03)
    p_chaos.add_argument("--total", type=int, default=800, help="pipeline mode: packets")
    p_chaos.add_argument(
        "--kill-at",
        default="3,9",
        help="pipeline mode: comma-separated frame ordinals to sever at",
    )
    p_chaos.add_argument("--trace", action="store_true", help="print fired faults")
    p_chaos.set_defaults(fn=cmd_chaos)

    p_bench = sub.add_parser(
        "bench", help="run hot-path benchmarks and write BENCH_hotpath.json"
    )
    p_bench.add_argument(
        "--profile",
        choices=["smoke", "quick", "full"],
        default="quick",
        help="workload tier (smoke: tests, quick: CI, full: local)",
    )
    p_bench.add_argument(
        "--out",
        default="BENCH_hotpath.json",
        help="report path ('' to skip writing)",
    )
    p_bench.add_argument(
        "--check",
        default=None,
        metavar="BASELINE.json",
        help="fail when guarded metrics regress vs this baseline report",
    )
    p_bench.add_argument(
        "--tolerance",
        type=float,
        default=0.10,
        help="allowed fractional drop before --check fails (default 0.10)",
    )
    p_bench.set_defaults(fn=cmd_bench)

    p_cluster = sub.add_parser(
        "cluster", help="multi-process sharded data plane (launch/status/stop)"
    )
    cluster_sub = p_cluster.add_subparsers(dest="action", required=True)

    p_cl = cluster_sub.add_parser(
        "launch", help="shard a descriptor across N worker processes"
    )
    p_cl.add_argument("descriptor")
    p_cl.add_argument(
        "--workers",
        type=int,
        default=2,
        help="worker processes to spawn (default: 2)",
    )
    p_cl.add_argument(
        "--fabric",
        choices=["tcp", "unix"],
        default="tcp",
        help="shard interconnect: TCP loopback or Unix domain sockets",
    )
    p_cl.add_argument(
        "--state",
        default=None,
        metavar="STATE.json",
        help="write an attach handle for `cluster status` / `cluster stop`",
    )
    p_cl.add_argument(
        "--log-dir",
        default=None,
        metavar="DIR",
        help="redirect each worker's stdout/stderr to DIR/worker-N.log",
    )
    p_cl.add_argument(
        "--duration",
        type=float,
        default=0.0,
        help="seconds to run before stopping (0 = wait for sources to finish)",
    )
    p_cl.add_argument("--drain-timeout", type=float, default=60.0)
    p_cl.add_argument("--connect-timeout", type=float, default=60.0)
    p_cl.add_argument(
        "--policy",
        action="store_true",
        help="run the elasticity policy engine: per-operator p99 SLOs, "
        "breach diagnosis, live retune/scale/migrate reactions",
    )
    p_cl.add_argument(
        "--slo-latency",
        type=float,
        default=0.05,
        metavar="SECONDS",
        help="p99 stage-latency budget for --policy SLOs (default: 0.05)",
    )
    p_cl.set_defaults(fn=cmd_cluster_launch)

    p_cs = cluster_sub.add_parser(
        "status", help="probe a running cluster through its state file"
    )
    p_cs.add_argument("--state", required=True, metavar="STATE.json")
    p_cs.add_argument("--connect-timeout", type=float, default=5.0)
    p_cs.set_defaults(fn=cmd_cluster_status)

    p_cx = cluster_sub.add_parser(
        "stop", help="drain and stop a running cluster through its state file"
    )
    p_cx.add_argument("--state", required=True, metavar="STATE.json")
    p_cx.add_argument("--drain-timeout", type=float, default=60.0)
    p_cx.add_argument("--connect-timeout", type=float, default=5.0)
    p_cx.set_defaults(fn=cmd_cluster_stop)

    p_pol = sub.add_parser(
        "policy", help="elasticity policy engine (status / action log)"
    )
    policy_sub = p_pol.add_subparsers(dest="action", required=True)
    p_ps = policy_sub.add_parser(
        "status", help="summarize a cluster's policy decisions"
    )
    p_ps.add_argument("--state", required=True, metavar="STATE.json")
    p_ps.set_defaults(fn=cmd_policy)
    p_pl = policy_sub.add_parser(
        "log", help="print the canonical policy action log (one JSON line each)"
    )
    p_pl.add_argument("--state", required=True, metavar="STATE.json")
    p_pl.set_defaults(fn=cmd_policy)

    p_info = sub.add_parser("info", help="version and usage")
    p_info.set_defaults(fn=cmd_info)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
