"""Entropy-based selective compression (paper §III-B5).

NEPTUNE compresses a buffered payload only when its byte entropy falls
below a configurable threshold: low-entropy sensor streams (e.g. the
DEBS manufacturing readings, where consecutive packets barely change)
compress well and gain bandwidth; high-entropy (random) streams would
only pay CPU for nothing, so they are sent raw.
"""

from repro.compression.entropy import shannon_entropy, sampled_entropy
from repro.compression.policy import (
    CompressionPolicy,
    CompressionDecision,
    CompressionStats,
)

__all__ = [
    "shannon_entropy",
    "sampled_entropy",
    "CompressionPolicy",
    "CompressionDecision",
    "CompressionStats",
]
