"""The selective compression policy and its wire encoding.

A :class:`CompressionPolicy` is attached per-stream (the paper notes
effectiveness "depends on the nature of the stream data, hence should be
enabled and configured for each stream individually even within the same
stream processing job").  ``encode`` prepends a one-byte flag so the
receiver knows whether to decompress; ``decode`` inverts it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from enum import Enum

from repro.compression.entropy import sampled_entropy
from repro.lz4 import compress as lz4_compress, decompress as lz4_decompress

FLAG_RAW = 0x00
FLAG_LZ4 = 0x01

# Hard cap guarding decompression of hostile / corrupted wire data.
MAX_DECOMPRESSED = 1 << 30


class CompressionDecision(Enum):
    """Why a payload was (not) compressed — recorded for observability."""

    DISABLED = "disabled"
    ENTROPY_TOO_HIGH = "entropy_too_high"
    TOO_SMALL = "too_small"
    COMPRESSED = "compressed"
    INCOMPRESSIBLE = "incompressible"  # compressed output was not smaller


@dataclass
class CompressionStats:
    """Running counters for one stream's compression behaviour."""

    payloads_seen: int = 0
    payloads_compressed: int = 0
    bytes_in: int = 0
    bytes_out: int = 0
    compress_seconds: float = 0.0
    decisions: dict = field(default_factory=dict)

    def record(self, decision: CompressionDecision, n_in: int, n_out: int, secs: float) -> None:
        """Record one observation."""
        self.payloads_seen += 1
        self.bytes_in += n_in
        self.bytes_out += n_out
        self.compress_seconds += secs
        if decision is CompressionDecision.COMPRESSED:
            self.payloads_compressed += 1
        self.decisions[decision] = self.decisions.get(decision, 0) + 1

    @property
    def ratio(self) -> float:
        """Overall output/input byte ratio (1.0 when nothing compressed)."""
        return self.bytes_out / self.bytes_in if self.bytes_in else 1.0


class CompressionPolicy:
    """Entropy-gated LZ4 compression for outbound buffers.

    Parameters
    ----------
    enabled:
        Master switch; when False every payload is sent raw.
    entropy_threshold:
        Compress only when the payload's estimated entropy (bits/byte)
        is strictly below this.  8.0 compresses everything compressible;
        0.0 never compresses.
    min_size:
        Payloads smaller than this are never compressed (header overhead
        and CPU cost dominate on tiny buffers).
    """

    def __init__(
        self,
        enabled: bool = True,
        entropy_threshold: float = 6.0,
        min_size: int = 64,
    ) -> None:
        if not 0.0 <= entropy_threshold <= 8.0:
            raise ValueError(f"entropy_threshold must be in [0, 8]: {entropy_threshold}")
        if min_size < 0:
            raise ValueError(f"min_size must be non-negative: {min_size}")
        self.enabled = enabled
        self.entropy_threshold = entropy_threshold
        self.min_size = min_size
        self.stats = CompressionStats()

    def encode(self, payload: bytes | bytearray | memoryview) -> bytes:
        """Return flag byte + (possibly compressed) payload.

        Accepts any bytes-like payload (e.g. a pooled flush bytearray);
        the returned frame is always an independent ``bytes`` object.
        """
        t0 = time.perf_counter()
        decision, body = self._encode_body(payload)
        flag = FLAG_LZ4 if decision is CompressionDecision.COMPRESSED else FLAG_RAW
        out = b"".join((bytes((flag,)), body))
        self.stats.record(decision, len(payload), len(out), time.perf_counter() - t0)
        return out

    def _encode_body(
        self, payload: bytes | bytearray | memoryview
    ) -> tuple[CompressionDecision, bytes | bytearray | memoryview]:
        if not self.enabled:
            return CompressionDecision.DISABLED, payload
        if len(payload) < self.min_size:
            return CompressionDecision.TOO_SMALL, payload
        if sampled_entropy(payload) >= self.entropy_threshold:
            return CompressionDecision.ENTROPY_TOO_HIGH, payload
        packed = lz4_compress(payload)
        if len(packed) >= len(payload):
            return CompressionDecision.INCOMPRESSIBLE, payload
        return CompressionDecision.COMPRESSED, packed

    @staticmethod
    def decode(data: bytes) -> bytes:
        """Invert :meth:`encode` (usable without a policy instance)."""
        if not data:
            raise ValueError("empty compressed frame")
        flag, body = data[0], data[1:]
        if flag == FLAG_RAW:
            return body
        if flag == FLAG_LZ4:
            return lz4_decompress(body, max_size=MAX_DECOMPRESSED)
        raise ValueError(f"unknown compression flag: {flag:#x}")
