"""Shannon entropy estimation over byte payloads.

Entropy is measured in bits per byte, in [0, 8].  A uniform random byte
stream approaches 8; a constant payload is 0.  The selective-compression
policy compares this estimate against its threshold.
"""

from __future__ import annotations

import numpy as np


def shannon_entropy(data: bytes | bytearray | memoryview) -> float:
    """Exact Shannon entropy (bits/byte) of the byte histogram of ``data``.

    Returns 0.0 for empty input.
    """
    buf = np.frombuffer(bytes(data), dtype=np.uint8)
    if buf.size == 0:
        return 0.0
    counts = np.bincount(buf, minlength=256)
    probs = counts[counts > 0] / buf.size
    return float(-(probs * np.log2(probs)).sum())


def sampled_entropy(
    data: bytes | bytearray | memoryview,
    sample_size: int = 4096,
    stride: int | None = None,
) -> float:
    """Entropy estimate from a strided sample of ``data``.

    For large buffered batches an exact histogram is unnecessary; a
    deterministic strided sample of ``sample_size`` bytes is within a
    few percent for the payloads NEPTUNE carries while costing O(sample)
    instead of O(n).  Deterministic (no RNG) so repeated calls on the
    same buffer always agree — the compression decision must be stable.
    """
    buf = bytes(data)
    n = len(buf)
    if n <= sample_size:
        return shannon_entropy(buf)
    if stride is None:
        stride = max(1, n // sample_size)
    return shannon_entropy(buf[::stride][:sample_size])
