"""repro — a reproduction of NEPTUNE (IPPS 2016).

NEPTUNE is a real-time, high-throughput stream-processing framework for
IoT and sensing environments.  This package contains:

- :mod:`repro.core` — the NEPTUNE programming model and threaded runtime
  (stream packets, sources/processors, links, partitioning, graphs,
  application-level buffering, batched scheduling, object reuse,
  backpressure, selective compression).
- :mod:`repro.granules` — the Granules substrate NEPTUNE builds on
  (computational tasks, datasets, resources, scheduling strategies).
- :mod:`repro.net` — framing and transports (in-process and TCP).
- :mod:`repro.lz4` — a pure-Python LZ4 block-format codec.
- :mod:`repro.compression` — entropy estimation and the selective
  compression policy.
- :mod:`repro.sim` — a discrete-event cluster simulator used to
  regenerate the paper's evaluation (Figures 2, 4-7, 9, 10; Table I),
  including a faithful Apache Storm baseline model.
- :mod:`repro.workloads` — IoT / DEBS-2012 / synthetic stream generators.
- :mod:`repro.stats` — Tukey HSD and t-test helpers used by the paper's
  statistical validation.
"""

__version__ = "1.0.0"

# Lazy re-exports (PEP 562): `import repro` stays cheap; the runtime is
# only imported when one of these names is first touched.
_EXPORTS = {
    "StreamPacket": "repro.core.packet",
    "StreamProcessingGraph": "repro.core.graph",
    "StreamSource": "repro.core.operators",
    "StreamProcessor": "repro.core.operators",
    "NeptuneRuntime": "repro.core.runtime",
}

__all__ = [*_EXPORTS, "__version__"]


def __getattr__(name: str):
    if name in _EXPORTS:
        import importlib

        return getattr(importlib.import_module(_EXPORTS[name]), name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
