"""Granules scheduling strategies.

"Computational tasks are scheduled to run based on a *scheduling
strategy* that can be changed during execution.  The scheduling strategy
could be data driven, periodic, count based or a combination of these."
(§II)

A strategy answers two questions for the Resource's dispatcher:

- :meth:`should_run` — given the task and the current time, is an
  execution due right now?
- :meth:`next_deadline` — if not, when should the dispatcher re-check
  (None = only on a data-availability notification)?
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.granules.task import ComputationalTask


class SchedulingStrategy(ABC):
    """Decides when a computational task gets a scheduled execution."""

    @abstractmethod
    def should_run(self, task: ComputationalTask, now: float) -> bool:
        """Whether the task is due for an execution at time ``now``."""

    def next_deadline(self, task: ComputationalTask, now: float) -> float | None:
        """Earliest future time the decision could flip to True.

        None means "no time-based trigger" — the dispatcher waits for a
        dataset notification instead.
        """
        return None

    def notify_executed(self, task: ComputationalTask, now: float) -> None:
        """Hook invoked after each execution (for stateful strategies)."""


class DataDrivenStrategy(SchedulingStrategy):
    """Run whenever any attached dataset has data.

    This is the strategy behind NEPTUNE stream processors: "Stream
    processors are scheduled only if data is available in any of the
    input streams" (§III-A3).
    """

    def should_run(self, task: ComputationalTask, now: float) -> bool:
        """Whether the task is due for execution now."""
        return any(ds.has_data() for ds in task.datasets)


class PeriodicStrategy(SchedulingStrategy):
    """Run every ``interval`` seconds (e.g. "every 500 milliseconds")."""

    def __init__(self, interval: float) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive: {interval}")
        self.interval = interval
        self._next_run: float | None = None

    def should_run(self, task: ComputationalTask, now: float) -> bool:
        """Whether the task is due for execution now."""
        if self._next_run is None:
            self._next_run = now
        return now >= self._next_run

    def next_deadline(self, task: ComputationalTask, now: float) -> float | None:
        """Earliest future time the decision could flip to True."""
        return self._next_run if self._next_run is not None else now

    def notify_executed(self, task: ComputationalTask, now: float) -> None:
        """Post-execution hook for stateful strategies."""
        base = self._next_run if self._next_run is not None else now
        nxt = base + self.interval
        if nxt <= now:
            # Stalled past one or more periods: skip the missed runs
            # rather than bursting to catch up.
            nxt = now + self.interval
        self._next_run = nxt


class CountBasedStrategy(SchedulingStrategy):
    """Run when at least ``threshold`` items are queued in any dataset.

    Only meaningful over datasets with a length (QueueDataset).
    """

    def __init__(self, threshold: int) -> None:
        if threshold <= 0:
            raise ValueError(f"threshold must be positive: {threshold}")
        self.threshold = threshold

    def should_run(self, task: ComputationalTask, now: float) -> bool:
        """Whether the task is due for execution now."""
        for ds in task.datasets:
            try:
                if len(ds) >= self.threshold:  # type: ignore[arg-type]
                    return True
            except TypeError:
                continue
        return False


class CombinedStrategy(SchedulingStrategy):
    """OR-combination: run when any child strategy says run.

    The paper's example — "run every 500 milliseconds or when data is
    available in a particular dataset" — is
    ``CombinedStrategy(PeriodicStrategy(0.5), DataDrivenStrategy())``.
    """

    def __init__(self, *strategies: SchedulingStrategy) -> None:
        if not strategies:
            raise ValueError("CombinedStrategy needs at least one child")
        self.strategies = strategies

    def should_run(self, task: ComputationalTask, now: float) -> bool:
        """Whether the task is due for execution now."""
        return any(s.should_run(task, now) for s in self.strategies)

    def next_deadline(self, task: ComputationalTask, now: float) -> float | None:
        """Earliest future time the decision could flip to True."""
        deadlines = [
            d for s in self.strategies if (d := s.next_deadline(task, now)) is not None
        ]
        return min(deadlines) if deadlines else None

    def notify_executed(self, task: ComputationalTask, now: float) -> None:
        """Post-execution hook for stateful strategies."""
        for s in self.strategies:
            s.notify_executed(task, now)
