"""The Granules substrate (paper §II).

Granules is the authors' cloud runtime that NEPTUNE is layered on.  Its
abstractions, reimplemented here:

- :class:`ComputationalTask` — the finest-grained unit of execution,
  encapsulating domain logic over a fine-grained unit of data.
- :class:`Dataset` — unified access to low-level data (files, streams,
  queues) with availability notifications.
- :class:`Resource` — a per-machine container that hosts and runs
  computational tasks on a worker thread pool.
- Scheduling strategies — data-driven, periodic, count-based, and
  combinations, changeable during execution.
"""

from repro.granules.task import ComputationalTask, TaskState
from repro.granules.dataset import Dataset, QueueDataset, IterableDataset, FileDataset
from repro.granules.scheduler import (
    SchedulingStrategy,
    DataDrivenStrategy,
    PeriodicStrategy,
    CountBasedStrategy,
    CombinedStrategy,
)
from repro.granules.resource import Resource

__all__ = [
    "ComputationalTask",
    "TaskState",
    "Dataset",
    "QueueDataset",
    "IterableDataset",
    "FileDataset",
    "SchedulingStrategy",
    "DataDrivenStrategy",
    "PeriodicStrategy",
    "CountBasedStrategy",
    "CombinedStrategy",
    "Resource",
]
