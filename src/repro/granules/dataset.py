"""Granules datasets.

"A computational task accesses data through a *dataset*.  The dataset
unifies the access of different types of resources and encapsulates the
access to low level data such as files, streams or databases.  Granules
framework manages the initializations and closures of datasets and
provides notifications on the availability of data." (§II)

The two concrete datasets here cover NEPTUNE's needs: a thread-safe
bounded queue (stream links) and a pull-based iterable wrapper
(file/replay ingestion).  Availability notifications are delivered to a
registered listener callback, which the Resource uses for data-driven
scheduling.
"""

from __future__ import annotations

import threading
from abc import ABC, abstractmethod
from collections import deque
from typing import Any, Callable, Iterable, Iterator


class Dataset(ABC):
    """Base class for all datasets.

    Lifecycle: ``initialize`` → (reads/writes) → ``close``.  A listener
    registered via :meth:`on_available` is invoked (on the producing
    thread) whenever new data becomes available.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._listener: Callable[[Dataset], None] | None = None
        self._initialized = False
        self._closed = False

    def initialize(self) -> None:
        """Prepare the dataset for use.  Idempotent."""
        self._initialized = True

    def close(self) -> None:
        """Release underlying resources.  Idempotent."""
        self._closed = True

    @property
    def closed(self) -> bool:
        """Whether this object has been closed."""
        return self._closed

    def on_available(self, listener: Callable[[Dataset], None]) -> None:
        """Register the availability-notification callback (one only)."""
        self._listener = listener

    def _notify(self) -> None:
        if self._listener is not None:
            self._listener(self)

    @abstractmethod
    def has_data(self) -> bool:
        """Whether a read would currently yield data."""


class QueueDataset(Dataset):
    """A bounded, thread-safe FIFO dataset.

    This is the dataset behind every NEPTUNE stream link: producers
    ``put`` (blocking when full — the local leg of backpressure) and the
    scheduler drains batches with :meth:`drain`.
    """

    def __init__(self, name: str, capacity: int = 1024) -> None:
        super().__init__(name)
        if capacity <= 0:
            raise ValueError(f"capacity must be positive: {capacity}")
        self.capacity = capacity
        self._items: deque[Any] = deque()
        self._lock = threading.Lock()
        self._not_full = threading.Condition(self._lock)

    def put(self, item: Any, timeout: float | None = None) -> bool:
        """Enqueue ``item``, blocking while the queue is full.

        Returns False on timeout or if the dataset was closed while
        waiting; True when the item was enqueued.
        """
        with self._not_full:
            while len(self._items) >= self.capacity:
                if self._closed:
                    return False
                if not self._not_full.wait(timeout):
                    return False
            if self._closed:
                return False
            self._items.append(item)
        self._notify()
        return True

    def drain(self, max_items: int | None = None) -> list[Any]:
        """Dequeue up to ``max_items`` (all, if None) items at once.

        Draining in one lock acquisition is what lets NEPTUNE process a
        whole buffered batch per scheduled execution.
        """
        with self._not_full:
            if max_items is None or max_items >= len(self._items):
                out = list(self._items)
                self._items.clear()
            else:
                out = [self._items.popleft() for _ in range(max_items)]
            if out:
                self._not_full.notify_all()
        return out

    def has_data(self) -> bool:
        """Whether a read would currently yield data."""
        with self._lock:
            return bool(self._items)

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)

    def close(self) -> None:
        """Release underlying resources. Idempotent."""
        with self._not_full:
            super().close()
            self._not_full.notify_all()


class FileDataset(Dataset):
    """Line- or block-oriented access to a file (§II: datasets unify
    "access to low level data such as files, streams or databases").

    Reads lazily; :meth:`tell`/:meth:`seek` expose byte positions so a
    replaying source can checkpoint its progress
    (:class:`repro.core.checkpoint.ReplayableSource`).
    """

    def __init__(self, name: str, path: str, mode: str = "lines") -> None:
        super().__init__(name)
        if mode not in ("lines", "bytes"):
            raise ValueError(f"mode must be 'lines' or 'bytes': {mode}")
        self.path = path
        self.mode = mode
        self._fh = None
        self._peeked: bytes | None = None
        self._final_pos: int | None = None

    def initialize(self) -> None:
        """Prepare for use (framework-managed lifecycle)."""
        super().initialize()
        if self._fh is None:
            self._fh = open(self.path, "rb")
            self._final_pos = None

    def close(self) -> None:
        """Release underlying resources. Idempotent."""
        super().close()
        if self._fh is not None:
            # Preserve the logical position so a checkpoint taken after
            # the dataset closed still records where reading stopped.
            self._final_pos = self.tell()
            self._fh.close()
            self._fh = None

    def _ensure_open(self):
        if self._fh is None:
            self.initialize()
        return self._fh

    def next(self, block_size: int = 4096) -> bytes:
        """Next line (or block); raises StopIteration at EOF."""
        if self._peeked is not None:
            out, self._peeked = self._peeked, None
            return out
        fh = self._ensure_open()
        data = fh.readline() if self.mode == "lines" else fh.read(block_size)
        if not data:
            raise StopIteration
        return data

    def has_data(self) -> bool:
        """Whether a read would currently yield data."""
        if self._closed:
            return False
        if self._peeked is not None:
            return True
        try:
            self._peeked = self.next()
            return True
        except StopIteration:
            return False

    def tell(self) -> int:
        """Byte position of the next unread record (checkpointable)."""
        if self._fh is None and self._final_pos is not None:
            return self._final_pos
        fh = self._ensure_open()
        pos = fh.tell()
        if self._peeked is not None:
            pos -= len(self._peeked)
        return pos

    def seek(self, position: int) -> None:
        """Reposition to an absolute byte offset (checkpoint restore)."""
        fh = self._ensure_open()
        self._peeked = None
        fh.seek(position)


class IterableDataset(Dataset):
    """Pull-based dataset over any Python iterable.

    Used by stream sources replaying files or synthetic generators; the
    paper's sources "ingest streams using a pull-based approach from an
    IoT gateway".
    """

    def __init__(self, name: str, iterable: Iterable[Any]) -> None:
        super().__init__(name)
        self._iterable = iterable
        self._iterator: Iterator[Any] | None = None
        self._exhausted = False
        self._peeked: list[Any] = []

    def initialize(self) -> None:
        """Prepare for use (framework-managed lifecycle)."""
        super().initialize()
        if self._iterator is None:
            self._iterator = iter(self._iterable)

    def next(self) -> Any:
        """Return the next item, or raise StopIteration when exhausted."""
        if self._peeked:
            return self._peeked.pop()
        if self._iterator is None:
            self.initialize()
        try:
            return next(self._iterator)  # type: ignore[arg-type]
        except StopIteration:
            self._exhausted = True
            raise

    def has_data(self) -> bool:
        """Whether a read would currently yield data."""
        if self._peeked:
            return True
        if self._exhausted or self._closed:
            return False
        try:
            self._peeked.append(self.next())
            return True
        except StopIteration:
            return False
