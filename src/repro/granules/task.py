"""Granules computational tasks.

"A computational task is the most fine grained unit of execution in the
Granules runtime.  Tasks encapsulate a domain specific processing logic
to process a fine grained unit of data such as a file, a packet, or a
database record." (§II)

NEPTUNE stream operators are implemented as computational tasks whose
scheduling strategy is data-driven on their input stream datasets.
"""

from __future__ import annotations

import enum
import threading
from abc import ABC, abstractmethod
from typing import Any

from repro.granules.dataset import Dataset


class TaskState(enum.Enum):
    """Lifecycle states managed by the hosting Resource."""

    CREATED = "created"
    INITIALIZED = "initialized"
    RUNNABLE = "runnable"
    RUNNING = "running"
    TERMINATED = "terminated"
    FAILED = "failed"


class ComputationalTask(ABC):
    """Base class for Granules computational tasks.

    Subclasses implement :meth:`execute`, invoked by the Resource per
    scheduling decision.  The framework guarantees ``initialize`` runs
    before the first ``execute`` and ``terminate`` after the last; a
    task instance is never executed concurrently with itself (this is
    what makes NEPTUNE's per-instance in-order processing trivial).
    """

    def __init__(self, task_id: str) -> None:
        self.task_id = task_id
        self.state = TaskState.CREATED
        self._datasets: dict[str, Dataset] = {}
        # Held by the Resource while this task executes; also serializes
        # state transitions.
        self._run_lock = threading.Lock()
        self.executions = 0
        self.failure: BaseException | None = None

    # -- dataset management -------------------------------------------------
    def attach_dataset(self, dataset: Dataset) -> None:
        """Register a dataset; the framework initializes/closes it."""
        if dataset.name in self._datasets:
            raise ValueError(f"duplicate dataset {dataset.name!r} on task {self.task_id!r}")
        self._datasets[dataset.name] = dataset

    def dataset(self, name: str) -> Dataset:
        """Look up an attached dataset by name."""
        return self._datasets[name]

    @property
    def datasets(self) -> tuple[Dataset, ...]:
        """The datasets attached to this task."""
        return tuple(self._datasets.values())

    # -- lifecycle -----------------------------------------------------------
    def initialize(self) -> None:
        """Hook run once before the first execution."""

    def terminate(self) -> None:
        """Hook run once when the task is torn down."""

    def _framework_initialize(self) -> None:
        for ds in self._datasets.values():
            ds.initialize()
        self.initialize()
        self.state = TaskState.INITIALIZED

    def _framework_terminate(self) -> None:
        try:
            self.terminate()
        finally:
            for ds in self._datasets.values():
                ds.close()
            if self.state is not TaskState.FAILED:
                self.state = TaskState.TERMINATED

    def _framework_execute(self, context: Any = None) -> None:
        """One scheduled execution, serialized per task instance."""
        with self._run_lock:
            if self.state in (TaskState.TERMINATED, TaskState.FAILED):
                return
            self.state = TaskState.RUNNING
            try:
                self.execute(context)
                self.executions += 1
                self.state = TaskState.RUNNABLE
            except BaseException as exc:
                self.failure = exc
                self.state = TaskState.FAILED
                raise

    @abstractmethod
    def execute(self, context: Any = None) -> None:
        """Domain-specific processing for one scheduling quantum."""
