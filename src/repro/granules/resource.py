"""Granules resources — per-machine task containers.

"Granules launches one or more *resources* at a single physical machine
which act as containers for individual computation tasks.  The framework
is responsible for managing the life cycles of computational tasks in
addition to launching and terminating computational tasks running on
these resources." (§II)

A :class:`Resource` hosts tasks on a worker thread pool (NEPTUNE's
worker tier).  Dispatch rules:

- a task instance never executes concurrently with itself;
- it is (re)queued when its scheduling strategy fires, either from a
  dataset-availability notification or from a timer deadline;
- executions drained from the ready queue amortize context switches: a
  worker keeps re-executing a task while its strategy still fires,
  up to ``max_consecutive`` runs, before yielding the worker.
"""

from __future__ import annotations

import enum
import threading
from collections import deque
from dataclasses import dataclass, field

from repro.granules.scheduler import SchedulingStrategy
from repro.granules.task import ComputationalTask, TaskState
from repro.util.clock import Clock, SYSTEM_CLOCK


class _SchedState(enum.Enum):
    IDLE = 0
    QUEUED = 1
    RUNNING = 2


@dataclass
class _TaskEntry:
    task: ComputationalTask
    strategy: SchedulingStrategy
    state: _SchedState = _SchedState.IDLE
    rerun: bool = field(default=False)  # notification arrived while RUNNING


class Resource:
    """A container executing computational tasks on a thread pool.

    Parameters
    ----------
    name:
        Identifier (appears in thread names and metrics).
    workers:
        Worker-thread count.  The paper sizes pools "automatically
        depending on the number of cores"; pass ``None`` for that.
    clock:
        Injectable time source for deterministic tests.
    max_consecutive:
        How many back-to-back executions a worker grants one task before
        rotating to the next ready task (fairness vs. batching).
    """

    def __init__(
        self,
        name: str,
        workers: int | None = None,
        clock: Clock = SYSTEM_CLOCK,
        max_consecutive: int = 16,
    ) -> None:
        import os

        # Thread names carry this; force the stable runtime-wide prefix
        # so profiler / flight-recorder output never shows bare pool
        # names ("worker-0-timer" → "neptune-worker-0-timer").
        self.name = name if name.startswith("neptune") else f"neptune-{name}"
        self.workers = workers if workers is not None else (os.cpu_count() or 1)
        if self.workers <= 0:
            raise ValueError(f"workers must be positive: {workers}")
        if max_consecutive <= 0:
            raise ValueError(f"max_consecutive must be positive: {max_consecutive}")
        self._clock = clock
        self._max_consecutive = max_consecutive
        self._entries: dict[str, _TaskEntry] = {}
        self._ready: deque[_TaskEntry] = deque()
        self._lock = threading.Lock()
        self._work_available = threading.Condition(self._lock)
        self._threads: list[threading.Thread] = []
        self._timer_thread: threading.Thread | None = None
        self._running = False
        # Worker threads asked to retire at their next wakeup (live
        # scale-down); monotonically named via _thread_seq.
        self._retire = 0
        self._thread_seq = 0
        self.task_failures: dict[str, BaseException] = {}

    # -- task management ----------------------------------------------------
    def launch(self, task: ComputationalTask, strategy: SchedulingStrategy) -> None:
        """Register and initialize a task under ``strategy``."""
        with self._lock:
            if task.task_id in self._entries:
                raise ValueError(f"task id {task.task_id!r} already launched on {self.name!r}")
            entry = _TaskEntry(task, strategy)
            self._entries[task.task_id] = entry
        task._framework_initialize()
        task.state = TaskState.RUNNABLE
        for ds in task.datasets:
            ds.on_available(lambda _ds, e=entry: self._on_data(e))
        # The task may already be runnable (e.g. periodic, or data
        # preloaded before launch).
        self._maybe_enqueue(entry)

    def terminate_task(self, task_id: str) -> None:
        """Terminate one task and close its datasets."""
        with self._lock:
            entry = self._entries.pop(task_id, None)
        if entry is not None:
            entry.task._framework_terminate()

    def set_strategy(self, task_id: str, strategy: SchedulingStrategy) -> None:
        """Swap a task's scheduling strategy during execution (§II)."""
        with self._lock:
            entry = self._entries[task_id]
            entry.strategy = strategy
        # Enqueue with the entry captured under the lock: re-reading
        # _entries here would race a concurrent terminate_task.
        self._maybe_enqueue(entry)

    @property
    def tasks(self) -> tuple[ComputationalTask, ...]:
        """The tasks currently hosted by this resource."""
        with self._lock:
            return tuple(e.task for e in self._entries.values())

    # -- lifecycle ------------------------------------------------------------
    def start(self) -> None:
        """Start background threads/services. Idempotent."""
        with self._lock:
            if self._running:
                return
            self._running = True
        for _ in range(self.workers):
            self._spawn_worker()
        self._timer_thread = threading.Thread(
            target=self._timer_loop, name=f"{self.name}-timer", daemon=True
        )
        self._timer_thread.start()

    def stop(self, timeout: float = 5.0) -> None:
        """Stop and release resources. Idempotent."""
        with self._work_available:
            self._running = False
            self._work_available.notify_all()
        for t in self._threads:
            t.join(timeout)
        if self._timer_thread is not None:
            self._timer_thread.join(timeout)
        self._threads.clear()
        self._timer_thread = None
        with self._lock:
            entries = list(self._entries.values())
            self._entries.clear()
        for e in entries:
            e.task._framework_terminate()

    def __enter__(self) -> "Resource":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    def _spawn_worker(self) -> None:
        seq = self._thread_seq
        self._thread_seq += 1
        t = threading.Thread(
            target=self._worker_loop, name=f"{self.name}-worker-{seq}", daemon=True
        )
        t.start()
        self._threads.append(t)

    def resize(self, workers: int) -> int:
        """Live-resize the worker-thread pool (elastic parallelism).

        Growing spawns threads immediately; shrinking marks that many
        threads for retirement at their next wakeup — a thread running
        a task finishes it first, so no execution is interrupted and
        no queued work is dropped.  Before :meth:`start` this only
        records the new size.  Returns the new pool size.
        """
        if workers <= 0:
            raise ValueError(f"workers must be positive: {workers}")
        grow = 0
        with self._work_available:
            delta = workers - self.workers
            self.workers = workers
            if not self._running:
                return workers
            if delta < 0:
                self._retire += -delta
                self._work_available.notify_all()
            else:
                # Growing cancels pending retirements first: the net
                # effect is the requested size either way.
                cancel = min(self._retire, delta)
                self._retire -= cancel
                grow = delta - cancel
        for _ in range(grow):
            self._spawn_worker()
        self._threads = [t for t in self._threads if t.is_alive()]
        return workers

    # -- dispatch -------------------------------------------------------------
    def _on_data(self, entry: _TaskEntry) -> None:
        self._maybe_enqueue(entry)

    def _maybe_enqueue(self, entry: _TaskEntry) -> None:
        now = self._clock.now()
        with self._work_available:
            if entry.state is _SchedState.RUNNING:
                entry.rerun = True
                return
            if entry.state is _SchedState.QUEUED:
                return
            if entry.task.state in (TaskState.TERMINATED, TaskState.FAILED):
                return
            if entry.strategy.should_run(entry.task, now):
                entry.state = _SchedState.QUEUED
                self._ready.append(entry)
                self._work_available.notify()

    def _worker_loop(self) -> None:
        while True:
            with self._work_available:
                while self._running and not self._ready and not self._retire:
                    self._work_available.wait(0.1)
                if not self._running:
                    return
                if self._retire:
                    self._retire -= 1  # scale-down: this thread retires
                    return
                entry = self._ready.popleft()
                entry.state = _SchedState.RUNNING
                entry.rerun = False
            self._run_entry(entry)

    def _run_entry(self, entry: _TaskEntry) -> None:
        consecutive = 0
        while True:
            try:
                entry.task._framework_execute()
            except BaseException as exc:  # noqa: BLE001 — isolate task faults
                with self._work_available:
                    # Worker threads fail concurrently; the failure map
                    # shares the scheduling lock.
                    self.task_failures[entry.task.task_id] = exc
                    entry.state = _SchedState.IDLE
                return
            now = self._clock.now()
            entry.strategy.notify_executed(entry.task, now)
            consecutive += 1
            with self._work_available:
                again = entry.rerun or entry.strategy.should_run(entry.task, now)
                entry.rerun = False
                if not again:
                    entry.state = _SchedState.IDLE
                    return
                if consecutive >= self._max_consecutive:
                    # Yield the worker; stay queued for fairness.
                    entry.state = _SchedState.QUEUED
                    self._ready.append(entry)
                    self._work_available.notify()
                    return
                # Keep running on this worker (amortized scheduling).

    def _timer_loop(self) -> None:
        """Poll time-based strategies for due executions."""
        while True:
            with self._lock:
                if not self._running:
                    return
                entries = list(self._entries.values())
            now = self._clock.now()
            next_deadline: float | None = None
            for entry in entries:
                dl = entry.strategy.next_deadline(entry.task, now)
                if dl is None:
                    continue
                if dl <= now:
                    self._maybe_enqueue(entry)
                elif next_deadline is None or dl < next_deadline:
                    next_deadline = dl
            # Pace the poll loop in *real* time (never via self._clock:
            # a ManualClock's sleep advances simulated time, and the
            # timer thread must not own the clock).
            import time as _time

            delay = 0.01 if next_deadline is None else min(max(next_deadline - now, 0.0005), 0.05)
            _time.sleep(delay)
