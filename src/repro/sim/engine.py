"""Minimal discrete-event simulation kernel (SimPy-flavoured).

A :class:`Simulator` owns a virtual clock and an event heap.  Model
logic is written as generator *processes* that ``yield``:

- a ``float`` → sleep that many simulated seconds,
- an :class:`Event` → suspend until the event triggers (its value is
  sent back into the generator),
- ``None`` → reschedule immediately (cooperative yield).

Determinism: ties in time break by schedule order (a monotonically
increasing sequence number), so identical runs produce identical
traces — a property the experiment harness relies on.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`."""

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence processes can wait on.

    ``succeed(value)`` wakes all waiters with ``value``.  Events may be
    triggered at most once.
    """

    __slots__ = ("sim", "triggered", "value", "_waiters", "callbacks")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self.triggered = False
        self.value: Any = None
        self._waiters: list[Process] = []
        self.callbacks: list[Callable[[Any], None]] = []

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event, waking all waiters."""
        if self.triggered:
            raise RuntimeError("event already triggered")
        self.triggered = True
        self.value = value
        for cb in self.callbacks:
            cb(value)
        waiters, self._waiters = self._waiters, []
        for proc in waiters:
            self.sim._schedule(0.0, proc, value)
        return self

    def _add_waiter(self, proc: "Process") -> None:
        if self.triggered:
            self.sim._schedule(0.0, proc, self.value)
        else:
            self._waiters.append(proc)

    def _discard_waiter(self, proc: "Process") -> None:
        try:
            self._waiters.remove(proc)
        except ValueError:
            pass


class Process:
    """A running generator; itself awaitable like an event."""

    __slots__ = ("sim", "_gen", "name", "finished", "result", "_waiters", "_waiting_on")

    def __init__(self, sim: "Simulator", gen: Generator, name: str = "") -> None:
        self.sim = sim
        self._gen = gen
        self.name = name or getattr(gen, "__name__", "proc")
        self.finished = False
        self.result: Any = None
        self._waiters: list[Process] = []
        self._waiting_on: Event | None = None

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its yield point."""
        if self.finished:
            return
        if self._waiting_on is not None:
            self._waiting_on._discard_waiter(self)
            self._waiting_on = None
        self.sim._schedule(0.0, self, Interrupt(cause))

    def _add_waiter(self, proc: "Process") -> None:
        if self.finished:
            self.sim._schedule(0.0, proc, self.result)
        else:
            self._waiters.append(proc)

    def _discard_waiter(self, proc: "Process") -> None:
        try:
            self._waiters.remove(proc)
        except ValueError:
            pass

    def _step(self, sent: Any) -> None:
        self._waiting_on = None
        try:
            if isinstance(sent, Interrupt):
                target = self._gen.throw(sent)
            else:
                target = self._gen.send(sent)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        except Interrupt:
            self._finish(None)
            return
        if target is None:
            self.sim._schedule(0.0, self, None)
        elif isinstance(target, (int, float)):
            if target < 0:
                raise ValueError(f"process {self.name!r} yielded negative delay {target}")
            self.sim._schedule(float(target), self, None)
        elif isinstance(target, (Event, Process)):
            self._waiting_on = target if isinstance(target, Event) else None
            target._add_waiter(self)
        else:
            raise TypeError(
                f"process {self.name!r} yielded {type(target).__name__}; "
                "expected float, Event, Process, or None"
            )

    def _finish(self, value: Any) -> None:
        self.finished = True
        self.result = value
        waiters, self._waiters = self._waiters, []
        for proc in waiters:
            self.sim._schedule(0.0, proc, value)


class Simulator:
    """Event heap + virtual clock."""

    def __init__(self) -> None:
        self.now = 0.0
        self._heap: list[tuple[float, int, Any, Any]] = []
        self._seq = 0
        self.events_processed = 0

    # -- construction ---------------------------------------------------------
    def event(self) -> Event:
        """Create a new untriggered event."""
        return Event(self)

    def process(self, gen: Generator, name: str = "") -> Process:
        """Register a generator as a process starting now."""
        proc = Process(self, gen, name)
        self._schedule(0.0, proc, None)
        return proc

    def timeout(self, delay: float, value: Any = None) -> Event:
        """An event that triggers ``delay`` seconds from now."""
        ev = Event(self)
        self._schedule(delay, ev, value)
        return ev

    def call_at(self, when: float, fn: Callable[[], None]) -> None:
        """Run a plain callback at absolute time ``when``."""
        if when < self.now:
            raise ValueError(f"cannot schedule in the past: {when} < {self.now}")
        self._schedule(when - self.now, fn, None)

    def schedule_interrupt(
        self, when: float, proc: "Process", cause: Any = None
    ) -> None:
        """Chaos hook: interrupt ``proc`` at absolute simulated time
        ``when`` (no-op if it already finished by then).

        This is the engine-level primitive behind node-kill events:
        :mod:`repro.chaos.simfaults` schedules one of these per victim
        process.  Deterministic like every other event — ties at the
        same timestamp fire in schedule order.
        """
        if when < self.now:
            raise ValueError(f"cannot schedule in the past: {when} < {self.now}")
        self.call_at(when, lambda: proc.interrupt(cause))

    def any_of(self, waitables: Iterable[Event | Process]) -> Event:
        """Event that fires when the first of ``waitables`` does."""
        combined = self.event()

        def arm(w):
            """Forward the first completion into the combined event."""
            probe = self.process(_forward(w, combined), name="any_of")
            del probe

        for w in waitables:
            arm(w)
        return combined

    # -- execution ---------------------------------------------------------------
    def _schedule(self, delay: float, target: Any, payload: Any) -> None:
        heapq.heappush(self._heap, (self.now + delay, self._seq, target, payload))
        self._seq += 1

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Drain the heap until empty, ``until`` time, or ``max_events``."""
        processed = 0
        while self._heap:
            t, _seq, target, payload = self._heap[0]
            if until is not None and t > until:
                self.now = until
                return
            heapq.heappop(self._heap)
            self.now = t
            self.events_processed += 1
            processed += 1
            if isinstance(target, Process):
                target._step(payload)
            elif isinstance(target, Event):
                if not target.triggered:
                    target.succeed(payload)
            else:  # plain callback
                target()
            if max_events is not None and processed >= max_events:
                return
        if until is not None:
            self.now = until


def _forward(waitable, combined: Event):
    value = yield waitable
    if not combined.triggered:
        combined.succeed(value)
