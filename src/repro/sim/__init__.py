"""Discrete-event cluster simulator.

The paper evaluates NEPTUNE on a 50-node 1 Gbps cluster against Apache
Storm 0.9.5 — hardware this reproduction does not have (and absolute
Python throughput could not match anyway; see DESIGN.md §2).  This
package simulates that testbed at the mechanism level the paper's
claims rest on:

- :mod:`repro.sim.engine` — SimPy-style event kernel (processes are
  generators yielding events/delays).
- :mod:`repro.sim.resources` — CPU cores with context-switch
  accounting, byte-capacity queues with watermark gates, 1 Gbps links
  with Ethernet/IP/TCP framing overhead, TCP connections with
  receive-window flow control, and an allocation-driven GC model.
- :mod:`repro.sim.calibration` — the cost constants (context switch,
  syscall, per-message CPU, framing overheads) with provenance notes.
- :mod:`repro.sim.neptune_model` — the NEPTUNE process model
  (buffering, batching, object reuse, backpressure, two-tier threads).
- :mod:`repro.sim.storm_model` — the Apache Storm 0.9.5 baseline
  model (per-tuple emission, four-thread message path, no
  backpressure, worker-per-job scheduling).
- :mod:`repro.sim.relay` — the Fig. 1 three-stage message relay used
  by Figures 2 and 7 and Table I.
- :mod:`repro.sim.cluster` — the 50-node scaling model behind
  Figures 5, 6, 9 and 10.
"""

from repro.sim.engine import Simulator, Event, Process, Interrupt
from repro.sim.calibration import Calibration
from repro.sim.simclock import SimClock

__all__ = ["Simulator", "Event", "Process", "Interrupt", "Calibration", "SimClock"]
