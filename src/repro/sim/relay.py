"""The three-stage message relay (paper Fig. 1) on the simulated cluster.

"A three-stage stream processing job ... simulates a message relay where
a stream processor in the second stage relays messages that it receives
from the stream source at stage 1 to a stream processor at stage 3.
The sender and receiver are deployed in the same Granules resource
whereas the message relay was deployed in a different resource running
on a separate physical machine."

One parameterized model covers both frameworks:

- ``framework="neptune"`` — application-level buffering (capacity +
  timer flush), batched scheduling, object reuse, watermark-gated
  bounded queues (backpressure), two-tier threads.
- ``framework="storm"`` — per-tuple wire transfer (no payload
  batching), a four-thread per-message path, *unbounded* queues with no
  backpressure (§IV-C: Storm 0.9.5 with acking disabled), so a slow
  stage lets queues and latency grow without bound.

Used by Figures 2 and 7, Table I, and the GC/object-reuse experiment.
Message generation and processing are *chunked* for event-count
efficiency: CPU and wire costs are charged per message exactly, but one
simulator event covers a whole buffer/chunk of messages.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.calibration import Calibration, DEFAULT_CALIBRATION
from repro.sim.engine import Simulator
from repro.sim.resources import ByteQueue, CpuScheduler, GcModel, Link, TcpConnection

#: Sentinel capacity for Storm's unbounded queues.
UNBOUNDED = 1 << 50


@dataclass
class RelayParams:
    """Configuration for one relay-simulation run."""

    framework: str = "neptune"  # "neptune" | "storm"
    message_size: int = 50
    buffer_size: int = 1 << 20  # NEPTUNE app-level buffer (bytes)
    buffer_max_delay: float = 0.010
    batched: bool = True  # batched scheduling (Table I ablation)
    object_reuse: bool = True  # §III-B3 ablation
    duration: float = 2.0  # simulated seconds
    source_rate: float | None = None  # msgs/s; None = as fast as possible
    inbound_high_watermark: int = 4 << 20
    tcp_window: int | None = None
    #: Event budget: runs stop early (reporting over the elapsed sim
    #: time) once this many simulator events have fired, so
    #: small-buffer sweeps stay tractable.
    max_events: int = 300_000
    cal: Calibration = field(default_factory=lambda: DEFAULT_CALIBRATION)

    def __post_init__(self) -> None:
        if self.framework not in ("neptune", "storm"):
            raise ValueError(f"unknown framework {self.framework!r}")
        if self.message_size <= 0:
            raise ValueError("message_size must be positive")
        if self.buffer_size <= 0:
            raise ValueError("buffer_size must be positive")
        if self.duration <= 0:
            raise ValueError("duration must be positive")
        if self.framework == "storm":
            # Storm 0.9.5 has no NEPTUNE-style serde object reuse.
            self.object_reuse = False


@dataclass
class RelayResult:
    """Measurements from one run (the paper's three metrics + extras)."""

    params: RelayParams = None  # type: ignore[assignment]
    sim_seconds: float = 0.0
    messages_generated: int = 0
    messages_relayed: int = 0
    messages_delivered: int = 0
    mean_latency: float = 0.0
    max_latency: float = 0.0
    #: (batch mean latency, packet count) pairs for percentile queries.
    latency_samples: list = field(default_factory=list)
    link_utilization_ab: float = 0.0  # wire share, source→relay link
    goodput_mbps_ab: float = 0.0
    context_switches_per_5s_relay: float = 0.0
    gc_fraction_relay: float = 0.0
    cpu_utilization_relay: float = 0.0
    cpu_utilization_source_node: float = 0.0
    relay_queue_peak_bytes: int = 0
    #: Largest queue anywhere in the pipeline (Storm's unbounded queues
    #: grow at whichever stage bottlenecks first).
    max_queue_peak_bytes: int = 0
    source_stalls: int = 0
    events_processed: int = 0

    @property
    def throughput(self) -> float:
        """Delivered messages per simulated second."""
        return self.messages_delivered / self.sim_seconds if self.sim_seconds else 0.0

    @property
    def bandwidth_gbps(self) -> float:
        """Source-to-relay link utilization of the 1 Gbps wire."""
        return self.link_utilization_ab  # of a 1 Gbps link

    def latency_percentile(self, p: float) -> float:
        """Packet-weighted latency percentile from per-batch means.

        Batches are the natural sampling unit (packets in a batch share
        fate); weighting by packet count recovers the packet-level
        distribution up to within-batch spread.
        """
        if not 0 <= p <= 100:
            raise ValueError(f"percentile out of range: {p}")
        if not self.latency_samples:
            return 0.0
        samples = sorted(self.latency_samples)
        total = sum(c for _, c in samples)
        threshold = total * p / 100.0
        acc = 0
        for latency, count in samples:
            acc += count
            if acc >= threshold:
                return latency
        return samples[-1][0]


class _BatchMeta:
    """Aggregate latency bookkeeping for one in-flight batch."""

    __slots__ = ("count", "sum_emit", "max_emit_lag", "payload")

    def __init__(self, count: int, sum_emit: float, max_emit_lag: float, payload: int):
        self.count = count
        self.sum_emit = sum_emit
        self.max_emit_lag = max_emit_lag
        self.payload = payload


class RelaySimulation:
    """Builds and runs the Fig. 1 relay on two simulated nodes."""

    def __init__(self, params: RelayParams) -> None:
        self.p = params
        self.cal = params.cal
        self.sim = Simulator()
        cores = self.cal.cores_per_node
        # Node A hosts source + sink; node B hosts the relay.
        self.cpu_a = CpuScheduler(self.sim, cores, self.cal)
        self.cpu_b = CpuScheduler(self.sim, cores, self.cal)
        self.gc_a = GcModel(self.cal)
        self.gc_b = GcModel(self.cal)
        self.link_ab = Link(self.sim, self.cal, "A->B")
        self.link_ba = Link(self.sim, self.cal, "B->A")
        window = params.tcp_window or self.cal.tcp_window
        unbounded = params.framework == "storm"
        inbound_cap = UNBOUNDED if unbounded else params.inbound_high_watermark
        # Kernel receive buffers: gate at the TCP window → zero-window
        # behaviour when the app stops draining (NEPTUNE only; Storm's
        # app queue never gates, so its kernel buffer always drains).
        self.kernel_b = ByteQueue(self.sim, window, window // 2, "kernel-B")
        self.kernel_a = ByteQueue(self.sim, window, window // 2, "kernel-A")
        self.app_b = ByteQueue(self.sim, inbound_cap, inbound_cap // 2, "app-B")
        self.app_a = ByteQueue(self.sim, inbound_cap, inbound_cap // 2, "app-A")
        self.tcp_ab = TcpConnection(self.sim, self.link_ab, self.kernel_b, self.cal, window)
        self.tcp_ba = TcpConnection(self.sim, self.link_ba, self.kernel_a, self.cal, window)
        # Outbound shared bounded buffers between worker and IO tiers.
        out_cap = UNBOUNDED if unbounded else max(params.buffer_size * 4, 1 << 20)
        self.out_a = ByteQueue(self.sim, out_cap, out_cap // 2, "out-A")
        self.out_b = ByteQueue(self.sim, out_cap, out_cap // 2, "out-B")
        # Measurements.
        self.generated = 0
        self.relayed = 0
        self.delivered = 0
        self.latency_sum = 0.0
        self.latency_max = 0.0
        self._lat_samples: list[tuple[float, int]] = []
        self._stopped = False

    # -- cost helpers -------------------------------------------------------
    def _garbage(self, count: int) -> int:
        per = (
            self.cal.garbage_per_message_reuse
            if self.p.object_reuse
            else self.cal.garbage_per_message_no_reuse
        )
        return per * count

    def _proc_cost(self, count: int, nbytes: int) -> tuple[float, int]:
        """(CPU seconds, extra context switches) to process a batch."""
        per_msg = self.cal.per_message_cpu + (nbytes / max(count, 1)) * self.cal.per_byte_cpu
        if self.p.batched:
            return per_msg * count, 0
        cost = (per_msg + self.cal.cold_schedule_penalty) * count
        switches = max(1, round(count * self.cal.individual_dispatch_switch_prob))
        return cost, switches

    # -- processes -----------------------------------------------------------
    def _source(self):
        """Stage A: generate messages, fill the app buffer, flush."""
        p, cal = self.p, self.cal
        msgs_per_batch = (
            max(1, p.buffer_size // p.message_size)
            if p.framework == "neptune"
            else max(1, min(64, int(1e5)))  # storm: event chunk only
        )
        gen_cost_per_msg = cal.per_message_cpu + p.message_size * cal.per_byte_cpu
        while not self._stopped:
            n = msgs_per_batch
            burst = gen_cost_per_msg * n
            yield self.cpu_a.execute("A.source", burst)
            if self._stopped:
                return
            self.gc_a.allocate(self._garbage(n))
            if p.source_rate is not None:
                pace = n / p.source_rate - burst
                if pace > 0:
                    yield pace
                    if self._stopped:
                        return
            now = self.sim.now
            payload = n * p.message_size
            # Messages were emitted uniformly across the burst.
            meta = _BatchMeta(n, n * now - burst * n / 2.0, burst, payload)
            self.generated += n
            yield self.out_a.put(payload, meta)

    def _io_sender(self, node: str, out_queue: ByteQueue, tcp: TcpConnection, cpu: CpuScheduler):
        """IO tier: drain the outbound buffer, push batches into TCP."""
        p, cal = self.p, self.cal
        thread = f"{node}.io-send"
        while True:
            items = yield out_queue.get_all()
            for payload, meta in items:
                if p.framework == "neptune":
                    # One network-stack traversal per flushed buffer.
                    yield cpu.execute(thread, cal.send_call_cpu + cal.thread_handoff)
                    yield tcp.send(payload, meta)
                else:
                    # Storm: per-tuple send-path CPU and per-tuple
                    # framing bytes (stream/task ids, serialization
                    # envelope), shipped as one chunked event.
                    n = meta.count
                    yield cpu.execute(
                        thread, (cal.storm_tuple_send_cpu + cal.thread_handoff) * n
                    )
                    wire = cal.wire_bytes(
                        (p.message_size + cal.storm_tuple_overhead_bytes) * n
                    )
                    yield tcp.send(payload, meta, wire_bytes=wire)

    def _io_receiver(self, node, kernel, app, cpu):
        """IO tier: kernel buffer → app inbound queue (copy + syscall)."""
        p, cal = self.p, self.cal
        thread = f"{node}.io-recv"
        while True:
            items = yield kernel.get_all()
            nbytes = sum(b for b, _ in items)
            units = (
                len(items)
                if p.framework == "neptune"
                else sum(m.count for _, m in items)
            )
            yield cpu.execute(
                thread, cal.recv_call_cpu * units + nbytes * cal.per_byte_cpu
            )
            for b, meta in items:
                yield app.put(b, meta)

    def _relay_worker(self):
        """Stage B: process each message, re-emit to stage C."""
        p = self.p
        extra_handoff = (
            self.cal.thread_handoff * self.cal.storm_extra_handoffs
            if p.framework == "storm"
            else 0.0
        )
        while True:
            items = yield self.app_b.get_all()
            for nbytes, meta in items:
                cost, switches = self._proc_cost(meta.count, nbytes)
                cost += extra_handoff * meta.count
                yield self.cpu_b.execute("B.worker", cost, extra_switches=switches)
                self.gc_b.allocate(self._garbage(meta.count))
                self.relayed += meta.count
                yield self.out_b.put(meta.payload, meta)

    def _sink_worker(self):
        """Stage C: consume, record end-to-end latency."""
        while True:
            items = yield self.app_a.get_all()
            for nbytes, meta in items:
                cost, switches = self._proc_cost(meta.count, nbytes)
                yield self.cpu_a.execute("A.sink", cost, extra_switches=switches)
                self.gc_a.allocate(self._garbage(meta.count))
                now = self.sim.now
                self.delivered += meta.count
                self.latency_sum += meta.count * now - meta.sum_emit
                self.latency_max = max(
                    self.latency_max, now - meta.sum_emit / meta.count + meta.max_emit_lag / 2
                )
                if len(self._lat_samples) < 100_000:
                    self._lat_samples.append(
                        (now - meta.sum_emit / meta.count, meta.count)
                    )

    def _gc_daemon(self, node, gc, cpu, live_queues):
        interval = 0.1
        while True:
            yield interval
            gc.set_live(sum(q.bytes for q in live_queues))
            cost = gc.drain_gc_cost()
            if cost > 0:
                yield cpu.execute(f"{node}.gc", cost)

    def _housekeeping(self, node, cpu):
        """Flush-timer polling and runtime daemons: the context-switch
        noise floor of a managed-runtime process."""
        interval = 1.0 / self.cal.housekeeping_hz
        while True:
            yield interval
            yield cpu.execute(f"{node}.timer", self.cal.housekeeping_cpu)

    def run(self) -> RelayResult:
        """Build and run the simulation; returns the result object."""
        sim, p = self.sim, self.p
        sim.process(self._source(), name="source")
        sim.process(self._io_sender("A", self.out_a, self.tcp_ab, self.cpu_a), name="ioA")
        sim.process(self._io_receiver("B", self.kernel_b, self.app_b, self.cpu_b), name="iorB")
        sim.process(self._relay_worker(), name="relay")
        sim.process(self._io_sender("B", self.out_b, self.tcp_ba, self.cpu_b), name="ioB")
        sim.process(self._io_receiver("A", self.kernel_a, self.app_a, self.cpu_a), name="iorA")
        sim.process(self._sink_worker(), name="sink")
        sim.process(
            self._gc_daemon("A", self.gc_a, self.cpu_a, [self.app_a, self.out_a]),
            name="gcA",
        )
        sim.process(
            self._gc_daemon("B", self.gc_b, self.cpu_b, [self.app_b, self.out_b]),
            name="gcB",
        )
        sim.process(self._housekeeping("A", self.cpu_a), name="hkA")
        sim.process(self._housekeeping("B", self.cpu_b), name="hkB")
        sim.call_at(p.duration, self._stop)
        sim.run(until=p.duration, max_events=p.max_events)
        if self.sim._heap and not self._stopped:
            # Event budget exhausted before the nominal duration; report
            # rates over the sim time actually covered.
            self._stopped = True
        return self._collect()

    def _stop(self) -> None:
        self._stopped = True

    def _collect(self) -> RelayResult:
        sim, p = self.sim, self.p
        elapsed = sim.now
        res = RelayResult(params=p, sim_seconds=elapsed)
        res.messages_generated = self.generated
        res.messages_relayed = self.relayed
        res.messages_delivered = self.delivered
        if self.delivered:
            res.mean_latency = self.latency_sum / self.delivered
            res.max_latency = self.latency_max
            res.latency_samples = self._lat_samples
        res.link_utilization_ab = self.link_ab.utilization()
        res.goodput_mbps_ab = self.link_ab.goodput_bps() / 1e6
        res.context_switches_per_5s_relay = self.cpu_b.context_switches * 5.0 / elapsed
        proc_cpu = self.cpu_b.busy_seconds
        gc_cpu = self.gc_b.gc_seconds_accrued
        res.gc_fraction_relay = gc_cpu / proc_cpu if proc_cpu > 0 else 0.0
        res.cpu_utilization_relay = self.cpu_b.utilization()
        res.cpu_utilization_source_node = self.cpu_a.utilization()
        res.relay_queue_peak_bytes = self.app_b.peak_bytes
        res.max_queue_peak_bytes = max(
            self.app_b.peak_bytes,
            self.app_a.peak_bytes,
            self.out_a.peak_bytes,
            self.out_b.peak_bytes,
        )
        res.source_stalls = self.out_a.writer_blocks + self.tcp_ab.sender_stalls
        res.events_processed = sim.events_processed
        return res


def run_relay(params: RelayParams) -> RelayResult:
    """Convenience: build and run one relay simulation."""
    return RelaySimulation(params).run()
