"""A :class:`~repro.util.clock.Clock` over the simulator's virtual time.

The chaos scheduler (:func:`repro.chaos.simfaults.schedule_sim_faults`)
records fired faults on the observer's timeline *at virtual fire time*,
but :class:`~repro.observe.timeline.EventTimeline` stamps events with
its clock — a real-clock observer therefore stamps a fault scheduled at
``t=5.0`` with whatever ``time.monotonic()`` happens to read, putting
injected faults and SLO breaches on different clocks and making causal
attribution in ``repro doctor`` meaningless.

Wrap the simulator instead::

    sim = Simulator()
    obs = RuntimeObserver(clock=SimClock(sim))

Now every timeline event — chaos injections, health-engine breach
transitions, anything recorded from inside a simulated process — is
stamped with ``sim.now``, one causally-ordered clock end to end.
"""

from __future__ import annotations

from repro.sim.engine import Simulator
from repro.util.clock import Clock

__all__ = ["SimClock"]


class SimClock(Clock):
    """Read-only clock adapter exposing ``Simulator.now``.

    Virtual time only advances by running the simulator, so
    :meth:`sleep` cannot block the calling thread until a deadline —
    model code must yield delays to the simulator instead.  Calling it
    is therefore an error, not a silent no-op that would corrupt
    timing-sensitive callers.
    """

    def __init__(self, sim: Simulator) -> None:
        self._sim = sim

    def now(self) -> float:
        """Current virtual time in seconds."""
        return float(self._sim.now)

    def sleep(self, seconds: float) -> None:
        """Unsupported: virtual time advances via the event heap."""
        raise RuntimeError(
            "SimClock cannot sleep: yield the delay to the simulator "
            "(e.g. `yield seconds` inside a process) instead"
        )
