"""Experiment drivers: one function per paper table/figure.

Each driver returns a list of row dicts (plus prints via the shared
``format_rows`` helper) matching the series the paper plots, so the
benchmarks under ``benchmarks/`` stay thin and EXPERIMENTS.md can be
regenerated mechanically.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.sim.backpressure import BackpressureParams, run_backpressure
from repro.sim.calibration import Calibration, DEFAULT_CALIBRATION
from repro.sim.cluster import ClusterParams, paper_testbed, run_cluster
from repro.sim.relay import RelayParams, run_relay
from repro.stats import t_test_ind

#: Fig. 2's sweep axes ("Buffer size was varied from 1 KB to 1 MB ...
#: Message sizes were chosen to cover a wide spectrum from 50 Bytes to
#: 10 KB", §III-B1).
FIG2_BUFFER_SIZES = (1024, 4096, 16384, 65536, 262144, 1048576)
FIG2_MESSAGE_SIZES = (50, 200, 400, 1024, 10240)

FIG7_MESSAGE_SIZES = (50, 200, 400, 1024, 4096, 10240)

#: Manufacturing-monitoring job profile (Figs. 8-10): 4 stages, small
#: inter-stage records (6 fields + timestamp of the 66), domain logic
#: (parsing + sliding-window updates) on top of envelope costs.
MANUFACTURING = dict(
    stages=4,
    message_size=64,
    deployment="pipeline",
    app_cpu_per_message=2.5e-6,
)


def format_rows(rows: Sequence[dict[str, Any]], title: str = "") -> str:
    """Render rows as an aligned text table (benchmarks print this)."""
    if not rows:
        return title
    cols = list(rows[0])
    widths = {
        c: max(len(str(c)), *(len(_fmt(r[c])) for r in rows)) for c in cols
    }
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(c).ljust(widths[c]) for c in cols))
    for r in rows:
        lines.append("  ".join(_fmt(r[c]).ljust(widths[c]) for c in cols))
    return "\n".join(lines)


def _fmt(v: Any) -> str:
    if isinstance(v, float):
        if v == 0:
            return "0"
        if abs(v) >= 1000 or abs(v) < 0.01:
            return f"{v:.4g}"
        return f"{v:.3f}"
    return str(v)


# ---------------------------------------------------------------------------
# FIG2 — throughput / latency / bandwidth vs buffer size
# ---------------------------------------------------------------------------


def fig2_buffer_sweep(
    buffer_sizes: Sequence[int] = FIG2_BUFFER_SIZES,
    message_sizes: Sequence[int] = FIG2_MESSAGE_SIZES,
    duration: float = 2.0,
    max_events: int = 120_000,
    cal: Calibration = DEFAULT_CALIBRATION,
) -> list[dict[str, Any]]:
    """FIG2 driver: relay sweep over buffer x message size."""
    rows = []
    for msg in message_sizes:
        for buf in buffer_sizes:
            r = run_relay(
                RelayParams(
                    message_size=msg,
                    buffer_size=buf,
                    duration=duration,
                    max_events=max_events,
                    cal=cal,
                )
            )
            rows.append(
                {
                    "message_B": msg,
                    "buffer_B": buf,
                    "throughput_msg_s": r.throughput,
                    "latency_ms": r.mean_latency * 1e3,
                    "bandwidth_gbps": r.bandwidth_gbps,
                }
            )
    return rows


# ---------------------------------------------------------------------------
# TAB1 — context switches, batched vs individual scheduling
# ---------------------------------------------------------------------------


def table1_context_switches(
    repeats: int = 5,
    duration: float = 2.0,
    cal: Calibration = DEFAULT_CALIBRATION,
) -> list[dict[str, Any]]:
    """Table I: 50 B messages, 1 MB buffer, batching decoupled.

    Repeats vary the observation offset to produce a mean ± std like
    the paper's repeated 5-second samples.
    """
    rows = []
    for mode, batched in (("batched", True), ("individual", False)):
        samples = []
        for i in range(repeats):
            r = run_relay(
                RelayParams(
                    message_size=50,
                    buffer_size=1 << 20,
                    batched=batched,
                    duration=duration + 0.1 * i,
                    cal=cal,
                )
            )
            samples.append(r.context_switches_per_5s_relay)
        mean = sum(samples) / len(samples)
        var = sum((s - mean) ** 2 for s in samples) / max(1, len(samples) - 1)
        rows.append(
            {
                "mode": mode,
                "ctx_switches_per_5s_mean": mean,
                "ctx_switches_per_5s_std": var**0.5,
            }
        )
    rows.append(
        {
            "mode": "ratio individual/batched",
            "ctx_switches_per_5s_mean": rows[1]["ctx_switches_per_5s_mean"]
            / rows[0]["ctx_switches_per_5s_mean"],
            "ctx_switches_per_5s_std": 0.0,
        }
    )
    return rows


# ---------------------------------------------------------------------------
# GC — object reuse (§III-B3)
# ---------------------------------------------------------------------------


def gc_object_reuse(
    duration: float = 2.0, cal: Calibration = DEFAULT_CALIBRATION
) -> list[dict[str, Any]]:
    """GC driver: object reuse on vs off."""
    rows = []
    for mode, reuse in (("object reuse", True), ("no reuse", False)):
        r = run_relay(
            RelayParams(
                message_size=50,
                buffer_size=1 << 20,
                object_reuse=reuse,
                duration=duration,
                cal=cal,
            )
        )
        rows.append(
            {
                "mode": mode,
                "gc_time_pct_of_processing": r.gc_fraction_relay * 100.0,
                "throughput_msg_s": r.throughput,
            }
        )
    return rows


# ---------------------------------------------------------------------------
# FIG4 — backpressure staircase
# ---------------------------------------------------------------------------


def fig4_backpressure(
    params: BackpressureParams | None = None,
) -> list[dict[str, Any]]:
    """FIG4 driver: backpressure staircase rows."""
    result = run_backpressure(params or BackpressureParams())
    rows = []
    for sleep in (0.0, 0.001, 0.002, 0.003):
        rows.append(
            {
                "stage_c_sleep_ms": sleep * 1e3,
                "source_rate_msg_s": result.mean_rate_during(sleep),
                "expected_service_rate": (1.0 / sleep) if sleep else float("nan"),
            }
        )
    return rows


# ---------------------------------------------------------------------------
# FIG5 / FIG6 — cluster scalability
# ---------------------------------------------------------------------------


def fig5_concurrent_jobs(
    job_counts: Sequence[int] = (1, 10, 20, 30, 40, 50, 60, 75, 100, 125, 150),
    cal: Calibration = DEFAULT_CALIBRATION,
) -> list[dict[str, Any]]:
    """FIG5 driver: cumulative throughput vs job count."""
    rows = []
    for j in job_counts:
        r = run_cluster(ClusterParams(n_jobs=j, cal=cal))
        rows.append(
            {
                "jobs": j,
                "cumulative_throughput_msg_s": r.cumulative_throughput,
                "cumulative_bandwidth_gbps": r.cumulative_bandwidth_gbps,
            }
        )
    return rows


def fig6_cluster_size(
    node_counts: Sequence[int] = (5, 10, 20, 30, 40, 50),
    cal: Calibration = DEFAULT_CALIBRATION,
) -> list[dict[str, Any]]:
    """FIG6 driver: cumulative throughput vs node count."""
    rows = []
    testbed = paper_testbed()
    for n in node_counts:
        r = run_cluster(ClusterParams(n_jobs=50, nodes=testbed[:n], cal=cal))
        rows.append(
            {
                "nodes": n,
                "cumulative_throughput_msg_s": r.cumulative_throughput,
                "cumulative_bandwidth_gbps": r.cumulative_bandwidth_gbps,
            }
        )
    return rows


# ---------------------------------------------------------------------------
# FIG7 — NEPTUNE vs Storm relay
# ---------------------------------------------------------------------------


def fig7_neptune_vs_storm(
    message_sizes: Sequence[int] = FIG7_MESSAGE_SIZES,
    duration: float = 2.0,
    max_events: int = 120_000,
    cal: Calibration = DEFAULT_CALIBRATION,
) -> list[dict[str, Any]]:
    """FIG7 driver: relay contrast across message sizes."""
    rows = []
    for msg in message_sizes:
        for framework in ("neptune", "storm"):
            r = run_relay(
                RelayParams(
                    framework=framework,
                    message_size=msg,
                    duration=duration,
                    max_events=max_events,
                    cal=cal,
                )
            )
            rows.append(
                {
                    "framework": framework,
                    "message_B": msg,
                    "throughput_msg_s": r.throughput,
                    "latency_ms": r.mean_latency * 1e3,
                    "bandwidth_gbps": r.bandwidth_gbps,
                }
            )
    return rows


# ---------------------------------------------------------------------------
# FIG9 — manufacturing-monitoring cumulative throughput
# ---------------------------------------------------------------------------


def fig9_manufacturing(
    job_counts: Sequence[int] = (4, 8, 16, 24, 32, 40, 50),
    cal: Calibration = DEFAULT_CALIBRATION,
) -> list[dict[str, Any]]:
    """FIG9 driver: manufacturing app, NEPTUNE vs Storm."""
    rows = []
    for j in job_counts:
        rn = run_cluster(ClusterParams(n_jobs=j, cal=cal, **MANUFACTURING))
        rs = run_cluster(
            ClusterParams(framework="storm", n_jobs=j, cal=cal, **MANUFACTURING)
        )
        rows.append(
            {
                "jobs": j,
                "neptune_msg_s": rn.cumulative_throughput,
                "storm_msg_s": rs.cumulative_throughput,
                "speedup": rn.cumulative_throughput / rs.cumulative_throughput,
            }
        )
    return rows


# ---------------------------------------------------------------------------
# FIG10 — cluster-wide resource consumption + t-tests
# ---------------------------------------------------------------------------


def fig10_resource_usage(
    cal: Calibration = DEFAULT_CALIBRATION,
) -> dict[str, Any]:
    """FIG10 driver: per-node CPU/memory + t-tests."""
    rn = run_cluster(ClusterParams(n_jobs=50, cal=cal, **MANUFACTURING))
    rs = run_cluster(
        ClusterParams(framework="storm", n_jobs=50, seed=29, cal=cal, **MANUFACTURING)
    )
    cpu_test = t_test_ind(rs.per_node_cpu_pct, rn.per_node_cpu_pct, tail="greater")
    mem_test = t_test_ind(rs.per_node_mem_pct, rn.per_node_mem_pct, tail="two-sided")
    return {
        "neptune_cpu_pct": rn.per_node_cpu_pct,
        "storm_cpu_pct": rs.per_node_cpu_pct,
        "neptune_mem_pct": rn.per_node_mem_pct,
        "storm_mem_pct": rs.per_node_mem_pct,
        "cpu_one_tailed_p": cpu_test.p_value,
        "mem_two_tailed_p": mem_test.p_value,
        "cpu_mean_neptune": cpu_test.mean_b,
        "cpu_mean_storm": cpu_test.mean_a,
        "mem_mean_neptune": mem_test.mean_b,
        "mem_mean_storm": mem_test.mean_a,
    }


# ---------------------------------------------------------------------------
# Headline numbers (§VI)
# ---------------------------------------------------------------------------


def headline_numbers(cal: Calibration = DEFAULT_CALIBRATION) -> dict[str, Any]:
    """The conclusion's summary claims, one measurement each."""
    relay = run_relay(
        RelayParams(message_size=50, buffer_size=1 << 20, duration=2.0, cal=cal)
    )
    relay_10k = run_relay(
        RelayParams(message_size=10240, buffer_size=1 << 20, duration=2.0, cal=cal)
    )
    cluster = run_cluster(ClusterParams(n_jobs=50, cal=cal))
    mfg = run_cluster(ClusterParams(n_jobs=50, cal=cal, **MANUFACTURING))
    return {
        "single_pipeline_msg_s": relay.throughput,
        "single_pipeline_bandwidth_gbps": relay.bandwidth_gbps,
        "cluster_cumulative_msg_s": cluster.cumulative_throughput,
        "latency_p99_ms_10KB": relay_10k.latency_percentile(99) * 1e3,
        "manufacturing_cumulative_msg_s": mfg.cumulative_throughput,
    }
