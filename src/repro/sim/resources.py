"""Simulated resources: CPUs, byte queues, links, TCP connections, GC.

These are the mechanisms the paper's performance argument runs on:
context switches cost CPU (Table I), queues gate writers at watermarks
(§III-B4), Ethernet frames carry fixed overhead so small messages waste
bandwidth (§III-B1), TCP's window propagates pressure to senders, and
garbage collection steals CPU proportional to allocation volume
(§III-B3).
"""

from __future__ import annotations

from collections import deque
from typing import Any

from repro.sim.calibration import Calibration
from repro.sim.engine import Event, Simulator


class CpuScheduler:
    """N cores executing work items from simulated threads.

    ``execute(thread, seconds)`` queues one burst of CPU work; the
    returned event fires when it completes.  When a core picks up work
    from a different thread than it last ran, a context switch is
    charged and counted — this is the Table-I quantity.

    A simulated thread must have at most one outstanding work item
    (model processes submit sequentially), which preserves per-thread
    program order.
    """

    def __init__(self, sim: Simulator, cores: int, cal: Calibration) -> None:
        if cores <= 0:
            raise ValueError(f"cores must be positive: {cores}")
        self.sim = sim
        self.cores = cores
        self.cal = cal
        self._queue: deque[tuple[Any, float, Event]] = deque()
        self._idle_cores: list[int] = list(range(cores))
        self._core_last_thread: dict[int, Any] = {}
        self._core_wakeup: dict[int, Event | None] = {}
        self.context_switches = 0
        self.busy_seconds = 0.0
        self.per_thread_seconds: dict[Any, float] = {}
        for core in range(cores):
            sim.process(self._core_loop(core), name=f"core-{core}")

    def execute(self, thread: Any, seconds: float, extra_switches: int = 0) -> Event:
        """Queue ``seconds`` of CPU work attributed to ``thread``.

        ``extra_switches`` charges additional context switches that the
        thread-interleave model cannot see (e.g. per-message dispatch
        preemptions when batched scheduling is disabled): their cost is
        folded into the work item and they are counted.
        """
        if seconds < 0:
            raise ValueError(f"negative work: {seconds}")
        if extra_switches:
            seconds += extra_switches * self.cal.context_switch
            self.context_switches += extra_switches
        done = self.sim.event()
        self._queue.append((thread, seconds, done))
        self._wake_one_core()
        return done

    def _wake_one_core(self) -> None:
        for core, ev in list(self._core_wakeup.items()):
            if ev is not None and not ev.triggered:
                self._core_wakeup[core] = None
                ev.succeed()
                return

    def _core_loop(self, core: int):
        slept = False
        while True:
            if not self._queue:
                idle_since = self.sim.now
                wakeup = self.sim.event()
                self._core_wakeup[core] = wakeup
                yield wakeup
                # Same-timestamp resubmission is a continuous run; only
                # a wait that let simulated time pass is a real sleep
                # (futex sleep/wake = kernel context switches).
                slept = self.sim.now > idle_since
                continue
            thread, seconds, done = self._queue.popleft()
            cost = seconds
            if slept or self._core_last_thread.get(core) is not thread:
                cost += self.cal.context_switch
                self.context_switches += 1
                self._core_last_thread[core] = thread
            slept = False
            if cost > 0:
                yield cost
            self.busy_seconds += cost
            self.per_thread_seconds[thread] = (
                self.per_thread_seconds.get(thread, 0.0) + cost
            )
            done.succeed()

    def utilization(self) -> float:
        """Fraction of total core-time spent busy so far."""
        elapsed = self.sim.now * self.cores
        return self.busy_seconds / elapsed if elapsed > 0 else 0.0


class ByteQueue:
    """Byte-capacity FIFO with high/low watermark write gating.

    The simulated twin of :class:`repro.net.flowcontrol.WatermarkChannel`:
    ``put`` events don't fire while the gate is closed, which suspends
    the producing process — backpressure.
    """

    def __init__(
        self,
        sim: Simulator,
        high_watermark: int,
        low_watermark: int | None = None,
        name: str = "",
    ) -> None:
        if high_watermark <= 0:
            raise ValueError(f"high_watermark must be positive: {high_watermark}")
        if low_watermark is None:
            low_watermark = high_watermark // 2
        if not 0 <= low_watermark < high_watermark:
            raise ValueError("low_watermark must be in [0, high_watermark)")
        self.sim = sim
        self.name = name
        self.high_watermark = high_watermark
        self.low_watermark = low_watermark
        self._items: deque[tuple[int, Any]] = deque()
        self._bytes = 0
        self._gated = False
        self._put_waiters: deque[tuple[int, Any, Event]] = deque()
        self._get_waiters: deque[Event] = deque()
        self.writer_blocks = 0
        self.gate_trips = 0
        self.peak_bytes = 0
        self.total_put = 0

    @property
    def bytes(self) -> int:
        """Bytes currently queued."""
        return self._bytes

    @property
    def gated(self) -> bool:
        """Whether writers are currently blocked."""
        return self._gated

    def __len__(self) -> int:
        return len(self._items)

    def put(self, nbytes: int, item: Any) -> Event:
        """Event that fires when the item has been accepted."""
        ev = self.sim.event()
        if self._gated:
            self.writer_blocks += 1
            self._put_waiters.append((nbytes, item, ev))
        else:
            self._accept(nbytes, item)
            ev.succeed()
        return ev

    def _accept(self, nbytes: int, item: Any) -> None:
        self._items.append((nbytes, item))
        self._bytes += nbytes
        self.total_put += 1
        self.peak_bytes = max(self.peak_bytes, self._bytes)
        if self._bytes >= self.high_watermark and not self._gated:
            self._gated = True
            self.gate_trips += 1
        if self._get_waiters:
            self._get_waiters.popleft().succeed()

    def get_all(self) -> Event:
        """Event yielding the whole queue contents (≥1 item) as a list
        of ``(nbytes, item)`` — the batched-drain the worker tier uses."""
        ev = self.sim.event()
        if self._items:
            ev.succeed(self._take_all())
        else:
            self._get_waiters.append(_GetAllWaiter(self, ev))  # type: ignore[arg-type]
        return ev

    def _take_all(self) -> list[tuple[int, Any]]:
        items = list(self._items)
        self._items.clear()
        self._release(self._bytes)
        return items

    def _release(self, freed: int) -> None:
        self._bytes -= freed
        if self._gated and self._bytes <= self.low_watermark:
            self._gated = False
            while self._put_waiters and not self._gated:
                nbytes, item, ev = self._put_waiters.popleft()
                self._accept(nbytes, item)
                ev.succeed()


class _GetAllWaiter:
    """Adapter so a queued get_all waiter drains everything on wake."""

    __slots__ = ("queue", "event")

    def __init__(self, queue: ByteQueue, event: Event) -> None:
        self.queue = queue
        self.event = event

    def succeed(self) -> None:
        """Trigger the event, waking all waiters."""
        self.event.succeed(self.queue._take_all())

    @property
    def triggered(self) -> bool:  # pragma: no cover — interface parity
        """Whether the underlying event already fired."""
        return self.event.triggered


class Link:
    """A point-to-point 1 Gbps link with FIFO serialization.

    ``transfer(payload)`` returns an event firing when the last bit
    arrives (queueing + wire clocking of the framed bytes +
    propagation).  Utilization counts framed (wire) bytes — the
    paper's "bandwidth usage" metric.
    """

    def __init__(self, sim: Simulator, cal: Calibration, name: str = "") -> None:
        self.sim = sim
        self.cal = cal
        self.name = name
        self._free_at = 0.0
        self._busy_accum = 0.0
        self.wire_bytes_sent = 0
        self.payload_bytes_sent = 0
        self.transfers = 0

    def transfer(self, payload: int, wire_bytes: int | None = None) -> Event:
        """Clock ``payload`` bytes onto the link.

        ``wire_bytes`` overrides the framed size for senders whose
        application payload is split into many small segments (e.g. the
        Storm model's per-tuple sends aggregated into one event).
        """
        wire = wire_bytes if wire_bytes is not None else self.cal.wire_bytes(payload)
        clocking = wire * 8.0 / self.cal.link_rate_bps
        start = max(self.sim.now, self._free_at)
        self._free_at = start + clocking
        self._busy_accum += clocking
        self.wire_bytes_sent += wire
        self.payload_bytes_sent += payload
        self.transfers += 1
        done = self.sim.event()
        arrival = self._free_at + self.cal.propagation - self.sim.now
        self.sim._schedule(arrival, done, None)
        return done

    def utilization(self) -> float:
        """Fraction of link capacity used so far.

        Accounts only busy time that fits inside the elapsed window, so
        transfers accepted but still clocking out at the end of a run
        cannot push utilization past 1.0.
        """
        if self.sim.now <= 0:
            return 0.0
        return min(self._busy_accum, self.sim.now) / self.sim.now

    def goodput_bps(self) -> float:
        """Application payload bits per second carried so far."""
        if self.sim.now <= 0:
            return 0.0
        return self.payload_bytes_sent * 8.0 / self.sim.now


class TcpConnection:
    """Sliding-window flow control over a :class:`Link`.

    ``send(nbytes, item)`` completes once the bytes fit in the window
    (sender's ``sendall`` returning).  Delivered segments are put into
    the receiver's :class:`ByteQueue`; while that queue is gated the
    delivery blocks, in-flight bytes stay charged against the window,
    and the sender stalls — the paper's backpressure mechanism
    (§III-B4), end to end.
    """

    def __init__(
        self,
        sim: Simulator,
        link: Link,
        recv_queue: ByteQueue,
        cal: Calibration,
        window: int | None = None,
    ) -> None:
        self.sim = sim
        self.link = link
        self.recv_queue = recv_queue
        self.cal = cal
        self.window = window if window is not None else cal.tcp_window
        if self.window <= 0:
            raise ValueError(f"window must be positive: {self.window}")
        self._in_flight = 0
        self._send_waiters: deque[tuple[int, Any, Event]] = deque()
        self.sender_stalls = 0
        self.segments_sent = 0

    @property
    def in_flight(self) -> int:
        """Bytes sent but not yet credited back by the receiver."""
        return self._in_flight

    def send(self, nbytes: int, item: Any, wire_bytes: int | None = None) -> Event:
        """Event firing when the payload is accepted into the window."""
        ev = self.sim.event()
        if self._in_flight + nbytes > self.window and self._in_flight > 0:
            self.sender_stalls += 1
            self._send_waiters.append((nbytes, item, wire_bytes, ev))
        else:
            self._transmit(nbytes, item, wire_bytes)
            ev.succeed()
        return ev

    def _transmit(self, nbytes: int, item: Any, wire_bytes: int | None = None) -> None:
        self._in_flight += nbytes
        self.segments_sent += 1
        self.sim.process(self._deliver(nbytes, item, wire_bytes), name="tcp-deliver")

    def _deliver(self, nbytes: int, item: Any, wire_bytes: int | None = None):
        yield self.link.transfer(nbytes, wire_bytes)
        # Entering the receive queue blocks while the app-side gate is
        # closed (kernel receive buffer full → zero window).
        yield self.recv_queue.put(nbytes, item)
        # ACK/window update returns to the sender one propagation later.
        yield self.cal.propagation
        self._credit(nbytes)

    def _credit(self, nbytes: int) -> None:
        self._in_flight -= nbytes
        while self._send_waiters:
            n, item, wire, ev = self._send_waiters[0]
            if self._in_flight + n > self.window and self._in_flight > 0:
                return
            self._send_waiters.popleft()
            self._transmit(n, item, wire)
            ev.succeed()


class GcModel:
    """Allocation-driven garbage-collection cost model (§III-B3).

    Operators report garbage bytes as they allocate; the model converts
    them to GC CPU seconds at ``gc_bytes_per_second``, inflated when
    live heap occupancy (e.g. Storm's unbounded queues) is high —
    "long and inefficient garbage collection cycles" (§III-B4).
    """

    def __init__(self, cal: Calibration) -> None:
        self.cal = cal
        self.garbage_bytes = 0
        self.live_bytes = 0
        self.gc_seconds_accrued = 0.0

    def allocate(self, garbage: int) -> None:
        """Report garbage bytes produced since the last drain."""
        self.garbage_bytes += garbage

    def set_live(self, live_bytes: int) -> None:
        """Update the live-heap estimate (queue contents)."""
        self.live_bytes = live_bytes

    def drain_gc_cost(self) -> float:
        """CPU seconds of GC owed for garbage since the last drain."""
        base = self.garbage_bytes / self.cal.gc_bytes_per_second
        occupancy = min(self.live_bytes / self.cal.heap_bytes, 0.95)
        # Cost grows as the live set crowds the heap (less headroom per
        # young-gen cycle, promotion pressure).
        factor = 1.0 / (1.0 - occupancy)
        cost = base * factor
        self.garbage_bytes = 0
        self.gc_seconds_accrued += cost
        return cost
