"""Cost-model constants for the cluster simulator.

Every constant is a *mechanism cost* the paper's argument depends on.
Values are calibrated to commodity 2012-era Xeon servers (HP DL160,
E5620) on Linux with a 1 Gbps LAN — the paper's testbed — drawn from
the paper's own measurements where available (e.g. context-switch
counts in Table I, the 0.937 Gbps bandwidth ceiling) and from standard
micro-architecture folklore otherwise.  The ablation benchmark
(`benchmarks/bench_ablation_calibration.py`) sweeps the key constants
to show which conclusions are sensitive to them (none of the *shapes*
are; only absolute numbers move).
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class Calibration:
    """Simulator cost constants (all times in seconds, sizes in bytes)."""

    # -- CPU ------------------------------------------------------------------
    #: Cores per node (paper nodes expose 8 virtual cores).
    cores_per_node: int = 8
    #: Direct + indirect cost of one thread context switch (cache/TLB
    #: refill included).  ~3-7 µs on the testbed's era of hardware.
    context_switch: float = 5e-6
    #: Kernel crossing for one socket send/recv call.
    syscall: float = 1.5e-6
    #: Full cost of pushing one application send through the network
    #: stack (syscall + TCP/IP traversal + driver doorbell + the
    #: sender-side share of netty pipeline work).  Charged per flush in
    #: NEPTUNE (one send per buffer) and per tuple in the Storm model —
    #: this asymmetry is §III-B1's "reduced number of traversals of the
    #: networking stack".
    send_call_cpu: float = 30e-6
    #: Receive-side counterpart per kernel→application delivery unit.
    recv_call_cpu: float = 8e-6
    #: User CPU to handle one small stream packet (deserialize, field
    #: access, domain logic of a cheap operator).
    per_message_cpu: float = 0.35e-6
    #: Additional CPU per payload byte (serialization/copy).
    per_byte_cpu: float = 0.35e-9
    #: Queue handoff between two threads in the same process (lock +
    #: wakeup), excluding the context switch itself.
    thread_handoff: float = 0.7e-6
    #: Instruction-cache warm-up amortized away by batched execution:
    #: extra per-message CPU when each message is scheduled alone.
    cold_schedule_penalty: float = 0.6e-6
    #: Probability that one individually-scheduled message dispatch
    #: incurs a real (non-voluntary) context switch because another
    #: runnable thread interleaves.  Calibrated so the relay's
    #: batched-vs-individual contrast lands in Table I's regime
    #: (~4.1e3 vs ~9.0e4 switches per 5 s, a ~22x ratio).
    individual_dispatch_switch_prob: float = 0.017
    #: Housekeeping wake-ups per second per process (flush-timer poll,
    #: JVM/runtime daemons) — the context-switch noise floor an idle
    #: managed runtime shows.
    housekeeping_hz: float = 500.0
    #: CPU per housekeeping wake-up.
    housekeeping_cpu: float = 1e-6
    #: Extra thread handoffs a message crosses inside a Storm worker
    #: beyond NEPTUNE's two-tier path ("every message to go through
    #: four different threads", §IV-C vs NEPTUNE's 2).
    storm_extra_handoffs: int = 2
    #: Storm executor/transfer internal batch (tuples moved per
    #: disruptor publish); Storm 0.9.5 still *sends* per tuple.
    storm_internal_batch: int = 1
    #: Per-tuple send-path CPU inside a Storm worker (serialization,
    #: disruptor publish, netty enqueue) — cheaper than a full NEPTUNE
    #: flush because netty coalesces writes, but paid per tuple.
    storm_tuple_send_cpu: float = 7e-6
    #: Wire bytes of tuple framing Storm adds per tuple (stream id,
    #: task ids, serialization envelope).
    storm_tuple_overhead_bytes: int = 60
    #: Cores one Storm worker burns regardless of load: Storm 0.9.x's
    #: disruptor consumers and spout nextTuple loops busy-spin.  This
    #: is the paper's Fig. 10 observation that Storm's cluster-wide CPU
    #: stays high ("due to its threading model") even though its
    #: throughput is lower.
    storm_idle_spin_cores_per_worker: float = 1.2

    # -- memory / GC -------------------------------------------------------------
    #: Bytes of short-lived garbage created per message *without*
    #: object reuse (packet object + serde scratch + boxing).
    garbage_per_message_no_reuse: int = 160
    #: With object reuse: only transient envelope bytes remain.
    garbage_per_message_reuse: int = 12
    #: GC throughput of the collector (bytes of garbage retired per
    #: second of GC CPU time); young-gen collections on a 1 GB heap.
    gc_bytes_per_second: float = 4.0e9
    #: Heap size (Storm workers and Granules resources both use 1 GB).
    heap_bytes: int = 1 << 30

    # -- network -------------------------------------------------------------------
    #: Link rate, bits/second (1 Gbps LAN).
    link_rate_bps: float = 1e9
    #: One-way propagation + switching delay between two nodes.
    propagation: float = 100e-6
    #: Ethernet L1/L2 overhead per frame: preamble 8 + header 14 +
    #: FCS 4 + interframe gap 12.
    ethernet_overhead: int = 38
    #: IPv4 (20) + TCP (20) headers per segment.
    ip_tcp_overhead: int = 40
    #: MSS: MTU 1500 minus IP+TCP headers.
    mss: int = 1460
    #: Default TCP receive window / kernel receive buffer.
    tcp_window: int = 128 * 1024

    # -- helpers -------------------------------------------------------------------
    def wire_bytes(self, payload: int) -> int:
        """Bytes on the wire for ``payload`` bytes of TCP stream data."""
        if payload <= 0:
            return 0
        frames = -(-payload // self.mss)  # ceil
        return payload + frames * (self.ip_tcp_overhead + self.ethernet_overhead)

    def transfer_seconds(self, payload: int) -> float:
        """Serialization (wire clocking) time for ``payload`` bytes."""
        return self.wire_bytes(payload) * 8.0 / self.link_rate_bps

    def goodput_efficiency(self, message_size: int, batch: int) -> float:
        """Fraction of link bits that are application payload when
        ``batch`` messages of ``message_size`` share TCP segments."""
        payload = message_size * batch
        return payload / self.wire_bytes(payload) if payload else 0.0

    def message_cpu(self, size: int, batched: bool) -> float:
        """User CPU to process one message of ``size`` bytes."""
        cost = self.per_message_cpu + size * self.per_byte_cpu
        if not batched:
            cost += self.cold_schedule_penalty
        return cost

    def with_overrides(self, **kw) -> "Calibration":
        """A copy with selected constants replaced (ablation studies)."""
        return replace(self, **kw)


DEFAULT_CALIBRATION = Calibration()
