"""The Fig. 3/4 backpressure experiment on the simulated cluster.

"The thread of execution for the stream processor at stage C sleeps for
some time after processing a stream packet.  The sleep interval varies
between 0 ms and 3 ms in a cycle that proceeds in steps of 1 ms ...
The backpressure should be propagated to stream source at stage A
through the stream processor at stage B.  The throughput at the stream
source is inversely proportional to the sleep interval at stage C."

Topology: A (source) → B (relay) → C (sink), each stage on its own
node, NEPTUNE configuration.  Stage C applies a time-varying per-packet
sleep; the probe records stage A's emission rate per window.  Pressure
propagates through two genuine mechanism chains: C's inbound watermark
gate → C's kernel buffer → B→C TCP window → B's outbound buffer → B's
worker → B's inbound gate → A→B TCP window → A's flush path.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.calibration import Calibration, DEFAULT_CALIBRATION
from repro.sim.engine import Simulator
from repro.sim.resources import ByteQueue, CpuScheduler, Link, TcpConnection


@dataclass
class BackpressureParams:
    """Configuration for the staircase experiment."""

    message_size: int = 100
    buffer_size: int = 16 * 1024
    #: Source arrival rate (msgs/s); None = as fast as possible.  The
    #: staircase only needs a steady external arrival rate to throttle,
    #: and a capped source keeps the event count tractable.
    source_rate: float | None = 50_000.0
    #: (start_time, per-packet sleep) steps; the paper cycles
    #: 0 → 1 → 2 → 3 → 0 ms in 1 ms steps.
    sleep_schedule: tuple[tuple[float, float], ...] = (
        (0.0, 0.000),
        (5.0, 0.001),
        (10.0, 0.002),
        (15.0, 0.003),
        (20.0, 0.000),
    )
    duration: float = 25.0
    probe_interval: float = 1.0
    inbound_high_watermark: int = 64 * 1024
    tcp_window: int = 32 * 1024
    max_events: int = 500_000
    cal: Calibration = field(default_factory=lambda: DEFAULT_CALIBRATION)


@dataclass
class BackpressureResult:
    """Per-window source throughput plus the sleep in force."""

    times: list[float] = field(default_factory=list)
    source_rate: list[float] = field(default_factory=list)
    sink_rate: list[float] = field(default_factory=list)
    sleep_in_force: list[float] = field(default_factory=list)
    source_blocks: int = 0
    gate_trips_b: int = 0
    gate_trips_c: int = 0

    def mean_rate_during(self, sleep: float, tol: float = 1e-9) -> float:
        """Mean source rate over the windows where ``sleep`` applied.

        Skips the first window after each step change (transient).
        """
        rates = [
            r
            for i, (r, s) in enumerate(zip(self.source_rate, self.sleep_in_force))
            if abs(s - sleep) < tol
            and i >= 2
            and abs(self.sleep_in_force[i - 1] - s) < tol
            and abs(self.sleep_in_force[i - 2] - s) < tol
        ]
        return sum(rates) / len(rates) if rates else 0.0


class BackpressureSimulation:
    """Three nodes, three stages, a sleep staircase at stage C."""

    def __init__(self, params: BackpressureParams) -> None:
        self.p = params
        self.cal = params.cal
        self.sim = Simulator()
        cores = self.cal.cores_per_node
        self.cpu = {n: CpuScheduler(self.sim, cores, self.cal) for n in "ABC"}
        self.link_ab = Link(self.sim, self.cal, "A->B")
        self.link_bc = Link(self.sim, self.cal, "B->C")
        w = params.tcp_window
        hi = params.inbound_high_watermark
        self.kernel_b = ByteQueue(self.sim, w, w // 2, "kernel-B")
        self.kernel_c = ByteQueue(self.sim, w, w // 2, "kernel-C")
        self.app_b = ByteQueue(self.sim, hi, hi // 2, "app-B")
        self.app_c = ByteQueue(self.sim, hi, hi // 2, "app-C")
        self.tcp_ab = TcpConnection(self.sim, self.link_ab, self.kernel_b, self.cal, w)
        self.tcp_bc = TcpConnection(self.sim, self.link_bc, self.kernel_c, self.cal, w)
        out_cap = max(params.buffer_size * 2, 64 * 1024)
        self.out_a = ByteQueue(self.sim, out_cap, out_cap // 2, "out-A")
        self.out_b = ByteQueue(self.sim, out_cap, out_cap // 2, "out-B")
        self.generated = 0
        self.consumed = 0
        self._sleep_now = params.sleep_schedule[0][1]
        self._stopped = False

    def _source(self):
        cal, p = self.cal, self.p
        n = max(1, p.buffer_size // p.message_size)
        gen = (cal.per_message_cpu + p.message_size * cal.per_byte_cpu) * n
        while not self._stopped:
            yield self.cpu["A"].execute("A.src", gen)
            if p.source_rate is not None:
                pace = n / p.source_rate - gen
                if pace > 0:
                    yield pace
            self.generated += n
            yield self.out_a.put(n * p.message_size, n)

    def _io_sender(self, node, out_q, tcp, payload_of):
        cal = self.cal
        while True:
            items = yield out_q.get_all()
            for nbytes, count in items:
                yield self.cpu[node].execute(
                    f"{node}.io", cal.send_call_cpu + cal.thread_handoff
                )
                yield tcp.send(nbytes, count)

    def _io_receiver(self, node, kernel, app):
        cal = self.cal
        while True:
            items = yield kernel.get_all()
            nbytes = sum(b for b, _ in items)
            yield self.cpu[node].execute(
                f"{node}.io-recv", cal.recv_call_cpu * len(items) + nbytes * cal.per_byte_cpu
            )
            for b, count in items:
                yield app.put(b, count)

    def _relay(self):
        cal, p = self.cal, self.p
        per_msg = cal.per_message_cpu + p.message_size * cal.per_byte_cpu
        while True:
            items = yield self.app_b.get_all()
            for nbytes, count in items:
                yield self.cpu["B"].execute("B.worker", per_msg * count)
                yield self.out_b.put(nbytes, count)

    def _sink(self):
        cal, p = self.cal, self.p
        per_msg = cal.per_message_cpu + p.message_size * cal.per_byte_cpu
        while True:
            items = yield self.app_c.get_all()
            for nbytes, count in items:
                yield self.cpu["C"].execute("C.worker", per_msg * count)
                if self._sleep_now > 0:
                    # The paper's sleep-after-each-message: the worker
                    # thread is parked, not burning CPU.
                    yield self._sleep_now * count
                self.consumed += count

    def _staircase(self):
        for when, sleep in self.p.sleep_schedule:
            delta = when - self.sim.now
            if delta > 0:
                yield delta
            self._sleep_now = sleep

    def _probe(self, result: BackpressureResult):
        last_gen = last_con = 0
        while True:
            yield self.p.probe_interval
            result.times.append(self.sim.now)
            result.source_rate.append((self.generated - last_gen) / self.p.probe_interval)
            result.sink_rate.append((self.consumed - last_con) / self.p.probe_interval)
            result.sleep_in_force.append(self._sleep_now)
            last_gen, last_con = self.generated, self.consumed

    def run(self) -> BackpressureResult:
        """Build and run the simulation; returns the result object."""
        result = BackpressureResult()
        sim, p = self.sim, self.p
        sim.process(self._source(), name="src")
        sim.process(self._io_sender("A", self.out_a, self.tcp_ab, None), name="ioA")
        sim.process(self._io_receiver("B", self.kernel_b, self.app_b), name="iorB")
        sim.process(self._relay(), name="relay")
        sim.process(self._io_sender("B", self.out_b, self.tcp_bc, None), name="ioB")
        sim.process(self._io_receiver("C", self.kernel_c, self.app_c), name="iorC")
        sim.process(self._sink(), name="sink")
        sim.process(self._staircase(), name="staircase")
        sim.process(self._probe(result), name="probe")
        sim.call_at(p.duration, lambda: setattr(self, "_stopped", True))
        sim.run(until=p.duration, max_events=p.max_events)
        result.source_blocks = self.out_a.writer_blocks + self.tcp_ab.sender_stalls
        result.gate_trips_b = self.app_b.gate_trips + self.kernel_b.gate_trips
        result.gate_trips_c = self.app_c.gate_trips + self.kernel_c.gate_trips
        return result


def run_backpressure(params: BackpressureParams | None = None) -> BackpressureResult:
    """Build and run one staircase simulation."""
    return BackpressureSimulation(params or BackpressureParams()).run()
