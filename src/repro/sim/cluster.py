"""Cluster-scale model: 50 nodes, many concurrent jobs (Figs. 5, 6, 9, 10).

Simulating 50 nodes × 100 M messages/s event-by-event is intractable in
Python, so this module uses a *resource-contention model* grounded in
the same :class:`~repro.sim.calibration.Calibration` constants the
relay DES uses, cross-checked against that DES at single-pipeline scale
(DESIGN.md §2 records the substitution).

Two deployment shapes match the paper's two experiment families:

- ``all-pairs`` (Figs. 5, 6): "a two stage stream processing graph ...
  helped us create a setup where there is data flow between every pair
  of nodes" — every job places one source and one sink instance on
  *every* node.  Each job is bounded by its own pipeline peak; the
  cluster is bounded per node by NIC (each direction) and by CPU whose
  effective capacity shrinks as thread oversubscription grows — the
  mechanism behind Fig. 5's decline past 50 jobs.
- ``pipeline`` (Figs. 9, 10): each job is a linear pipeline whose
  stages are placed on consecutive nodes round-robin; per-job rates
  come from monotone water-filling over per-node CPU and directional
  NIC constraints.  Storm additionally obeys its one-worker-per-job
  scheduling constraint (at most ``n_nodes`` jobs).

Node heterogeneity matches the testbed: 46 HP DL160 (8 vcores, 12 GB)
and 4 HP DL320e (4 vcores, 8 GB).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.sim.calibration import Calibration, DEFAULT_CALIBRATION


@dataclass(frozen=True)
class NodeSpec:
    """One physical machine."""

    cores: int
    ram_gb: float


def paper_testbed() -> list[NodeSpec]:
    """The paper's 50-node cluster (46 DL160 + 4 DL320e)."""
    return [NodeSpec(8, 12.0)] * 46 + [NodeSpec(4, 8.0)] * 4


@dataclass
class JobProfile:
    """Cost profile of one stream-processing job on one framework."""

    framework: str
    message_size: int
    stages: int
    cpu_per_message: float  # CPU seconds per message, whole pipeline
    wire_bytes_per_message: float  # wire bytes per message, all hops
    threads_per_instance: int
    heap_per_worker_gb: float
    #: Peak rate of one pipeline with idle resources (msgs/s).
    peak_rate: float
    #: Cores burnt per worker regardless of load (Storm's busy-spin
    #: disruptor/spout loops; ~0 for NEPTUNE's parked threads).
    idle_spin_cores: float


def job_profile(
    framework: str,
    message_size: int,
    stages: int,
    cal: Calibration = DEFAULT_CALIBRATION,
    app_cpu_per_message: float = 0.0,
) -> JobProfile:
    """Derive a job's cost profile from the calibration constants.

    ``app_cpu_per_message`` adds domain-logic CPU per message per stage
    (e.g. the manufacturing job's parsing + window updates) on top of
    the framework's envelope costs.
    """
    hops = stages - 1
    per_msg_user = (
        cal.per_message_cpu + message_size * cal.per_byte_cpu + app_cpu_per_message
    )
    if framework == "neptune":
        msgs_per_flush = max(1, (1 << 20) // message_size)
        send = (cal.send_call_cpu + cal.thread_handoff) / msgs_per_flush
        recv = cal.recv_call_cpu / msgs_per_flush + message_size * cal.per_byte_cpu
        cpu = stages * per_msg_user + hops * (send + recv)
        wire = hops * message_size / cal.goodput_efficiency(message_size, msgs_per_flush)
        threads = 2
        peak = 1.0 / (per_msg_user + send + recv)
        spin = 0.0
    elif framework == "storm":
        send = cal.storm_tuple_send_cpu + cal.thread_handoff * (
            2 + cal.storm_extra_handoffs
        )
        recv = cal.recv_call_cpu + message_size * cal.per_byte_cpu
        per_stage = per_msg_user + cal.thread_handoff * cal.storm_extra_handoffs
        cpu = stages * per_stage + hops * (send + recv)
        wire = hops * cal.wire_bytes(message_size + cal.storm_tuple_overhead_bytes)
        threads = 4
        peak = 1.0 / (per_stage + send + recv)
        spin = cal.storm_idle_spin_cores_per_worker
    else:
        raise ValueError(f"unknown framework {framework!r}")
    # Worker heap: both systems run 1 GB heaps (§IV-A); Storm workers
    # carry slightly more resident overhead (netty arenas, supervisor).
    heap = 1.0 if framework == "neptune" else 1.04
    return JobProfile(
        framework, message_size, stages, cpu, wire, threads, heap, peak, spin
    )


@dataclass
class ClusterParams:
    """One cluster-experiment configuration."""

    framework: str = "neptune"
    n_jobs: int = 50
    nodes: list[NodeSpec] = field(default_factory=paper_testbed)
    message_size: int = 50
    stages: int = 2
    deployment: str = "all-pairs"  # "all-pairs" | "pipeline"
    #: Domain-logic CPU per message per stage (0 for the relay-style
    #: scalability jobs; ~1.5 µs for the manufacturing job).
    app_cpu_per_message: float = 0.0
    #: Single-pipeline peak rate (msgs/s); None derives it from the
    #: cost profile.
    per_job_peak_rate: float | None = None
    #: Effective-capacity loss per runnable thread beyond the core
    #: count (context-switch + scheduler interference); drives the
    #: Fig. 5 decline when the cluster is overprovisioned.
    oversubscription_penalty: float = 0.03
    seed: int = 23
    cal: Calibration = field(default_factory=lambda: DEFAULT_CALIBRATION)

    def __post_init__(self) -> None:
        if self.n_jobs <= 0:
            raise ValueError("n_jobs must be positive")
        if not self.nodes:
            raise ValueError("cluster needs at least one node")
        if self.deployment not in ("all-pairs", "pipeline"):
            raise ValueError(f"unknown deployment {self.deployment!r}")
        if self.stages < 2:
            raise ValueError("a streaming job needs at least 2 stages")


@dataclass
class ClusterResult:
    """Cluster-wide outcome."""

    params: ClusterParams = None  # type: ignore[assignment]
    per_job_rate: list[float] = field(default_factory=list)
    per_node_cpu_pct: list[float] = field(default_factory=list)
    per_node_mem_pct: list[float] = field(default_factory=list)
    per_node_nic_util: list[float] = field(default_factory=list)
    profile: JobProfile | None = None

    @property
    def cumulative_throughput(self) -> float:
        """Sum of all per-job rates (msgs/s)."""
        return sum(self.per_job_rate)

    @property
    def cumulative_bandwidth_gbps(self) -> float:
        """Cluster-wide wire bandwidth in Gbps."""
        assert self.profile is not None
        return (
            self.cumulative_throughput * self.profile.wire_bytes_per_message * 8 / 1e9
        )


def run_cluster(params: ClusterParams) -> ClusterResult:
    """Evaluate the contention model for one configuration."""
    if params.deployment == "all-pairs":
        return _run_all_pairs(params)
    return _run_pipeline(params)


# ---------------------------------------------------------------------------
# all-pairs deployment (Figs. 5, 6)
# ---------------------------------------------------------------------------


def _run_all_pairs(p: ClusterParams) -> ClusterResult:
    profile = job_profile(
        p.framework, p.message_size, p.stages, p.cal, p.app_cpu_per_message
    )
    n_nodes = len(p.nodes)
    n_jobs = p.n_jobs if p.framework == "neptune" else min(p.n_jobs, n_nodes)
    peak = p.per_job_peak_rate if p.per_job_peak_rate is not None else profile.peak_rate

    hops = p.stages - 1
    wire_per_hop = profile.wire_bytes_per_message / hops
    # A job's whole pipeline CPU lands on each node (its source and
    # sink instances are co-resident cluster-wide).
    cpu_msg_node = profile.cpu_per_message

    # Per-node capacity in messages/s, after oversubscription losses.
    caps = []
    for node in p.nodes:
        threads = n_jobs * p.stages + 2  # one worker per instance + io
        surplus = max(0.0, threads - node.cores)
        eff = 1.0 / (1.0 + p.oversubscription_penalty * surplus)
        spin = profile.idle_spin_cores * n_jobs
        usable = max(0.25, node.cores * eff - spin)
        cpu_cap = usable / cpu_msg_node if cpu_msg_node > 0 else float("inf")
        nic_cap = p.cal.link_rate_bps / (wire_per_hop * 8)
        caps.append(min(cpu_cap, nic_cap))

    # Unconstrained, every job runs at its pipeline peak.  Partitioning
    # spreads stream load proportional to node capability (the weaker
    # DL320e nodes receive smaller partitions), so each node carries
    # total_rate * cores_share; the tightest node scales everyone down.
    rates = [peak] * n_jobs
    total_cores = sum(n.cores for n in p.nodes)
    total = sum(rates)
    scale = 1.0
    for cap, node in zip(caps, p.nodes):
        demand = total * node.cores / total_cores
        if demand > cap:
            scale = min(scale, cap / demand)
    rates = [r * scale for r in rates]

    result = ClusterResult(params=p, per_job_rate=rates, profile=profile)
    _fill_node_stats(result, p, profile, rates, node_instances=None)
    return result


# ---------------------------------------------------------------------------
# pipeline deployment (Figs. 9, 10)
# ---------------------------------------------------------------------------


def _run_pipeline(p: ClusterParams) -> ClusterResult:
    profile = job_profile(
        p.framework, p.message_size, p.stages, p.cal, p.app_cpu_per_message
    )
    n_nodes = len(p.nodes)
    n_jobs = p.n_jobs if p.framework == "neptune" else min(p.n_jobs, n_nodes)
    peak = p.per_job_peak_rate if p.per_job_peak_rate is not None else profile.peak_rate

    node_instances: list[list[tuple[int, int]]] = [[] for _ in range(n_nodes)]
    job_nodes: list[list[int]] = []
    cursor = 0
    for j in range(n_jobs):
        placed = []
        for s_idx in range(p.stages):
            node_instances[cursor % n_nodes].append((j, s_idx))
            placed.append(cursor % n_nodes)
            cursor += 1
        job_nodes.append(placed)

    eff_capacity = []
    for i, node in enumerate(p.nodes):
        threads = len(node_instances[i]) * profile.threads_per_instance
        surplus = max(0, threads - node.cores)
        overhead = 1.0 + p.oversubscription_penalty * surplus
        spin = profile.idle_spin_cores * max(1, len(node_instances[i]) // p.stages)
        eff_capacity.append(max(0.25, node.cores / overhead - spin))

    # Monotone water-filling: rates start at the pipeline peak and only
    # shrink, so the iteration converges.
    cpu_per_stage = profile.cpu_per_message / p.stages
    hops = max(p.stages - 1, 1)
    wire_per_hop = profile.wire_bytes_per_message / hops
    rates = [peak] * n_jobs
    for _round in range(200):
        changed = False
        for j in range(n_jobs):
            bound = rates[j]
            for node_idx in job_nodes[j]:
                peers = node_instances[node_idx]
                total_demand = sum(rates[k] * cpu_per_stage for k, _s in peers)
                cap = eff_capacity[node_idx]
                if total_demand > cap > 0:
                    bound = min(bound, rates[j] * cap / total_demand)
                nic_cap = p.cal.link_rate_bps
                egress = sum(
                    rates[k] * wire_per_hop * 8
                    for k, s_idx in peers
                    if s_idx < p.stages - 1
                )
                ingress = sum(
                    rates[k] * wire_per_hop * 8 for k, s_idx in peers if s_idx > 0
                )
                for demand in (egress, ingress):
                    if demand > nic_cap > 0:
                        bound = min(bound, rates[j] * nic_cap / demand)
            if bound < rates[j] - 1e-6 * max(rates[j], 1.0):
                rates[j] = bound
                changed = True
        if not changed:
            break

    result = ClusterResult(params=p, per_job_rate=rates, profile=profile)
    _fill_node_stats(result, p, profile, rates, node_instances=node_instances)
    return result


# ---------------------------------------------------------------------------
# per-node statistics (Fig. 10)
# ---------------------------------------------------------------------------


def _fill_node_stats(
    result: ClusterResult,
    p: ClusterParams,
    profile: JobProfile,
    rates: list[float],
    node_instances: list[list[tuple[int, int]]] | None,
) -> None:
    rng = random.Random(p.seed)
    n_nodes = len(p.nodes)
    hops = max(p.stages - 1, 1)
    wire_per_hop = profile.wire_bytes_per_message / hops
    for i, node in enumerate(p.nodes):
        if node_instances is None:  # all-pairs: load ∝ node capability
            total_cores = sum(n.cores for n in p.nodes)
            msg_rate = sum(rates) * node.cores / total_cores
            cpu_cores = msg_rate * profile.cpu_per_message
            workers_here = len(rates)
            egress_bps = msg_rate * wire_per_hop * 8
            heap_gb = min(profile.heap_per_worker_gb + 1.5, node.ram_gb * 0.9)
        else:
            here = node_instances[i]
            cpu_cores = sum(
                rates[k] * profile.cpu_per_message / p.stages for k, _s in here
            )
            workers_here = max(1, len(here) // p.stages)
            egress_bps = sum(
                rates[k] * wire_per_hop * 8
                for k, s_idx in here
                if s_idx < p.stages - 1
            )
            heap_gb = min(
                workers_here * profile.heap_per_worker_gb + 1.5, node.ram_gb * 0.9
            )
        cpu_cores += profile.idle_spin_cores * workers_here
        cpu_pct = min(100.0 * cpu_cores, 100.0 * node.cores)
        cpu_pct *= rng.uniform(0.93, 1.07)
        result.per_node_cpu_pct.append(cpu_pct)
        mem_pct = 100.0 * heap_gb / node.ram_gb
        mem_pct *= rng.uniform(0.90, 1.10)
        result.per_node_mem_pct.append(mem_pct)
        result.per_node_nic_util.append(min(1.0, egress_bps / p.cal.link_rate_bps))
