"""Runtime lock-order sanitizer: witness what NEPL203 only predicts.

The static lint (:mod:`repro.analysis.lintrules`) derives lock-order
edges from the AST and reports cycles as NEPL203.  Static analysis
over- and under-approximates: an edge behind a never-true branch is
*predicted but never taken*, and an edge through code the model cannot
follow (getattr dispatch, callbacks, C extensions) is *taken but never
predicted*.  This module closes the loop:

1. :class:`LockOrderSanitizer` — opt-in instrumentation.  While
   installed, ``threading.Lock``/``RLock`` construction returns an
   :class:`InstrumentedLock` that maintains a per-thread held stack and
   records every directed *held → acquired* edge, bounded, with a
   constant-time fast path when no other lock is held (the common case
   in the runtime's hot paths).  Recording can be **duty-cycled**
   (``LockOrderSanitizer(duty=0.1)``): a background toggle alternates
   recording windows with dormant stretches where an acquire costs one
   flag check, the same amortization idea as the runtime's adaptive
   trace sampling.  Lock-order edges are structural — the same nesting
   recurs thousands of times a second — so a thin periodic sample
   witnesses them while keeping the attributable overhead under the
   guardrail's 3% (see ``benchmarks/bench_sanitizer_guardrail.py``).
   Window boundaries bump an epoch that lazily invalidates per-thread
   held stacks, so a window never sees a lock pushed before it started
   and cross-window false edges are impossible.
2. :meth:`LockOrderSanitizer.witness` — the recorded edge multiset as a
   JSON-able :class:`Witness`, dumpable to a *witness file*.
3. :func:`cross_validate` — merge a witness against the static edge
   set: cycles witnessed at runtime *and* predicted are **confirmed**
   NEPL203 errors; cycles witnessed but never predicted are NEPL203
   errors flagged as lint blind spots (turn the trigger into a fixture
   under ``tests/fixtures/lint/``); statically predicted cycles never
   witnessed keep their NEPL203 finding but gain a confidence
   annotation (``static-only``).

Lock labels are derived at construction from the creating frame:
``self._lock = threading.Lock()`` inside ``TcpTransport.__init__``
labels the lock ``TcpTransport._lock`` — the same node format the
static edges use, which is what makes the merge a set comparison
instead of a heuristic match.

Nothing here is imported by the runtime; installing the sanitizer is a
test-harness/CI decision (``repro analyze --witness`` consumes the
dump).
"""

from __future__ import annotations

import json
import linecache
import os
import re
import sys
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.analysis.diagnostics import DiagnosticReport, Severity

__all__ = [
    "InstrumentedLock",
    "LockOrderSanitizer",
    "Witness",
    "calibrate",
    "calibrate_recording",
    "cross_validate",
    "witness_report",
]

#: Stop recording *new* distinct edges past this many (existing edges
#: keep counting) — bounds memory on pathological lock populations.
MAX_EDGES = 4096

_ASSIGN_TARGET = re.compile(r"(?:self|cls)\.(\w+)\s*(?::[^=]+)?=")


def _caller_label(depth: int) -> str:
    """``Class.attr`` for ``self._lock = Lock()`` creation sites, else
    ``file:line`` — matching the static NEPL203 node format."""
    frame = sys._getframe(depth)
    filename = frame.f_code.co_filename
    lineno = frame.f_lineno
    line = linecache.getline(filename, lineno)
    match = _ASSIGN_TARGET.search(line)
    owner = frame.f_locals.get("self")
    if match and owner is not None:
        return f"{type(owner).__name__}.{match.group(1)}"
    return f"{os.path.basename(filename)}:{lineno}"


class _HeldStack(threading.local):
    """Per-thread stack of currently-held instrumented lock labels.

    ``epoch`` tags which recording window the stack belongs to; a
    mismatch against the sanitizer's current epoch means the entries
    are stale leftovers from a closed window and must be discarded
    before use.
    """

    def __init__(self) -> None:
        self.stack: List[str] = []
        self.epoch = -1


class InstrumentedLock:
    """A Lock/RLock wrapper feeding the sanitizer's edge recorder.

    Supports the full lock protocol (``acquire``/``release``/context
    manager/``locked``) so it drops in anywhere the runtime stores a
    ``threading.Lock``, including as the lock underlying a
    ``threading.Condition``.
    """

    __slots__ = ("_lock", "_label", "_san", "_reentrant", "_depth")

    def __init__(
        self, san: "LockOrderSanitizer", label: str, reentrant: bool
    ) -> None:
        self._lock = (
            san._real_rlock() if reentrant else san._real_lock()
        )
        self._label = label
        self._san = san
        self._reentrant = reentrant
        #: Re-entry depth (only meaningful for RLocks; guarded by the
        #: lock itself — only the owning thread mutates it while held).
        self._depth = 0

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        got = self._lock.acquire(blocking, timeout)
        if got:
            if self._reentrant:
                # Depth is tracked unconditionally (not just in recording
                # windows), or a dormant first-acquire followed by an
                # active re-entry would record a bogus self-edge.
                if self._depth > 0:
                    self._depth += 1  # re-entry: no new edge, no new frame
                    return got
                self._depth = 1
            san = self._san
            if san._active:
                san._note_acquire(self._label)
        return got

    def release(self) -> None:
        if self._reentrant:
            if self._depth > 1:
                self._depth -= 1
                self._lock.release()
                return
            self._depth = 0
        san = self._san
        if san._active:
            san._note_release(self._label)
        self._lock.release()

    def locked(self) -> bool:
        inner = getattr(self._lock, "locked", None)
        if inner is not None:
            held: bool = inner()
            return held
        # RLock without locked() (older Pythons): probe.
        if self._lock.acquire(False):
            self._lock.release()
            return False
        return True

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc: Any) -> None:
        self.release()

    # threading.Condition probes these on the lock it wraps; delegate
    # so an instrumented RLock keeps Condition's fast paths working.
    def _is_owned(self) -> bool:
        inner = getattr(self._lock, "_is_owned", None)
        if inner is not None:
            owned: bool = inner()
            return owned
        if self._lock.acquire(False):
            self._lock.release()
            return False
        return True

    def __repr__(self) -> str:
        return f"<InstrumentedLock {self._label!r} at {id(self):#x}>"


@dataclass
class Witness:
    """One instrumented run's recorded acquisition-order facts."""

    #: (held_label, acquired_label) -> times witnessed.
    edges: Dict[Tuple[str, str], int] = field(default_factory=dict)
    #: Lock acquisitions observed while recording was active (fast path
    #: included; dormant-window acquires are not counted — they did no
    #: recording work).
    acquires: int = 0
    #: Wall-clock seconds the sanitizer was installed.
    duration: float = 0.0
    #: Distinct edges dropped after :data:`MAX_EDGES` was reached.
    dropped_edges: int = 0

    def to_json(self) -> str:
        return json.dumps(
            {
                "edges": [
                    {"held": a, "acquired": b, "count": count}
                    for (a, b), count in sorted(self.edges.items())
                ],
                "acquires": self.acquires,
                "duration": self.duration,
                "dropped_edges": self.dropped_edges,
            },
            indent=2,
        )

    @classmethod
    def from_json(cls, text: str) -> "Witness":
        raw = json.loads(text)
        return cls(
            edges={
                (str(e["held"]), str(e["acquired"])): int(e["count"])
                for e in raw.get("edges", [])
            },
            acquires=int(raw.get("acquires", 0)),
            duration=float(raw.get("duration", 0.0)),
            dropped_edges=int(raw.get("dropped_edges", 0)),
        )

    def dump(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json())
            fh.write("\n")

    @classmethod
    def load(cls, path: str) -> "Witness":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_json(fh.read())


class LockOrderSanitizer:
    """Install/uninstall the instrumented-lock factories.

    Usage::

        san = LockOrderSanitizer()
        san.install()
        try:
            run_workload()
        finally:
            san.uninstall()
        san.witness().dump("witness.json")

    Only locks *created while installed* are instrumented; pre-existing
    locks keep their raw type (instrumenting them retroactively is
    impossible without tracking every lock ever made).  Install the
    sanitizer before building the object graph under test.

    Parameters
    ----------
    duty:
        Fraction of wall time recording is active.  The default ``1.0``
        records every acquire (full fidelity — what tests want).
        ``0 < duty < 1`` starts a background toggle thread alternating
        recording windows of ``duty * window`` seconds with dormant
        stretches, bounding overhead for long soak/CI runs; dormant
        acquires cost one flag check.  ``0.0`` never records (the
        guardrail benchmark's baseline arm).
    window:
        Toggle period in seconds for ``0 < duty < 1``.
    """

    def __init__(self, duty: float = 1.0, window: float = 0.25) -> None:
        if not 0.0 <= duty <= 1.0:
            raise ValueError(f"duty must be in [0, 1]: {duty}")
        self.duty = duty
        self.window = window
        self._real_lock: Callable[[], Any] = threading.Lock
        self._real_rlock: Callable[[], Any] = threading.RLock
        self._held = _HeldStack()
        self._edges: Dict[Tuple[str, str], int] = {}
        # Guards the edge table and window epoch.  Built before
        # install() patches the factories, so it is always a raw lock
        # (recording never records itself).
        self._edge_lock = threading.Lock()
        self._dropped = 0
        self._acquires = 0
        self._installed = False
        self._installed_at = 0.0
        self._elapsed = 0.0
        #: Recording gate, checked (unlocked) on every acquire/release.
        self._active = duty >= 1.0
        #: Current recording-window epoch; bumped when a window closes
        #: so per-thread held stacks from it are lazily discarded.
        self._epoch = 0
        self._toggle_stop: Optional[Any] = None
        self._toggle_thread: Optional[threading.Thread] = None

    # -- recording (called from InstrumentedLock) ----------------------------
    def _note_acquire(self, label: str) -> None:
        held = self._held
        if held.epoch != self._epoch:
            held.stack.clear()  # stale entries from a closed window
            held.epoch = self._epoch
        stack = held.stack
        self._acquires += 1  # benign race: counter is advisory
        if stack:
            edge = (stack[-1], label)
            with self._edge_lock:
                count = self._edges.get(edge)
                if count is not None:
                    self._edges[edge] = count + 1
                elif len(self._edges) < MAX_EDGES:
                    self._edges[edge] = 1
                else:
                    self._dropped += 1
        stack.append(label)

    def _note_release(self, label: str) -> None:
        held = self._held
        if held.epoch != self._epoch:
            return  # stack predates this window: nothing of ours on it
        stack = held.stack
        # Out-of-order release (lock handed across threads, or release
        # without acquire): drop the deepest matching entry.
        if stack and stack[-1] == label:
            stack.pop()
        elif label in stack:
            stack.reverse()
            stack.remove(label)
            stack.reverse()

    # -- duty cycling --------------------------------------------------------
    def _toggle_loop(self, stop: Any) -> None:
        active_s = self.duty * self.window
        dormant_s = (1.0 - self.duty) * self.window
        while True:
            self._active = True
            if stop.wait(active_s):
                break
            self._active = False
            with self._edge_lock:
                # Close the window: invalidate held stacks.  Taking the
                # edge lock serializes the bump with in-flight edge
                # insertions from the window being closed.
                self._epoch += 1
            if stop.wait(dormant_s):
                break
        self._active = False
        with self._edge_lock:
            self._epoch += 1

    # -- lifecycle -----------------------------------------------------------
    def install(self) -> None:
        """Monkeypatch ``threading.Lock``/``RLock``; idempotent."""
        if self._installed:
            return
        san = self

        def make_lock() -> InstrumentedLock:
            return InstrumentedLock(san, _caller_label(2), reentrant=False)

        def make_rlock() -> InstrumentedLock:
            return InstrumentedLock(san, _caller_label(2), reentrant=True)

        if 0.0 < self.duty < 1.0:
            # Built from the *real* primitives, before the patch below,
            # so the toggle machinery never records itself.
            self._toggle_stop = threading.Event()
            self._toggle_thread = threading.Thread(
                target=self._toggle_loop,
                args=(self._toggle_stop,),
                name="neptune-lock-sanitizer-toggle",
                daemon=True,
            )
            self._toggle_thread.start()
        threading.Lock = make_lock  # type: ignore[assignment]
        threading.RLock = make_rlock  # type: ignore[assignment]
        self._installed = True
        self._installed_at = time.perf_counter()

    def uninstall(self) -> None:
        """Restore the real factories; idempotent.  Already-created
        instrumented locks keep working (and keep recording)."""
        if not self._installed:
            return
        threading.Lock = self._real_lock  # type: ignore[assignment]
        threading.RLock = self._real_rlock  # type: ignore[assignment]
        if self._toggle_stop is not None:
            self._toggle_stop.set()
            if self._toggle_thread is not None:
                self._toggle_thread.join(timeout=5.0)
            self._toggle_stop = None
            self._toggle_thread = None
        self._installed = False
        self._elapsed += time.perf_counter() - self._installed_at

    def __enter__(self) -> "LockOrderSanitizer":
        self.install()
        return self

    def __exit__(self, *exc: Any) -> None:
        self.uninstall()

    # -- results -------------------------------------------------------------
    def witness(self) -> Witness:
        elapsed = self._elapsed
        if self._installed:
            elapsed += time.perf_counter() - self._installed_at
        with self._edge_lock:
            edges = dict(self._edges)
            dropped = self._dropped
        return Witness(
            edges=edges,
            acquires=self._acquires,
            duration=elapsed,
            dropped_edges=dropped,
        )


def _timed_pairs(lock: Any, iterations: int) -> float:
    start = time.perf_counter()
    for _ in range(iterations):
        lock.acquire()
        lock.release()
    return time.perf_counter() - start


def calibrate(iterations: int = 50_000) -> float:
    """Measured per-acquire overhead (seconds) of a *recording*
    instrumented lock over a raw one, on this machine, uncontended."""
    san = LockOrderSanitizer()
    raw = threading.Lock()
    inst = InstrumentedLock(san, "calibrate._lock", reentrant=False)
    _timed_pairs(raw, iterations)  # warm both paths before measuring
    _timed_pairs(inst, iterations)
    raw_cost = min(_timed_pairs(raw, iterations) for _ in range(3))
    inst_cost = min(_timed_pairs(inst, iterations) for _ in range(3))
    return max(0.0, (inst_cost - raw_cost) / iterations)


def calibrate_recording(iterations: int = 50_000) -> float:
    """Measured per-acquire *marginal* cost (seconds) of recording —
    an active-window acquire over a dormant-window one.

    The guardrail bench multiplies this by the witnessed ``acquires``
    count (only active-window acquires are counted) to attribute the
    duty-cycled sanitizer's *causal* recording cost, instead of
    trusting noisy end-to-end wall-clock deltas.  The dormant wrapper
    indirection itself is the instrumentation fixture — the same role
    the attached-but-idle observer plays in
    ``benchmarks/bench_health_guardrail.py``'s baseline arm.
    """
    active = InstrumentedLock(
        LockOrderSanitizer(), "calibrate._lock", reentrant=False
    )
    dormant = InstrumentedLock(
        LockOrderSanitizer(duty=0.0), "calibrate._lock", reentrant=False
    )
    _timed_pairs(dormant, iterations)  # warm both paths before measuring
    _timed_pairs(active, iterations)
    dormant_cost = min(_timed_pairs(dormant, iterations) for _ in range(3))
    active_cost = min(_timed_pairs(active, iterations) for _ in range(3))
    return max(0.0, (active_cost - dormant_cost) / iterations)


# -- cycle analysis ------------------------------------------------------------


def _cycles(edge_keys: Set[Tuple[str, str]]) -> List[List[str]]:
    """Every distinct simple cycle's node list (DFS, tiny graphs)."""
    graph: Dict[str, List[str]] = {}
    for a, b in edge_keys:
        graph.setdefault(a, []).append(b)
        graph.setdefault(b, [])
    WHITE, GREY, BLACK = 0, 1, 2
    color = dict.fromkeys(graph, WHITE)
    stack: List[str] = []
    found: List[List[str]] = []
    seen: Set[frozenset[str]] = set()

    def dfs(node: str) -> None:
        color[node] = GREY
        stack.append(node)
        for nxt in sorted(graph[node]):
            if color[nxt] == GREY:
                cycle = stack[stack.index(nxt) :]
                key = frozenset(cycle)
                if key not in seen:
                    seen.add(key)
                    found.append(cycle + [nxt])
            elif color[nxt] == WHITE:
                dfs(nxt)
        stack.pop()
        color[node] = BLACK

    for node in sorted(graph):
        if color[node] == WHITE:
            dfs(node)
    return found


@dataclass
class CrossValidation:
    """The merge of witnessed facts against static prediction."""

    #: Cycles both witnessed at runtime and statically predicted.
    confirmed: List[List[str]] = field(default_factory=list)
    #: Cycles witnessed at runtime that the lint never predicted
    #: (lint blind spots — each should become a test fixture).
    witnessed_only: List[List[str]] = field(default_factory=list)
    #: Statically predicted cycles this run never witnessed
    #: (kept as findings, annotated ``static-only``).
    static_only: List[List[str]] = field(default_factory=list)
    #: Witnessed edges absent from the static edge set (cycle members
    #: or not) — the raw blind-spot surface.
    unpredicted_edges: List[Tuple[str, str]] = field(default_factory=list)


def cross_validate(
    witness: Witness,
    static_edges: Dict[Tuple[str, str], Tuple[str, str, int]],
) -> CrossValidation:
    """Compare one witness against the static NEPL203 edge set."""
    witnessed_keys = set(witness.edges)
    static_keys = set(static_edges)
    result = CrossValidation(
        unpredicted_edges=sorted(witnessed_keys - static_keys)
    )
    witnessed_cycles = {
        frozenset(c[:-1]): c for c in _cycles(witnessed_keys)
    }
    static_cycles = {frozenset(c[:-1]): c for c in _cycles(static_keys)}
    for key, cycle in sorted(witnessed_cycles.items(), key=lambda kv: kv[1]):
        if key in static_cycles:
            result.confirmed.append(cycle)
        else:
            result.witnessed_only.append(cycle)
    for key, cycle in sorted(static_cycles.items(), key=lambda kv: kv[1]):
        if key not in witnessed_cycles:
            result.static_only.append(cycle)
    return result


def witness_report(
    witness: Witness,
    static_edges: Dict[Tuple[str, str], Tuple[str, str, int]],
    subject: str = "witness",
) -> DiagnosticReport:
    """Render a cross-validation as NEPL203 diagnostics.

    Confirmed and witnessed-only cycles are errors (a witnessed cycle
    is a deadlock waiting on thread timing, whatever the lint thought);
    static-only cycles are repeated at INFO with a confidence
    annotation so a CI diff shows *why* NEPL203 persists.
    """
    report = DiagnosticReport(subject=subject)
    merged = cross_validate(witness, static_edges)
    for cycle in merged.confirmed:
        report.add(
            "NEPL203",
            Severity.ERROR,
            "lock-order cycle CONFIRMED at runtime: "
            + " -> ".join(cycle)
            + "; the static prediction was witnessed by an instrumented "
            "run",
            where="witness+static",
            hint="impose one global acquisition order; this is not a "
            "lint false positive",
        )
    for cycle in merged.witnessed_only:
        report.add(
            "NEPL203",
            Severity.ERROR,
            "lock-order cycle witnessed at runtime but NOT statically "
            "predicted: " + " -> ".join(cycle) + "; the lint has a "
            "blind spot here",
            where="witness",
            hint="fix the ordering, then add the triggering pattern as "
            "a tests/fixtures/lint/ fixture so NEPL203 learns it",
        )
    for cycle in merged.static_only:
        report.add(
            "NEPL203",
            Severity.INFO,
            "statically predicted lock-order cycle never witnessed in "
            "this run: " + " -> ".join(cycle) + " (confidence: "
            "static-only — the run may simply not have exercised the "
            "path)",
            where="static",
            hint="extend the instrumented run's coverage, or restructure "
            "the locks if the path is real",
        )
    return report
