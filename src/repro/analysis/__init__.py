"""Static analysis for NEPTUNE jobs and for the runtime itself.

Two pillars, both producing structured :class:`Diagnostic` records
instead of runtime surprises:

- :mod:`repro.analysis.graphcheck` — a multi-pass verifier for
  stream-processing graphs (API-built or JSON descriptors): structure,
  schema flow, partitioning soundness, backpressure/watermark
  consistency, and latency-budget feasibility.  Catches the class of
  misconfiguration that otherwise only surfaces mid-run on a deployed
  cluster.
- :mod:`repro.analysis.lintrules` (driven by
  :mod:`repro.analysis.threadmodel`) — an AST concurrency lint over the
  runtime's own two-tier (worker / IO) thread code: unsynchronized
  cross-thread mutation, inconsistent locking, lock-order cycles,
  state locks held across blocking calls, and callbacks invoked under
  a state lock — plus a process-model tier (NEPL210–214) covering the
  ``multiprocessing`` spawn boundary.

Two cluster-era extensions ride on the same diagnostics spine:

- :mod:`repro.analysis.plancheck` — a deployment-plan verifier
  (NEPG130–139) over graph + :class:`DeploymentPlan`/``WorkerSpec``
  sets: port and socket-path collisions, pin faults, cross-worker
  partitioning determinism, config drift, exactly-once feasibility.
  ``ClusterCoordinator.launch`` gates on it.
- :mod:`repro.analysis.sanitizer` — an opt-in runtime lock-order
  sanitizer whose witness files cross-validate the static NEPL203
  lock-order prediction.

Both are exposed through ``python -m repro.cli analyze`` and run in CI
as a gate.  The package is stdlib-only (``ast`` + the repro core) so it
can run anywhere the code parses.
"""

from repro.analysis.diagnostics import Diagnostic, DiagnosticReport, Severity
from repro.analysis.graphcheck import (
    GraphVerifier,
    verify_descriptor,
    verify_descriptor_file,
    verify_graph,
)
from repro.analysis.lint import lint_paths
from repro.analysis.plancheck import (
    PlanVerifier,
    verify_cluster,
    verify_cluster_file,
    verify_plan,
)
from repro.analysis.schemaflow import is_assignable, unsatisfied_requirements

__all__ = [
    "Diagnostic",
    "DiagnosticReport",
    "GraphVerifier",
    "PlanVerifier",
    "Severity",
    "is_assignable",
    "lint_paths",
    "unsatisfied_requirements",
    "verify_cluster",
    "verify_cluster_file",
    "verify_descriptor",
    "verify_descriptor_file",
    "verify_graph",
    "verify_plan",
]
