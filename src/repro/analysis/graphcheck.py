"""Multi-pass static verifier for stream-processing graphs.

NEPTUNE graphs come from the fluent API or a JSON descriptor and are
deployed onto a runtime whose failure modes — schema mismatches,
partitioning on absent fields, watermark misconfiguration, latency
overruns — otherwise surface only while a job is live.  This verifier
front-loads them into structured diagnostics *before* scheduling:

===========  ========  =====================================================
code         severity  meaning
===========  ========  =====================================================
NEPG101      error     malformed descriptor structure (missing/bad keys)
NEPG102      error     duplicate operator name
NEPG103      error     link references an undeclared operator
NEPG104      error     link delivers into a stream source
NEPG105      error     duplicate link (same sender, receiver, and stream)
NEPG106      error     graph has no stream source
NEPG107      error     cycle — backpressure over a pressure cycle deadlocks
NEPG108      error     operator unreachable from any source
NEPG109      error     unknown/unbuildable partitioning scheme
NEPG110      error     fields partitioning keys on a field absent upstream
NEPG111      warning   fields partitioning keyed on a float field
NEPG112      error     direct partitioning index field absent/non-integer
NEPG113      error     consumer's declared input contract unsatisfied
NEPG114      warning   fan-in schema divergence on one stream name
NEPG115      error     operator factory/schema resolution failure
NEPG116      warning   watermark hysteresis gap too narrow (oscillation)
NEPG117      error     one flush batch overruns the inbound high watermark
NEPG118      warning   fan-in flush overshoot far beyond the high watermark
NEPG119      error     latency budget infeasible for the deepest path
NEPG120      warning   partitioning scheme pointless at parallelism 1
NEPG121      warning   source has no outgoing links
NEPG122      warning   non-deterministic partitioning cannot be sharded
===========  ========  =====================================================

``StreamProcessingGraph.validate()`` delegates its structural, schema,
and partitioning checking here (the error-severity passes) and raises
:class:`~repro.util.errors.GraphValidationError` on the first error;
``repro analyze --graph`` runs every pass and renders the full report.
"""

from __future__ import annotations

import json
from typing import Any

import networkx as nx

from repro.analysis.diagnostics import DiagnosticReport, Severity
from repro.analysis.schemaflow import (
    FLOAT_TYPES,
    INTEGER_TYPES,
    describe_schema,
    unsatisfied_requirements,
)
from repro.core.config import NeptuneConfig
from repro.core.operators import StreamOperator, StreamProcessor, StreamSource
from repro.core.packet import PacketSchema
from repro.core.partitioning import (
    DirectPartitioning,
    FieldsPartitioning,
    PartitioningScheme,
)
from repro.util.errors import GraphValidationError


def _link_where(from_op: str, to_op: str, stream: str) -> str:
    return f"link {from_op!r}->{to_op!r}/{stream!r}"


class GraphVerifier:
    """Runs the verification passes over one graph.

    Parameters
    ----------
    graph:
        A (possibly not-yet-validated) ``StreamProcessingGraph``.
    """

    def __init__(self, graph: Any) -> None:
        self.graph = graph
        self.report = DiagnosticReport(subject=f"graph {graph.name!r}")
        self._probes: dict[str, StreamOperator | None] = {}

    # -- entry points --------------------------------------------------------
    def run(self, deep: bool = True) -> DiagnosticReport:
        """Run the passes; ``deep=False`` stops after the passes
        ``validate()`` gates on (structure, schemas, partitioning)."""
        structural_ok = self.check_structure()
        if structural_ok:
            # Schema resolution walks links in declaration order and
            # needs every endpoint declared; skip it on broken wiring.
            self.check_schemas()
        if deep:
            self.check_backpressure()
            self.check_latency()
        return self.report

    # -- pass 1: structure ---------------------------------------------------
    def check_structure(self) -> bool:
        """Wiring soundness.  Returns False when later passes cannot run."""
        g = self.graph
        rep = self.report
        ok = True
        if not g.operators:
            rep.add(
                "NEPG101",
                Severity.ERROR,
                "graph has no operators",
                hint="declare at least one source and wire it",
            )
            return False
        if not any(s.is_source for s in g.operators.values()):
            rep.add(
                "NEPG106",
                Severity.ERROR,
                "graph has no stream source",
                hint="every graph needs an ingestion point (add_source)",
            )
            ok = False

        dg = nx.DiGraph()
        dg.add_nodes_from(g.operators)
        seen_links: set[tuple[str, str, str]] = set()
        for lk in g.links:
            endpoints_ok = True
            for endpoint in (lk.from_op, lk.to_op):
                if endpoint not in g.operators:
                    rep.add(
                        "NEPG103",
                        Severity.ERROR,
                        f"link references undeclared operator {endpoint!r}",
                        where=_link_where(lk.from_op, lk.to_op, lk.stream),
                        hint="declare the operator before linking it, or fix the name",
                    )
                    ok = endpoints_ok = False
            if not endpoints_ok:
                continue
            if g.operators[lk.to_op].is_source:
                rep.add(
                    "NEPG104",
                    Severity.ERROR,
                    f"link {lk.from_op!r}->{lk.to_op!r}: sources cannot receive streams",
                    where=_link_where(lk.from_op, lk.to_op, lk.stream),
                    hint=f"declare {lk.to_op!r} as a processor if it consumes data",
                )
                ok = False
            key = (lk.from_op, lk.to_op, lk.stream)
            if key in seen_links:
                rep.add(
                    "NEPG105",
                    Severity.ERROR,
                    f"duplicate link {lk.from_op!r}->{lk.to_op!r} on stream "
                    f"{lk.stream!r} — packets would be delivered twice",
                    where=_link_where(lk.from_op, lk.to_op, lk.stream),
                    hint="remove the repeated link() call",
                )
                ok = False
            seen_links.add(key)
            dg.add_edge(lk.from_op, lk.to_op)

        if not ok:
            return False
        if not nx.is_directed_acyclic_graph(dg):
            cycle = nx.find_cycle(dg)
            rep.add(
                "NEPG107",
                Severity.ERROR,
                f"graph contains a cycle {cycle}; backpressure over a "
                "pressure cycle would deadlock",
                hint="break the cycle (feedback must leave the pressure domain)",
            )
            return False
        sources = [n for n, s in g.operators.items() if s.is_source]
        reachable = set(sources)
        for s in sources:
            reachable |= nx.descendants(dg, s)
        unreachable = set(g.operators) - reachable
        if unreachable:
            rep.add(
                "NEPG108",
                Severity.ERROR,
                f"operators unreachable from any source: {sorted(unreachable)}",
                hint="wire them into the graph or remove them",
            )
            return False
        for s in sources:
            if dg.out_degree(s) == 0 and len(g.operators) > 1:
                rep.add(
                    "NEPG121",
                    Severity.WARNING,
                    f"source {s!r} has no outgoing links; everything it "
                    "emits is unroutable",
                    where=f"operator {s!r}",
                    hint="link the source or drop it from the graph",
                )
        return True

    # -- pass 2: schemas + partitioning --------------------------------------
    def check_schemas(self) -> None:
        """Resolve link schemas via operator probes; check partitioning
        field soundness and consumer input contracts.

        Side effect (mirroring the legacy ``validate()``): assigns
        ``link_id`` and ``schema`` on every link it can resolve.
        """
        g = self.graph
        rep = self.report
        fan_in: dict[tuple[str, str], dict[PacketSchema, str]] = {}
        for idx, lk in enumerate(g.links):
            lk.link_id = idx
            where = _link_where(lk.from_op, lk.to_op, lk.stream)
            probe = self._probe(lk.from_op)
            if probe is None:
                continue
            try:
                schema = probe.output_schema(lk.stream)
            except KeyError:
                rep.add(
                    "NEPG115",
                    Severity.ERROR,
                    f"operator {lk.from_op!r} declares no schema for stream {lk.stream!r}",
                    where=where,
                    hint="output_schema() must cover every linked stream name",
                )
                continue
            if not isinstance(schema, PacketSchema):
                rep.add(
                    "NEPG115",
                    Severity.ERROR,
                    f"output_schema of {lk.from_op!r} for {lk.stream!r} returned "
                    f"{type(schema).__name__}",
                    where=where,
                    hint="output_schema() must return a PacketSchema",
                )
                continue
            lk.schema = schema
            scheme = self._check_partitioning(lk, schema, where)
            self._check_parallelism(lk, scheme, where)
            self._check_input_contract(lk, schema, where)
            fan_in.setdefault((lk.to_op, lk.stream), {}).setdefault(
                schema, lk.from_op
            )
        for (to_op, stream), schemas in fan_in.items():
            if len(schemas) > 1:
                detail = "; ".join(
                    f"{sender!r} sends {describe_schema(schema)}"
                    for schema, sender in schemas.items()
                )
                rep.add(
                    "NEPG114",
                    Severity.WARNING,
                    f"operator {to_op!r} receives stream {stream!r} with "
                    f"divergent schemas: {detail}",
                    where=f"operator {to_op!r}",
                    hint="align the producers or declare an input contract "
                    "covering the common fields",
                )

    def _probe(self, name: str) -> StreamOperator | None:
        """Instantiate (once) an operator for schema/contract probing."""
        if name in self._probes:
            return self._probes[name]
        spec = self.graph.operators[name]
        probe: StreamOperator | None
        try:
            built = spec.factory()
        except Exception as exc:  # noqa: BLE001 — any factory fault is a finding
            self.report.add(
                "NEPG115",
                Severity.ERROR,
                f"factory for {name!r} failed: {exc!r}",
                where=f"operator {name!r}",
                hint="the factory must build an operator with no side effects",
            )
            self._probes[name] = None
            return None
        if not isinstance(built, StreamOperator):
            self.report.add(
                "NEPG115",
                Severity.ERROR,
                f"factory for {name!r} returned {type(built).__name__}, "
                "not a StreamOperator",
                where=f"operator {name!r}",
            )
            probe = None
        else:
            expected = StreamSource if spec.is_source else StreamProcessor
            if not isinstance(built, expected):
                self.report.add(
                    "NEPG115",
                    Severity.ERROR,
                    f"operator {name!r} declared as "
                    f"{'source' if expected is StreamSource else 'processor'} "
                    f"but factory built a {type(built).__name__}",
                    where=f"operator {name!r}",
                )
                probe = None
            else:
                probe = built
        self._probes[name] = probe
        return probe

    def _check_partitioning(
        self, lk: Any, schema: PacketSchema, where: str
    ) -> PartitioningScheme | None:
        try:
            scheme = lk.resolved_partitioning()
        except GraphValidationError as exc:
            self.report.add(
                "NEPG109",
                Severity.ERROR,
                str(exc),
                where=where,
                hint="use a registered scheme name or register the custom one",
            )
            return None
        if isinstance(scheme, FieldsPartitioning):
            for fname in scheme.fields:
                try:
                    ftype = schema.type_of(fname)
                except KeyError:
                    self.report.add(
                        "NEPG110",
                        Severity.ERROR,
                        f"fields partitioning keys on {fname!r}, which the "
                        f"upstream schema {describe_schema(schema)} does not carry",
                        where=where,
                        hint="key on a field the producer actually emits",
                    )
                    continue
                if ftype in FLOAT_TYPES:
                    self.report.add(
                        "NEPG111",
                        Severity.WARNING,
                        f"fields partitioning keys on float field {fname!r}; "
                        "representation noise scatters equal readings across "
                        "instances",
                        where=where,
                        hint="key on a stable identifier (string/int) instead",
                    )
        elif isinstance(scheme, DirectPartitioning):
            try:
                ftype = schema.type_of(scheme.index_field)
            except KeyError:
                self.report.add(
                    "NEPG112",
                    Severity.ERROR,
                    f"direct partitioning reads index field "
                    f"{scheme.index_field!r}, which the upstream schema "
                    f"{describe_schema(schema)} does not carry",
                    where=where,
                )
                return scheme
            if ftype not in INTEGER_TYPES:
                self.report.add(
                    "NEPG112",
                    Severity.ERROR,
                    f"direct partitioning index field {scheme.index_field!r} "
                    f"is {ftype.value}; an instance index must be an integer",
                    where=where,
                )
        return scheme

    def _check_parallelism(
        self, lk: Any, scheme: PartitioningScheme | None, where: str
    ) -> None:
        if scheme is None:
            return
        dest = self.graph.operators[lk.to_op]
        if dest.parallelism == 1 and isinstance(
            scheme, (FieldsPartitioning, DirectPartitioning)
        ):
            self.report.add(
                "NEPG120",
                Severity.WARNING,
                f"{scheme.name} partitioning into {lk.to_op!r} with "
                "parallelism 1 routes every packet to the same instance",
                where=where,
                hint="raise the consumer's parallelism or use round-robin",
            )
        if dest.parallelism > 1 and not getattr(scheme, "deterministic", True):
            self.report.add(
                "NEPG122",
                Severity.WARNING,
                f"{scheme.name} partitioning into {lk.to_op!r} "
                f"(parallelism {dest.parallelism}) routes "
                "non-deterministically; the link cannot be sharded across "
                "worker processes because replay after a crash would "
                "re-route packets to different instances",
                where=where,
                hint="seed the scheme (e.g. shuffle with an explicit seed) "
                "or switch to round-robin/fields partitioning",
            )

    def _check_input_contract(
        self, lk: Any, schema: PacketSchema, where: str
    ) -> None:
        probe = self._probe(lk.to_op)
        if probe is None:
            return
        contract_fn = getattr(probe, "input_schema", None)
        if contract_fn is None:
            return
        try:
            required = contract_fn(lk.stream)
        except Exception:  # noqa: BLE001 — a contract probe must never abort analysis
            return
        if required is None:
            return
        problems = unsatisfied_requirements(schema, required)
        if problems:
            self.report.add(
                "NEPG113",
                Severity.ERROR,
                f"operator {lk.to_op!r} requires "
                f"{describe_schema(required)} on stream {lk.stream!r} but "
                f"{lk.from_op!r} emits {describe_schema(schema)}: "
                + "; ".join(problems),
                where=where,
                hint="emit the required fields upstream or widen the contract",
            )

    # -- pass 3: backpressure / watermark consistency ------------------------
    def check_backpressure(self) -> None:
        """Watermark and buffer-capacity consistency along every path."""
        cfg: NeptuneConfig = self.graph.config
        rep = self.report
        high = cfg.inbound_high_watermark
        low = cfg.low_watermark()
        gap = high - low
        if gap < high * 0.25:
            rep.add(
                "NEPG116",
                Severity.WARNING,
                f"watermark hysteresis gap is {gap} bytes "
                f"({gap / high:.0%} of the high mark {high}); the gate will "
                "oscillate between open and closed",
                where="config",
                hint="keep the low watermark at or below 75% of the high "
                "watermark (the paper: 'set sufficiently apart')",
            )
        if cfg.buffer_capacity > high:
            rep.add(
                "NEPG117",
                Severity.ERROR,
                f"buffer_capacity ({cfg.buffer_capacity}) exceeds the "
                f"inbound high watermark ({high}): every capacity flush "
                "trips the gate by itself, collapsing batching into "
                "stop-and-go admission",
                where="config",
                hint="keep one flush batch within the watermark band "
                "(buffer_capacity <= inbound_high_watermark)",
            )
        # Fan-in: legs that can all flush at once into one instance.
        for name, spec in self.graph.operators.items():
            if spec.is_source:
                continue
            legs = sum(
                self.graph.operators[lk.from_op].parallelism
                for lk in self.graph.incoming_links(name)
                if lk.from_op in self.graph.operators
            )
            if legs and legs * cfg.buffer_capacity > 2 * high:
                rep.add(
                    "NEPG118",
                    Severity.WARNING,
                    f"operator {name!r} has {legs} inbound link legs; "
                    f"simultaneous capacity flushes can land "
                    f"{legs * cfg.buffer_capacity} bytes against a "
                    f"{high}-byte high watermark",
                    where=f"operator {name!r}",
                    hint="shrink buffer_capacity or raise the high watermark "
                    "for wide fan-in stages",
                )

    # -- pass 4: latency-budget feasibility ----------------------------------
    def check_latency(self) -> None:
        """Flush-timer feasibility against the configured latency budget."""
        cfg: NeptuneConfig = self.graph.config
        budget = cfg.latency_budget
        if budget is None:
            return
        dg = nx.DiGraph()
        dg.add_nodes_from(self.graph.operators)
        dg.add_edges_from((lk.from_op, lk.to_op) for lk in self.graph.links)
        if not nx.is_directed_acyclic_graph(dg):
            return  # cycle already reported; path depth is meaningless
        path = nx.dag_longest_path(dg)
        hops = max(len(path) - 1, 0)
        if hops == 0:
            return
        worst = hops * cfg.buffer_max_delay
        if worst > budget:
            self.report.add(
                "NEPG119",
                Severity.ERROR,
                f"latency budget {budget * 1e3:.1f} ms is infeasible: the "
                f"deepest path {' -> '.join(path)} crosses {hops} links, "
                f"each holding packets up to buffer_max_delay="
                f"{cfg.buffer_max_delay * 1e3:.1f} ms, for a worst-case "
                f"queuing delay of {worst * 1e3:.1f} ms",
                where="config",
                hint=f"set buffer_max_delay below {budget / hops * 1e3:.2f} ms "
                "or shorten the pipeline",
            )


# -- module-level entry points ------------------------------------------------


def verify_graph(graph: Any, deep: bool = True) -> DiagnosticReport:
    """Verify an already-built ``StreamProcessingGraph``."""
    return GraphVerifier(graph).run(deep=deep)


def verify_descriptor(
    desc: Any, config: NeptuneConfig | None = None
) -> DiagnosticReport:
    """Verify a parsed JSON descriptor.

    Structural problems in the raw dict (missing keys, wrong types) are
    reported as NEPG101 without importing any operator code; a
    well-formed descriptor is then built and run through every pass.
    """
    report = DiagnosticReport(subject="descriptor")
    if not _descriptor_shape_ok(desc, report):
        return report
    report.subject = f"descriptor {desc['name']!r}"
    from repro.core.graph import StreamProcessingGraph

    try:
        graph = StreamProcessingGraph.from_descriptor(
            desc, config=config, validate_wiring=False
        )
    except GraphValidationError as exc:
        report.add(
            "NEPG101",
            Severity.ERROR,
            str(exc),
            hint="fix the descriptor; see the JSON descriptor docs",
        )
        return report
    verifier = GraphVerifier(graph)
    verifier.report = report
    verifier.run(deep=True)
    return report


def verify_descriptor_file(
    path: str, config: NeptuneConfig | None = None
) -> DiagnosticReport:
    """Verify a JSON descriptor file (parse errors become NEPG101)."""
    report = DiagnosticReport(subject=path)
    try:
        with open(path, "r", encoding="utf-8") as fh:
            desc = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        report.add(
            "NEPG101",
            Severity.ERROR,
            f"cannot read descriptor: {exc}",
            where=path,
        )
        return report
    inner = verify_descriptor(desc, config=config)
    inner.subject = path
    return inner


def _descriptor_shape_ok(desc: Any, report: DiagnosticReport) -> bool:
    """Dict-shape validation; every problem is one NEPG101 finding."""
    ok = True

    def bad(message: str, where: str = "") -> None:
        nonlocal ok
        ok = False
        report.add("NEPG101", Severity.ERROR, message, where=where)

    if not isinstance(desc, dict):
        bad(f"descriptor must be an object, got {type(desc).__name__}")
        return False
    if not isinstance(desc.get("name"), str) or not desc.get("name"):
        bad("descriptor needs a non-empty string 'name'")
    if "config" in desc and not isinstance(desc["config"], dict):
        bad("'config' must be an object of NeptuneConfig fields")
    ops = desc.get("operators")
    if not isinstance(ops, list):
        bad("descriptor needs an 'operators' list")
        return False
    seen_names: set[str] = set()
    for i, op in enumerate(ops):
        where = f"operators[{i}]"
        if not isinstance(op, dict):
            bad(f"operator entry must be an object, got {type(op).__name__}", where)
            continue
        if not isinstance(op.get("name"), str) or not op.get("name"):
            bad("operator entry needs a non-empty string 'name'", where)
        elif op["name"] in seen_names:
            ok = False
            report.add(
                "NEPG102",
                Severity.ERROR,
                f"duplicate operator name {op['name']!r}",
                where=where,
                hint="operator names must be unique within a graph",
            )
        else:
            seen_names.add(op["name"])
        if op.get("type") not in ("source", "processor"):
            bad(
                f"unknown operator type {op.get('type')!r} "
                "(expected 'source' or 'processor')",
                where,
            )
        parallelism = op.get("parallelism", 1)
        if not isinstance(parallelism, int) or isinstance(parallelism, bool):
            bad(f"parallelism must be an integer, got {parallelism!r}", where)
        elif parallelism <= 0:
            bad(f"parallelism must be positive, got {parallelism}", where)
    links = desc.get("links", [])
    if not isinstance(links, list):
        bad("'links' must be a list")
        return ok
    for i, lk in enumerate(links):
        where = f"links[{i}]"
        if not isinstance(lk, dict):
            bad(f"link entry must be an object, got {type(lk).__name__}", where)
            continue
        for key in ("from", "to"):
            if not isinstance(lk.get(key), str) or not lk.get(key):
                bad(f"link entry needs a non-empty string {key!r}", where)
    return ok
