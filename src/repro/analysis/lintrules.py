"""Concurrency lint rules over the extracted thread models.

=========  ========  =======================================================
code       severity  meaning
=========  ========  =======================================================
NEPL200    error     file failed to parse (lint could not run)
NEPL201    error     attribute mutated from a thread entry with no lock
NEPL202    error     attribute mutated both with and without a lock
NEPL203    error     lock-acquisition-order cycle (deadlock risk)
NEPL204    warning   state lock held across a blocking call
NEPL205    warning   callback invoked while a state lock is held
NEPL210    error     parent state mutated after spawn but read in the child
NEPL211    error     unpicklable attribute captured in Process args
NEPL212    error     mp primitive from module default despite pinned context
NEPL213    warning   blocking call inside an OS signal handler
NEPL214    warning   fork/default-context spawn in a lock/thread-owning class
=========  ========  =======================================================

The engine works per class (see :mod:`repro.analysis.threadmodel`):

1. **Entry contexts.**  Each method gets the set of ``(kind, held)``
   contexts it can be entered in: thread targets enter lock-free from
   their tier thread; public methods enter lock-free from callers;
   ``_locked``-suffixed / "Caller must hold" methods enter with that
   lock held.  Contexts propagate along intra-class calls (a caller's
   held locks at the call site join the callee's entry set) to a fixed
   point, so a private helper only ever called under ``_lock`` is
   analyzed as lock-protected without any annotation.
2. **Lock roles.**  A group is a *state lock* when some attribute
   mutation happens while it is the only lock held — it guards data.
   A lock never alone at a mutation is a *pipeline lock*: it exists to
   serialize stages (e.g. flush→sink ordering, send serialization),
   and blocking inside it is the design, not a defect.  NEPL204/205
   only fire for state locks.
3. **Rules** evaluate every event under every reachable context;
   ``__init__`` is exempt (the object is not yet shared).

Lock-order edges include one level of cross-class resolution: a call
``self._chan.put(...)`` made under a held lock, where ``_chan`` was
built from a known class, adds edges to every lock that class's method
(transitively, intra-class) acquires.

The NEPL210–214 tier reasons about the ``multiprocessing`` *spawn
boundary* instead of threads: a spawned child gets a pickled copy of
the parent object at spawn time, so parent-side mutation after spawn is
invisible to child-reachable code (NEPL210), locks/sockets/threads in
``Process`` args fail to pickle — or worse, pickle into useless copies
(NEPL211), primitives created through the module default don't
interoperate with a pinned ``get_context`` start method (NEPL212), and
forking (or relying on the platform default, which forks on Linux)
while the class owns locks or threads can clone a held lock into the
child (NEPL214).  NEPL213 covers OS signal handlers, which interrupt
the main thread at arbitrary points: a blocking call there stalls
delivery of every subsequent signal.
"""

from __future__ import annotations

from repro.analysis.diagnostics import DiagnosticReport, Severity
from repro.analysis.threadmodel import ClassModel, Event, MethodModel

Context = tuple[str, frozenset[str]]  # (entry kind, locks held at entry)


def evaluate(models: list[ClassModel], report: DiagnosticReport) -> None:
    """Run every rule over every analyzable class into ``report``."""
    by_name = {m.name: m for m in models}
    order_edges: dict[tuple[str, str], tuple[str, str, int]] = {}
    for model in models:
        _check_spawn_staleness(model, report)
        _check_spawn_captures(model, report)
        _check_context_mismatch(model, report)
        _check_signal_handlers(model, report)
        _check_fork_with_locks(model, report)
        if not model.has_concurrency():
            continue
        contexts = _entry_contexts(model)
        _check_mutations(model, contexts, report)
        state_locks = _state_locks(model, contexts)
        _check_blocking(model, contexts, state_locks, report)
        _check_callbacks(model, contexts, state_locks, report)
        _collect_order_edges(model, contexts, by_name, order_edges)
    _check_order_cycles(order_edges, report)


def _where(model: ClassModel, lineno: int) -> str:
    return f"{model.path}:{lineno}"


# -- entry contexts ------------------------------------------------------------


def _entry_contexts(model: ClassModel) -> dict[str, set[Context]]:
    """Fixed-point context sets per method (see module docstring)."""
    contexts: dict[str, set[Context]] = {name: set() for name in model.methods}
    called_somewhere = {
        e.name
        for mm in model.methods.values()
        for e in mm.events
        if e.kind == "call"
    }
    for name, mm in model.methods.items():
        if name in model.thread_targets:
            contexts[name].add(("thread", mm.requires))
        if mm.is_public:
            contexts[name].add(("public", mm.requires))
        elif mm.requires:
            # Annotated helper: external callers honour the contract.
            contexts[name].add(("public", mm.requires))
        elif name not in called_somewhere and name not in model.thread_targets:
            # Never called intra-class: assume a lock-free outside caller
            # rather than silently skipping it.
            contexts[name].add(("public", frozenset()))
    changed = True
    while changed:
        changed = False
        for name, mm in model.methods.items():
            for event in mm.events:
                if event.kind != "call" or event.name not in contexts:
                    continue
                callee = contexts[event.name]
                for kind, entry_held in contexts[name]:
                    ctx = (kind, frozenset(entry_held | event.held))
                    if ctx not in callee:
                        callee.add(ctx)
                        changed = True
    return contexts


def _iter_events(model: ClassModel):
    """(method, event) pairs, skipping ``__init__`` (unshared object)."""
    for name, mm in model.methods.items():
        if name == "__init__":
            continue
        for event in mm.events:
            yield mm, event


def _effective(
    contexts: dict[str, set[Context]], mm: MethodModel, event: Event
):
    """Every (kind, effective-held) the event can execute under."""
    for kind, entry_held in contexts[mm.name]:
        yield kind, frozenset(entry_held | event.held)


# -- rules ---------------------------------------------------------------------


def _check_mutations(
    model: ClassModel, contexts: dict[str, set[Context]], report: DiagnosticReport
) -> None:
    """NEPL201 (unsynchronized cross-thread mutation) + NEPL202
    (inconsistent locking)."""
    locked_attrs: set[str] = set()
    unlocked: dict[tuple[str, int], str] = {}  # (attr, line) -> worst kind
    for mm, event in _iter_events(model):
        if event.kind != "mutate":
            continue
        for kind, eff in _effective(contexts, mm, event):
            if eff:
                locked_attrs.add(event.name)
            else:
                key = (event.name, event.lineno)
                if unlocked.get(key) != "thread":
                    unlocked[key] = kind
    flagged: set[tuple[str, int]] = set()
    for (attr, lineno), kind in sorted(unlocked.items(), key=lambda kv: kv[0][1]):
        if kind == "thread" and model.thread_targets:
            report.add(
                "NEPL201",
                Severity.ERROR,
                f"{model.name}.{attr} is mutated without a lock on a path "
                "reachable from a thread entry point; concurrent updates "
                "can be lost",
                where=_where(model, lineno),
                hint="hold the owning lock around the mutation",
            )
            flagged.add((attr, lineno))
    for (attr, lineno), _kind in sorted(unlocked.items(), key=lambda kv: kv[0][1]):
        if (attr, lineno) in flagged or attr not in locked_attrs:
            continue
        report.add(
            "NEPL202",
            Severity.ERROR,
            f"{model.name}.{attr} is mutated under a lock elsewhere but "
            "without one here; the lock protects nothing if any writer "
            "bypasses it",
            where=_where(model, lineno),
            hint="take the same lock on every mutation of the attribute",
        )


def _state_locks(
    model: ClassModel, contexts: dict[str, set[Context]]
) -> frozenset[str]:
    """Groups that are the sole lock held at some attribute mutation."""
    state: set[str] = set()
    for mm, event in _iter_events(model):
        if event.kind != "mutate":
            continue
        for _kind, eff in _effective(contexts, mm, event):
            if len(eff) == 1:
                state.update(eff)
    return frozenset(state)


def _check_blocking(
    model: ClassModel,
    contexts: dict[str, set[Context]],
    state_locks: frozenset[str],
    report: DiagnosticReport,
) -> None:
    """NEPL204: state lock held across a blocking call."""
    seen: set[int] = set()
    for mm, event in _iter_events(model):
        if event.kind != "blocking" or event.lineno in seen:
            continue
        for _kind, eff in _effective(contexts, mm, event):
            # A condition wait releases its own lock while waiting.
            held = eff - {event.detail} if event.detail else eff
            culprits = sorted(held & state_locks)
            if culprits:
                seen.add(event.lineno)
                report.add(
                    "NEPL204",
                    Severity.WARNING,
                    f"{model.name}.{mm.name} holds state lock "
                    f"{culprits[0]!r} across blocking call {event.name}; "
                    "every reader/writer of that state stalls for the "
                    "full call",
                    where=_where(model, event.lineno),
                    hint="copy what you need, release the lock, then block",
                )
                break


def _check_callbacks(
    model: ClassModel,
    contexts: dict[str, set[Context]],
    state_locks: frozenset[str],
    report: DiagnosticReport,
) -> None:
    """NEPL205: foreign callback invoked while a state lock is held."""
    seen: set[int] = set()
    for mm, event in _iter_events(model):
        if event.kind != "callback" or event.lineno in seen:
            continue
        for _kind, eff in _effective(contexts, mm, event):
            culprits = sorted(eff & state_locks)
            if culprits:
                seen.add(event.lineno)
                report.add(
                    "NEPL205",
                    Severity.WARNING,
                    f"{model.name}.{mm.name} invokes callback "
                    f"{event.name} while holding state lock "
                    f"{culprits[0]!r}; a callback that re-enters this "
                    "object or blocks deadlocks the lock",
                    where=_where(model, event.lineno),
                    hint="record the callback under the lock, invoke it "
                    "after release",
                )
                break


def static_order_edges(
    models: list[ClassModel],
) -> dict[tuple[str, str], tuple[str, str, int]]:
    """The lock-order edge set NEPL203 reasons over, as
    ``(held_node, acquired_node) -> (path, method, lineno)`` with nodes
    labelled ``ClassName.lockgroup``.

    Public for :mod:`repro.analysis.sanitizer`, which cross-validates
    these *predicted* edges against the edges an instrumented run
    actually *witnesses*.
    """
    by_name = {m.name: m for m in models}
    edges: dict[tuple[str, str], tuple[str, str, int]] = {}
    for model in models:
        if not model.has_concurrency():
            continue
        contexts = _entry_contexts(model)
        _collect_order_edges(model, contexts, by_name, edges)
    return edges


# -- process-model rules (NEPL210–214) -----------------------------------------

#: Attribute classes that cannot cross the pickle/spawn boundary (or
#: arrive as useless copies).  threading locks are caught through the
#: class's lock groups instead.
UNPICKLABLE_CLASSES = frozenset({"Thread", "Timer", "socket", "Condition"})


def _child_reachable(model: ClassModel) -> set[str]:
    """Methods reachable (intra-class) from a process target."""
    reachable = set(model.process_targets & model.methods.keys())
    frontier = list(reachable)
    while frontier:
        mm = model.methods[frontier.pop()]
        for event in mm.events:
            if event.kind == "call" and event.name in model.methods:
                if event.name not in reachable:
                    reachable.add(event.name)
                    frontier.append(event.name)
    return reachable


def _check_spawn_staleness(model: ClassModel, report: DiagnosticReport) -> None:
    """NEPL210: parent-side mutation of state the spawned child reads.

    A spawn-context child pickles the object once, at spawn time; any
    later parent mutation updates the parent's copy only, so the child
    silently computes on stale state.
    """
    if not model.process_targets:
        return
    child = _child_reachable(model)
    child_reads: dict[str, int] = {}
    for name in child:
        for attr, lineno in model.methods[name].reads.items():
            child_reads.setdefault(attr, lineno)
    flagged: set[str] = set()
    for name, mm in sorted(model.methods.items(), key=lambda kv: kv[1].lineno):
        if name == "__init__" or name in child:
            continue
        mutations = [(e.name, e.lineno) for e in mm.events if e.kind == "mutate"]
        mutations += list(mm.rebinds.items())
        for attr, lineno in sorted(mutations, key=lambda kv: kv[1]):
            if attr not in child_reads or attr in flagged:
                continue
            if attr in model.methods:
                continue  # rebinding a method name — not state
            flagged.add(attr)
            report.add(
                "NEPL210",
                Severity.ERROR,
                f"{model.name}.{attr} is written by parent-side "
                f"{name}() but read inside process-target code; the "
                "spawned child holds a pickled copy from spawn time and "
                "never sees this write",
                where=_where(model, lineno),
                hint="move the state into the spec/args shipped at spawn, "
                "or use an mp primitive (ctx.Value/ctx.Queue) for "
                "cross-process state",
            )


def _check_spawn_captures(model: ClassModel, report: DiagnosticReport) -> None:
    """NEPL211: locks/sockets/threads shipped through Process args."""
    seen: set[str] = set()
    for attr, lineno in model.spawn_captures:
        if attr in seen or attr in model.mp_owned_attrs:
            continue
        if attr in model.lock_groups:
            kind = "a threading lock"
        elif model.attr_classes.get(attr) in UNPICKLABLE_CLASSES:
            kind = f"a {model.attr_classes[attr]}"
        else:
            continue
        seen.add(attr)
        report.add(
            "NEPL211",
            Severity.ERROR,
            f"{model.name}.{attr} ({kind}) is captured in Process args; "
            "it either fails to pickle at spawn or arrives as a "
            "disconnected copy that synchronizes nothing",
            where=_where(model, lineno),
            hint="ship plain data (JSON/specs) across the spawn boundary "
            "and rebuild runtime objects in the child",
        )


def _check_context_mismatch(model: ClassModel, report: DiagnosticReport) -> None:
    """NEPL212: module-default primitive in a pinned-context class."""
    if not model.mp_contexts:
        return
    pinned = sorted(set(model.mp_contexts.values()))[0]
    for factory, lineno in model.default_ctx_primitives:
        report.add(
            "NEPL212",
            Severity.ERROR,
            f"{model.name} pins multiprocessing context {pinned!r} but "
            f"creates {factory} through the module default; primitives "
            "from mismatched start methods fail (or deadlock) when "
            "shared with the pinned context's processes",
            where=_where(model, lineno),
            hint=f"create it from the pinned context (ctx.{factory}(...))",
        )


def _check_signal_handlers(model: ClassModel, report: DiagnosticReport) -> None:
    """NEPL213: blocking call reachable inside an OS signal handler."""
    for handler in sorted(model.signal_handlers):
        if handler not in model.methods:
            continue
        reachable = {handler}
        frontier = [handler]
        while frontier:
            mm = model.methods[frontier.pop()]
            for event in mm.events:
                if event.kind == "call" and event.name in model.methods:
                    if event.name not in reachable:
                        reachable.add(event.name)
                        frontier.append(event.name)
        for name in sorted(reachable):
            blocking = [
                e for e in model.methods[name].events if e.kind == "blocking"
            ]
            if blocking:
                event = min(blocking, key=lambda e: e.lineno)
                report.add(
                    "NEPL213",
                    Severity.WARNING,
                    f"signal handler {model.name}.{handler} reaches "
                    f"blocking call {event.name}; handlers interrupt the "
                    "main thread at arbitrary points, so blocking here "
                    "stalls the interrupted code and delays every "
                    "subsequent signal",
                    where=_where(model, event.lineno),
                    hint="set a flag in the handler and do the blocking "
                    "work on the main loop",
                )
                break


def _check_fork_with_locks(model: ClassModel, report: DiagnosticReport) -> None:
    """NEPL214: forking while owning locks/threads clones lock state."""
    if not model.lock_groups and not model.thread_targets:
        return
    for lineno, source in model.process_spawns:
        if source in ("spawn", "forkserver"):
            continue
        if source == "?":
            continue  # unresolvable context: don't guess
        how = (
            "the platform-default start method (fork on Linux)"
            if source == "module"
            else f"the {source!r} start method"
        )
        report.add(
            "NEPL214",
            Severity.WARNING,
            f"{model.name} owns locks/threads but spawns a process via "
            f"{how}; a fork taken while another thread holds a lock "
            "clones that lock permanently-held into the child",
            where=_where(model, lineno),
            hint='pin a spawn context: ctx = multiprocessing.get_context("spawn")',
        )


# -- lock-order cycles ---------------------------------------------------------


def _transitive_acquires(
    model: ClassModel, method: str, _seen: set[str] | None = None
) -> frozenset[str]:
    """Lock groups a method may acquire, following intra-class calls."""
    if method not in model.methods:
        return frozenset()
    seen = _seen if _seen is not None else set()
    if method in seen:
        return frozenset()
    seen.add(method)
    acquired: set[str] = set(model.methods[method].requires)
    for event in model.methods[method].events:
        if event.kind == "acquire":
            acquired.add(event.name)
        elif event.kind == "call":
            acquired |= _transitive_acquires(model, event.name, seen)
    return frozenset(acquired)


def _collect_order_edges(
    model: ClassModel,
    contexts: dict[str, set[Context]],
    by_name: dict[str, ClassModel],
    edges: dict[tuple[str, str], tuple[str, str, int]],
) -> None:
    """Directed held→acquired edges between (class, lock-group) nodes."""

    def add_edge(a: str, b: str, mm: MethodModel, lineno: int) -> None:
        if a != b:
            edges.setdefault((a, b), (model.path, mm.name, lineno))

    for mm, event in _iter_events(model):
        if event.kind == "acquire":
            for _kind, eff in _effective(contexts, mm, event):
                for group in eff:
                    add_edge(
                        f"{model.name}.{group}",
                        f"{model.name}.{event.name}",
                        mm,
                        event.lineno,
                    )
        elif event.kind == "xcall":
            attr, _, method = event.name.partition(".")
            target = by_name.get(model.attr_classes.get(attr, ""))
            if target is None or target is model:
                continue
            inner = _transitive_acquires(target, method)
            if not inner:
                continue
            for _kind, eff in _effective(contexts, mm, event):
                for group in eff:
                    for acquired in inner:
                        add_edge(
                            f"{model.name}.{group}",
                            f"{target.name}.{acquired}",
                            mm,
                            event.lineno,
                        )


def _check_order_cycles(
    edges: dict[tuple[str, str], tuple[str, str, int]],
    report: DiagnosticReport,
) -> None:
    """NEPL203: cycle detection over the lock-order graph (plain DFS —
    the graph is tiny, no need for networkx here)."""
    graph: dict[str, list[str]] = {}
    for a, b in edges:
        graph.setdefault(a, []).append(b)
        graph.setdefault(b, [])
    WHITE, GREY, BLACK = 0, 1, 2
    color = dict.fromkeys(graph, WHITE)
    stack: list[str] = []
    reported: set[frozenset[str]] = set()

    def dfs(node: str) -> None:
        color[node] = GREY
        stack.append(node)
        for nxt in graph[node]:
            if color[nxt] == GREY:
                cycle = stack[stack.index(nxt) :] + [nxt]
                key = frozenset(cycle)
                if key not in reported:
                    reported.add(key)
                    path, method, lineno = edges[(node, nxt)]
                    report.add(
                        "NEPL203",
                        Severity.ERROR,
                        "lock-acquisition-order cycle: "
                        + " -> ".join(cycle)
                        + "; two threads taking these locks in opposite "
                        "order deadlock",
                        where=f"{path}:{lineno} (in {method})",
                        hint="impose one global acquisition order and "
                        "document it where the locks are created",
                    )
            elif color[nxt] == WHITE:
                dfs(nxt)
        stack.pop()
        color[node] = BLACK

    for node in sorted(graph):
        if color[node] == WHITE:
            dfs(node)
