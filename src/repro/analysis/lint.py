"""Concurrency lint driver: files in → :class:`DiagnosticReport` out.

Walks the given files/directories, extracts each class's thread model
(:mod:`repro.analysis.threadmodel`) and evaluates the NEPL rules
(:mod:`repro.analysis.lintrules`) across all of them together — the
whole-set view is what makes cross-class lock-order cycles visible.

Used by ``repro analyze --lint PATH`` and by CI, where it gates on the
runtime's own source tree (``src/repro``).
"""

from __future__ import annotations

import os

from repro.analysis.diagnostics import DiagnosticReport, Severity
from repro.analysis.lintrules import evaluate
from repro.analysis.threadmodel import ClassModel, build_models


def collect_files(paths: list[str]) -> list[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    found: set[str] = set()
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, names in os.walk(path):
                dirs[:] = [d for d in dirs if d != "__pycache__"]
                for name in names:
                    if name.endswith(".py"):
                        found.add(os.path.join(root, name))
        else:
            found.add(path)
    return sorted(found)


def collect_models(
    paths: list[str], report: DiagnosticReport | None = None
) -> list[ClassModel]:
    """Extract class models for every ``.py`` file under ``paths``
    (unreadable/unparsable files become NEPL200 when a report is given,
    and are skipped otherwise)."""
    models: list[ClassModel] = []
    for filename in collect_files(paths):
        try:
            with open(filename, "r", encoding="utf-8") as fh:
                source = fh.read()
            models.extend(build_models(filename, source))
        except (OSError, SyntaxError) as exc:
            if report is not None:
                report.add(
                    "NEPL200",
                    Severity.ERROR,
                    f"cannot lint file: {exc}",
                    where=filename,
                )
    return models


def lint_paths(paths: list[str]) -> DiagnosticReport:
    """Lint every ``.py`` file under ``paths``."""
    report = DiagnosticReport(subject=", ".join(paths))
    models = collect_models(paths, report)
    evaluate(models, report)
    return report
