"""Structured diagnostics shared by the graph verifier and the lint.

Every finding is a :class:`Diagnostic`: a stable code (``NEPGxxx`` for
graph findings, ``NEPLxxx`` for concurrency findings), a severity, the
location (operator/link for graphs, ``file:line`` for the lint), a
human message, and a fix hint.  A :class:`DiagnosticReport` aggregates
them and knows how to render text or JSON and to fold into a process
exit code — the CI gate is ``exit_code() == 0``.
"""

from __future__ import annotations

import enum
import json
from dataclasses import asdict, dataclass, field


class Severity(enum.IntEnum):
    """Finding severity; ordering is by increasing seriousness."""

    INFO = 0
    WARNING = 1
    ERROR = 2

    def __str__(self) -> str:
        return self.name.lower()


@dataclass(frozen=True)
class Diagnostic:
    """One verifier/lint finding."""

    code: str
    severity: Severity
    message: str
    #: Where: ``operator``/``link from->to/stream`` for graph findings,
    #: ``path:line`` for lint findings.
    where: str = ""
    hint: str = ""

    def render(self) -> str:
        """One-line human form: ``CODE severity where: message``."""
        loc = f" {self.where}" if self.where else ""
        text = f"{self.code} {self.severity}{loc}: {self.message}"
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text


@dataclass
class DiagnosticReport:
    """An ordered collection of diagnostics with gate semantics."""

    diagnostics: list[Diagnostic] = field(default_factory=list)
    #: What was analyzed (descriptor path, source root, ...).
    subject: str = ""

    def add(
        self,
        code: str,
        severity: Severity,
        message: str,
        where: str = "",
        hint: str = "",
    ) -> Diagnostic:
        """Record one finding and return it."""
        diag = Diagnostic(code, severity, message, where, hint)
        self.diagnostics.append(diag)
        return diag

    def extend(self, other: "DiagnosticReport") -> None:
        """Fold another report's findings into this one."""
        self.diagnostics.extend(other.diagnostics)

    # -- queries ---------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.diagnostics)

    def __iter__(self):
        return iter(self.diagnostics)

    def errors(self) -> list[Diagnostic]:
        """Findings with ERROR severity."""
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    def warnings(self) -> list[Diagnostic]:
        """Findings with WARNING severity."""
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    def codes(self) -> list[str]:
        """All finding codes, in emission order (with repeats)."""
        return [d.code for d in self.diagnostics]

    def count(self, code: str) -> int:
        """How many findings carry ``code``."""
        return sum(1 for d in self.diagnostics if d.code == code)

    def max_severity(self) -> Severity | None:
        """The most serious severity present, or None when clean."""
        if not self.diagnostics:
            return None
        return max(d.severity for d in self.diagnostics)

    def exit_code(self, fail_on: Severity = Severity.ERROR) -> int:
        """0 when no finding reaches ``fail_on``; 1 otherwise."""
        return int(any(d.severity >= fail_on for d in self.diagnostics))

    # -- rendering -------------------------------------------------------------
    def render(self) -> str:
        """Multi-line human-readable report."""
        lines = []
        if self.subject:
            lines.append(f"analyze {self.subject}:")
        if not self.diagnostics:
            lines.append("  clean — no findings")
            return "\n".join(lines)
        for diag in self.diagnostics:
            for row in diag.render().splitlines():
                lines.append(f"  {row}")
        n_err = len(self.errors())
        n_warn = len(self.warnings())
        lines.append(
            f"  {len(self.diagnostics)} finding(s): "
            f"{n_err} error(s), {n_warn} warning(s)"
        )
        return "\n".join(lines)

    def to_json(self) -> str:
        """JSON form (machine-readable CI artifact)."""
        return json.dumps(
            {
                "subject": self.subject,
                "findings": [
                    {**asdict(d), "severity": str(d.severity)}
                    for d in self.diagnostics
                ],
            },
            indent=2,
        )
