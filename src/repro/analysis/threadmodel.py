"""AST extraction of each class's threading model.

The concurrency lint reasons about *classes*, because that is how the
runtime organizes its concurrency: a class owns locks (``self._lock =
threading.Lock()``), spawns tier threads (``threading.Thread(
target=self._loop)``), and guards its attributes.  This module turns a
parsed source file into per-class facts; :mod:`repro.analysis.lintrules`
evaluates the rules over them.

Extracted per class:

- **Lock groups** — lock/RLock/Condition attributes, with aliasing
  resolved: ``self._cv = threading.Condition(self._lock)`` puts
  ``_cv`` in ``_lock``'s group (holding either is holding the group).
- **Thread entry points** — methods used as ``Thread(target=self.X)``.
- **Per-method events**, each annotated with the lock groups held at
  that statement (``with self._lock:`` nesting, plus linear
  ``.acquire()``/``.release()`` tracking): attribute *mutations*
  (augmented assignment, subscript stores, mutating container method
  calls — plain rebinds are atomic under the GIL and excluded),
  *blocking calls* (``sleep``/``sendall``/``recv``/``accept``/
  ``connect``/``join``/condition ``wait``...), *callback invocations*
  (``self._on_x(...)``), lock *acquisitions*, and intra-class *calls*.
- **Held-lock annotations** — a ``_locked`` name suffix or a
  "Caller must hold ``_lock``" docstring line marks a method as
  entered with that lock already held, so the lint does not treat it
  as a lock-free entry point.
- **Attribute classes** — ``self._chan = WatermarkChannel(...)`` maps
  ``_chan`` to that class, enabling cross-class lock-order edges.
- **Process-model facts** (the NEPL210–214 tier) — methods used as
  ``Process(target=self.X)``, ``self`` attributes captured in process
  ``args``, pinned ``multiprocessing.get_context(...)`` start methods
  vs. primitives created through the module default, methods registered
  as OS signal handlers, and each ``Process(...)`` construction with
  the start method it resolves to.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field

#: Method calls that mutate their receiver in place.
MUTATING_METHODS = frozenset(
    {
        "append",
        "appendleft",
        "extend",
        "extendleft",
        "insert",
        "pop",
        "popleft",
        "popitem",
        "remove",
        "clear",
        "update",
        "add",
        "discard",
        "setdefault",
        "sort",
        "reverse",
    }
)

#: Method names that block the calling thread regardless of receiver.
BLOCKING_METHODS = frozenset(
    {"sendall", "recv", "recv_into", "recvfrom", "accept", "connect", "join", "select"}
)

#: ``module.fn`` calls that block (matched on the attribute name, so
#: ``import time as _time; _time.sleep(...)`` is still caught).
BLOCKING_MODULE_FUNCS = frozenset({"sleep", "create_connection"})

#: Receiver classes whose ``get``/``put`` block (bounded queues).
BLOCKING_QUEUE_CLASSES = frozenset({"Queue", "SimpleQueue", "WatermarkChannel"})

_MUST_HOLD = re.compile(r"[Cc]aller must hold\s+``?([A-Za-z_][A-Za-z0-9_]*)``?")

#: ``multiprocessing`` factory names whose product lives on one start
#: method; creating them through the module default while the class
#: pins an explicit context mixes start methods (NEPL212).
MP_PRIMITIVES = frozenset(
    {
        "Queue",
        "SimpleQueue",
        "JoinableQueue",
        "Event",
        "Lock",
        "RLock",
        "Condition",
        "Semaphore",
        "BoundedSemaphore",
        "Barrier",
        "Value",
        "Array",
        "Pipe",
        "Manager",
        "Pool",
        "Process",
    }
)

#: Names the ``multiprocessing`` module is commonly bound to.
MP_MODULE_NAMES = frozenset({"multiprocessing", "mp"})


@dataclass(frozen=True)
class Event:
    """One fact inside a method body.

    ``kind`` is one of ``mutate`` (of attr ``name``), ``blocking``
    (``name`` describes the call), ``callback`` (invocation of callable
    attr ``name``), ``acquire`` (of lock group ``name``), ``call``
    (intra-class, of method ``name``), or ``xcall`` (cross-class,
    ``name`` is ``"attr.method"``).  ``held`` is the statement-level
    set of lock groups held; entry-context locks are added later by the
    rule engine.  ``detail`` carries the wait-whitelist group for
    condition waits.
    """

    kind: str
    name: str
    lineno: int
    held: frozenset[str]
    detail: str = ""


@dataclass
class MethodModel:
    """Facts for one method."""

    name: str
    lineno: int
    events: list[Event] = field(default_factory=list)
    #: Lock groups documented as already held on entry.
    requires: frozenset[str] = frozenset()
    is_public: bool = False
    #: self attrs read (Load context) anywhere in the body -> first line.
    reads: dict[str, int] = field(default_factory=dict)
    #: self attrs rebound by plain assignment -> first line (plain
    #: rebinds are atomic and excluded from ``mutate`` events, but the
    #: spawn boundary makes even rebinds invisible to the child).
    rebinds: dict[str, int] = field(default_factory=dict)


@dataclass
class ClassModel:
    """Facts for one class in one file."""

    name: str
    path: str
    lineno: int
    #: lock attr name -> canonical group name.
    lock_groups: dict[str, str] = field(default_factory=dict)
    thread_targets: set[str] = field(default_factory=set)
    methods: dict[str, MethodModel] = field(default_factory=dict)
    #: self attr -> class name it was constructed from.
    attr_classes: dict[str, str] = field(default_factory=dict)
    #: attrs holding user callbacks (``_on_*`` or Callable-annotated).
    callback_attrs: set[str] = field(default_factory=set)
    #: Methods used as ``Process(target=self.X)`` — code that runs in a
    #: spawned child interpreter.
    process_targets: set[str] = field(default_factory=set)
    #: context name (self attr or local) -> pinned start method
    #: (``self._ctx = multiprocessing.get_context("spawn")``).
    mp_contexts: dict[str, str] = field(default_factory=dict)
    #: Every ``Process(...)`` construction: (lineno, start method it
    #: resolves to — a pinned method name, ``"module"`` for the
    #: platform default, or ``"?"`` when unresolvable).
    process_spawns: list[tuple[int, str]] = field(default_factory=list)
    #: ``self`` attrs shipped through ``Process(args=...)``/kwargs.
    spawn_captures: list[tuple[str, int]] = field(default_factory=list)
    #: (factory name, lineno) of multiprocessing primitives created
    #: through the module default rather than a pinned context.
    default_ctx_primitives: list[tuple[str, int]] = field(default_factory=list)
    #: Attrs assigned from a pinned-context or mp-module factory
    #: (``self._q = ctx.Queue()``) — sharable across the spawn boundary.
    mp_owned_attrs: set[str] = field(default_factory=set)
    #: Methods registered as OS signal handlers via ``signal.signal``.
    signal_handlers: set[str] = field(default_factory=set)

    @property
    def groups(self) -> frozenset[str]:
        """All canonical lock group names of this class."""
        return frozenset(self.lock_groups.values())

    def has_concurrency(self) -> bool:
        """Whether the lint should analyze this class at all."""
        return (
            bool(self.lock_groups)
            or bool(self.thread_targets)
            or bool(self.process_spawns)
            or bool(self.signal_handlers)
        )


def build_models(path: str, source: str) -> list[ClassModel]:
    """Parse one file and extract a model per (top-level) class."""
    tree = ast.parse(source, filename=path)
    models = []
    for node in tree.body:
        if isinstance(node, ast.ClassDef):
            models.append(_build_class(path, node))
    return models


# -- class-level extraction ----------------------------------------------------


def _build_class(path: str, node: ast.ClassDef) -> ClassModel:
    model = ClassModel(name=node.name, path=path, lineno=node.lineno)
    methods = [
        n
        for n in node.body
        if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]
    _collect_lock_groups(model, methods)
    for meth in methods:
        _collect_thread_targets(model, meth)
        _collect_attr_classes(model, meth)
        _collect_callback_attrs(model, meth)
        _collect_mp_contexts(model, meth)
    for meth in methods:
        _collect_process_model(model, meth)
        _collect_signal_handlers(model, meth)
    for meth in methods:
        model.methods[meth.name] = _build_method(model, meth)
    return model


def _self_attr(expr: ast.expr) -> str | None:
    """``self.X`` -> ``"X"``; anything else -> None."""
    if (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
        and expr.value.id == "self"
    ):
        return expr.attr
    return None


def _called_name(call: ast.Call) -> str | None:
    """The trailing name of the called expression (``a.b.c()`` -> c)."""
    func = call.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def _collect_lock_groups(model: ClassModel, methods: list) -> None:
    """Find lock attrs and resolve Condition aliasing (two passes)."""
    assignments: list[tuple[str, ast.Call]] = []
    for meth in methods:
        for stmt in ast.walk(meth):
            if not isinstance(stmt, ast.Assign) or not isinstance(
                stmt.value, ast.Call
            ):
                continue
            for target in stmt.targets:
                attr = _self_attr(target)
                if attr is not None:
                    assignments.append((attr, stmt.value))
    for attr, call in assignments:
        if _called_name(call) in ("Lock", "RLock"):
            model.lock_groups[attr] = attr
    # Second pass so ``Condition(self._lock)`` resolves even when the
    # lock assignment appears later in the source.
    for attr, call in assignments:
        if _called_name(call) != "Condition":
            continue
        if call.args:
            base = _self_attr(call.args[0])
            if base is not None and base in model.lock_groups:
                model.lock_groups[attr] = model.lock_groups[base]
                continue
        model.lock_groups[attr] = attr  # standalone Condition: own group


def _collect_thread_targets(model: ClassModel, meth: ast.AST) -> None:
    for node in ast.walk(meth):
        if not isinstance(node, ast.Call):
            continue
        if _called_name(node) not in ("Thread", "Timer"):
            continue
        for kw in node.keywords:
            if kw.arg == "target":
                target = _self_attr(kw.value)
                if target is not None:
                    model.thread_targets.add(target)


def _collect_attr_classes(model: ClassModel, meth: ast.AST) -> None:
    """``self._x = SomeClass(...)`` / annotated ctor params."""
    annotations: dict[str, str] = {}
    if isinstance(meth, (ast.FunctionDef, ast.AsyncFunctionDef)):
        for arg in meth.args.args + meth.args.kwonlyargs:
            if arg.annotation is not None:
                annotations[arg.arg] = ast.unparse(arg.annotation)
    for node in ast.walk(meth):
        if not isinstance(node, ast.Assign):
            continue
        for target in node.targets:
            attr = _self_attr(target)
            if attr is None:
                continue
            value = node.value
            if isinstance(value, ast.Call):
                name = _called_name(value)
                if name and name[:1].isupper():
                    model.attr_classes.setdefault(attr, name)
                elif name == "socket":
                    # socket.socket(...) — lowercase ctor, but the lint
                    # needs the class for unpicklable-capture checks.
                    model.attr_classes.setdefault(attr, "socket")
            elif isinstance(value, ast.Name) and value.id in annotations:
                ann = annotations[value.id]
                # Forward refs unparse with their quotes ('"PairB"').
                head = ann.split("[")[0].split(".")[-1].strip("'\"")
                if head[:1].isupper() and "Callable" not in ann:
                    model.attr_classes.setdefault(attr, head)


def _collect_callback_attrs(model: ClassModel, meth: ast.AST) -> None:
    """Attrs that hold injected callables (flagged when invoked under a
    state lock — NEPL205)."""
    annotations: dict[str, str] = {}
    if isinstance(meth, (ast.FunctionDef, ast.AsyncFunctionDef)):
        for arg in meth.args.args + meth.args.kwonlyargs:
            if arg.annotation is not None:
                annotations[arg.arg] = ast.unparse(arg.annotation)
    for node in ast.walk(meth):
        if not isinstance(node, ast.Assign):
            continue
        for target in node.targets:
            attr = _self_attr(target)
            if attr is None:
                continue
            if attr.startswith("_on_") or attr.endswith("_cb"):
                model.callback_attrs.add(attr)
            elif (
                isinstance(node.value, ast.Name)
                and "Callable" in annotations.get(node.value.id, "")
            ):
                model.callback_attrs.add(attr)


# -- process-model extraction --------------------------------------------------


def _collect_mp_contexts(model: ClassModel, meth: ast.AST) -> None:
    """``self._ctx = multiprocessing.get_context("spawn")`` (or a local
    binding) pins a start method; Process/primitive creations resolve
    against these."""
    for node in ast.walk(meth):
        if not isinstance(node, ast.Assign) or not isinstance(node.value, ast.Call):
            continue
        if _called_name(node.value) != "get_context":
            continue
        method = "?"
        if node.value.args and isinstance(node.value.args[0], ast.Constant):
            method = str(node.value.args[0].value)
        elif not node.value.args:
            method = "module"  # get_context() — the platform default
        for target in node.targets:
            attr = _self_attr(target)
            if attr is not None:
                model.mp_contexts[attr] = method
            elif isinstance(target, ast.Name):
                model.mp_contexts[target.id] = method


def _spawn_source(model: ClassModel, func: ast.expr) -> str:
    """Which start method a ``...Process(...)`` call resolves to."""
    if isinstance(func, ast.Name):
        return "module"  # from multiprocessing import Process
    if isinstance(func, ast.Attribute):
        attr = _self_attr(func.value)
        if attr is not None:
            return model.mp_contexts.get(attr, "?")
        if isinstance(func.value, ast.Name):
            name = func.value.id
            if name in model.mp_contexts:
                return model.mp_contexts[name]
            if name in MP_MODULE_NAMES:
                return "module"
    return "?"


def _collect_process_model(model: ClassModel, meth: ast.AST) -> None:
    """Process constructions, targets, arg captures, and primitives
    created through the module default."""
    for node in ast.walk(meth):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            # self._q = ctx.Queue() / multiprocessing.Queue(): the attr
            # is an mp-owned primitive, designed to cross the boundary.
            value = node.value
            if isinstance(value.func, ast.Attribute) and isinstance(
                value.func.value, ast.Name
            ):
                recv = value.func.value.id
                if recv in model.mp_contexts or recv in MP_MODULE_NAMES:
                    for target in node.targets:
                        attr = _self_attr(target)
                        if attr is not None:
                            model.mp_owned_attrs.add(attr)
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in MP_MODULE_NAMES
            and func.attr in MP_PRIMITIVES
        ):
            model.default_ctx_primitives.append((func.attr, node.lineno))
        if _called_name(node) != "Process":
            continue
        if isinstance(func, ast.Name) and not any(
            kw.arg == "target" for kw in node.keywords
        ):
            # A bare ``Process(...)`` without target= is most likely a
            # domain class (e.g. the simulator's), not multiprocessing.
            continue
        model.process_spawns.append((node.lineno, _spawn_source(model, func)))
        for kw in node.keywords:
            if kw.arg == "target":
                target_attr = _self_attr(kw.value)
                if target_attr is not None:
                    model.process_targets.add(target_attr)
            elif kw.arg == "args" and isinstance(kw.value, (ast.Tuple, ast.List)):
                for elt in kw.value.elts:
                    captured = _self_attr(elt)
                    if captured is not None:
                        model.spawn_captures.append((captured, elt.lineno))
            elif kw.arg == "kwargs" and isinstance(kw.value, ast.Dict):
                for elt in kw.value.values:
                    captured = _self_attr(elt)
                    if captured is not None:
                        model.spawn_captures.append((captured, elt.lineno))


def _collect_signal_handlers(model: ClassModel, meth: ast.AST) -> None:
    """``signal.signal(SIG, self.handler)`` registrations."""
    for node in ast.walk(meth):
        if not isinstance(node, ast.Call) or len(node.args) < 2:
            continue
        func = node.func
        is_signal = (
            isinstance(func, ast.Attribute)
            and func.attr == "signal"
            and isinstance(func.value, ast.Name)
            and func.value.id == "signal"
        ) or (isinstance(func, ast.Name) and func.id == "signal")
        if not is_signal:
            continue
        handler = _self_attr(node.args[1])
        if handler is not None:
            model.signal_handlers.add(handler)


# -- method-level extraction ---------------------------------------------------


def _build_method(model: ClassModel, meth: ast.FunctionDef) -> MethodModel:
    requires: set[str] = set()
    if meth.name.endswith("_locked"):
        if "_lock" in model.lock_groups:
            requires.add(model.lock_groups["_lock"])
        elif len(model.groups) == 1:
            requires.update(model.groups)
    doc = ast.get_docstring(meth) or ""
    for match in _MUST_HOLD.finditer(doc):
        attr = match.group(1)
        if attr in model.lock_groups:
            requires.add(model.lock_groups[attr])
    mm = MethodModel(
        name=meth.name,
        lineno=meth.lineno,
        requires=frozenset(requires),
        is_public=not meth.name.startswith("_") or (
            meth.name.startswith("__") and meth.name.endswith("__")
        ),
    )
    _visit_block(model, mm, meth.body, set())
    for node in ast.walk(meth):
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
            and isinstance(node.ctx, ast.Load)
        ):
            mm.reads.setdefault(node.attr, node.lineno)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                attr = _self_attr(target)
                if attr is not None:
                    mm.rebinds.setdefault(attr, node.lineno)
    return mm


def _visit_block(
    model: ClassModel, mm: MethodModel, stmts: list[ast.stmt], held: set[str]
) -> None:
    """Walk a statement list tracking held lock groups.

    ``with self._lock:`` scopes its body; bare ``.acquire()`` /
    ``.release()`` calls toggle linearly for the rest of the block.
    """
    held = set(held)  # linear-tracking updates stay in this block
    for stmt in stmts:
        if isinstance(stmt, ast.With):
            newly: set[str] = set()
            for item in stmt.items:
                group = _lock_group_of(model, item.context_expr)
                if group is not None:
                    mm.events.append(
                        Event("acquire", group, stmt.lineno, frozenset(held | newly))
                    )
                    newly.add(group)
                else:
                    _scan_expr(model, mm, item.context_expr, held | newly)
            _visit_block(model, mm, stmt.body, held | newly)
        elif isinstance(stmt, ast.If):
            acquired = _scan_expr(model, mm, stmt.test, held)
            _visit_block(model, mm, stmt.body, held | acquired)
            _visit_block(model, mm, stmt.orelse, held)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            _scan_expr(model, mm, stmt.iter, held)
            _visit_block(model, mm, stmt.body, held)
            _visit_block(model, mm, stmt.orelse, held)
        elif isinstance(stmt, ast.While):
            _scan_expr(model, mm, stmt.test, held)
            _visit_block(model, mm, stmt.body, held)
            _visit_block(model, mm, stmt.orelse, held)
        elif isinstance(stmt, ast.Try):
            _visit_block(model, mm, stmt.body, held)
            for handler in stmt.handlers:
                _visit_block(model, mm, handler.body, held)
            _visit_block(model, mm, stmt.orelse, held)
            _visit_block(model, mm, stmt.finalbody, held)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue  # nested defs run later, in an unknown context
        else:
            for change in _scan_stmt(model, mm, stmt, held):
                if change[0] == "+":
                    held.add(change[1])
                else:
                    held.discard(change[1])


def _lock_group_of(model: ClassModel, expr: ast.expr) -> str | None:
    attr = _self_attr(expr)
    if attr is not None and attr in model.lock_groups:
        return model.lock_groups[attr]
    return None


def _scan_stmt(
    model: ClassModel, mm: MethodModel, stmt: ast.stmt, held: set[str]
) -> list[tuple[str, str]]:
    """Record events for one simple statement; return lock toggles."""
    changes: list[tuple[str, str]] = []
    if isinstance(stmt, ast.AugAssign):
        attr = _mutated_attr(stmt.target)
        if attr is not None:
            mm.events.append(Event("mutate", attr, stmt.lineno, frozenset(held)))
        changes.extend(("+", g) for g in _scan_expr(model, mm, stmt.value, held))
        return changes
    if isinstance(stmt, ast.Assign):
        for target in stmt.targets:
            if isinstance(target, ast.Subscript):
                attr = _self_attr(target.value)
                if attr is not None:
                    mm.events.append(
                        Event("mutate", attr, stmt.lineno, frozenset(held))
                    )
        changes.extend(("+", g) for g in _scan_expr(model, mm, stmt.value, held))
        return changes
    for node in ast.walk(stmt):
        if isinstance(node, ast.Call):
            toggle = _scan_call(model, mm, node, held)
            if toggle is not None:
                changes.append(toggle)
    return changes


def _scan_expr(
    model: ClassModel, mm: MethodModel, expr: ast.expr, held: set[str]
) -> set[str]:
    """Record events inside one expression; return groups acquired by a
    bare ``.acquire()`` in it (the ``if self._lock.acquire():`` idiom)."""
    acquired: set[str] = set()
    for node in ast.walk(expr):
        if isinstance(node, ast.Call):
            toggle = _scan_call(model, mm, node, held | acquired)
            if toggle is not None and toggle[0] == "+":
                acquired.add(toggle[1])
    return acquired


def _mutated_attr(target: ast.expr) -> str | None:
    """The self attr an AugAssign target mutates."""
    attr = _self_attr(target)
    if attr is not None:
        return attr
    if isinstance(target, ast.Subscript):
        return _self_attr(target.value)
    return None


def _scan_call(
    model: ClassModel, mm: MethodModel, call: ast.Call, held: set[str]
) -> tuple[str, str] | None:
    """Record events for one call; return a lock toggle if any."""
    func = call.func
    lineno = call.lineno
    frozen = frozenset(held)
    # self._cb(...) — direct invocation of a stored callable / method.
    direct = _self_attr(func)
    if direct is not None:
        if direct in model.callback_attrs:
            mm.events.append(Event("callback", direct, lineno, frozen))
        else:
            mm.events.append(Event("call", direct, lineno, frozen))
        return None
    if not isinstance(func, ast.Attribute):
        return None
    method = func.attr
    recv_attr = _self_attr(func.value)
    if recv_attr is not None and recv_attr in model.lock_groups:
        group = model.lock_groups[recv_attr]
        if method == "acquire":
            mm.events.append(Event("acquire", group, lineno, frozen))
            return ("+", group)
        if method == "release":
            return ("-", group)
        if method == "wait":
            # Waiting on a condition releases ITS lock, but any other
            # held lock stays held across the (blocking) wait.
            mm.events.append(
                Event("blocking", f"self.{recv_attr}.wait", lineno, frozen, detail=group)
            )
            return None
    if recv_attr is not None:
        if method in MUTATING_METHODS:
            mm.events.append(Event("mutate", recv_attr, lineno, frozen))
            return None
        if method in BLOCKING_METHODS:
            mm.events.append(
                Event("blocking", f"self.{recv_attr}.{method}", lineno, frozen)
            )
            return None
        if (
            method in ("get", "put")
            and model.attr_classes.get(recv_attr) in BLOCKING_QUEUE_CLASSES
        ):
            mm.events.append(
                Event("blocking", f"self.{recv_attr}.{method}", lineno, frozen)
            )
            return None
        if method == "wait":
            mm.events.append(
                Event("blocking", f"self.{recv_attr}.wait", lineno, frozen)
            )
            return None
        # Cross-class call on a typed attribute (lock-order edges).
        if recv_attr in model.attr_classes:
            mm.events.append(
                Event("xcall", f"{recv_attr}.{method}", lineno, frozen)
            )
        return None
    # module-style blocking calls: time.sleep, socket.create_connection.
    if method in BLOCKING_MODULE_FUNCS and isinstance(func.value, ast.Name):
        receiver = func.value.id
        if receiver != "self":
            mm.events.append(
                Event("blocking", f"{receiver}.{method}", lineno, frozen)
            )
        return None
    if method in BLOCKING_METHODS:
        # Blocking call on a local (e.g. ``conn.recv``, ``sock.sendall``,
        # ``t.join()``) — only interesting if a lock is held.
        if held:
            mm.events.append(
                Event("blocking", ast.unparse(func), lineno, frozen)
            )
    return None
