"""Schema-flow inference helpers: field-type compatibility across links.

A link carries its producer's declared :class:`PacketSchema`.  The
verifier checks, per link, that whatever the consumer *requires* (an
optional declared input contract) or *keys on* (fields partitioning,
direct partitioning) is actually present in the flowing schema with a
compatible wire type.

Compatibility is a small widening lattice, not equality: an operator
that requires ``int64`` is satisfied by an upstream ``int32`` (every
int32 value round-trips through int64), and ``float64`` absorbs
``float32``.  Narrowing is never allowed — that is exactly the silent
truncation the strict encoders in :mod:`repro.core.fieldtypes` exist
to reject at runtime.
"""

from __future__ import annotations

from repro.core.fieldtypes import FieldType
from repro.core.packet import PacketSchema

#: For each *required* type, the producer types that satisfy it.
_WIDENS: dict[FieldType, frozenset[FieldType]] = {
    FieldType.BOOL: frozenset({FieldType.BOOL}),
    FieldType.INT32: frozenset({FieldType.INT32}),
    FieldType.INT64: frozenset({FieldType.INT64, FieldType.INT32}),
    FieldType.FLOAT32: frozenset({FieldType.FLOAT32}),
    FieldType.FLOAT64: frozenset({FieldType.FLOAT64, FieldType.FLOAT32}),
    FieldType.STRING: frozenset({FieldType.STRING}),
    FieldType.BYTES: frozenset({FieldType.BYTES}),
    FieldType.FLOAT64_LIST: frozenset({FieldType.FLOAT64_LIST}),
    FieldType.INT64_LIST: frozenset({FieldType.INT64_LIST}),
}

#: Types whose values make unstable partitioning keys (rounding and
#: representation noise scatter "equal" readings across instances).
FLOAT_TYPES: frozenset[FieldType] = frozenset(
    {FieldType.FLOAT32, FieldType.FLOAT64}
)

#: Integer types accepted by direct partitioning's index field.
INTEGER_TYPES: frozenset[FieldType] = frozenset(
    {FieldType.INT32, FieldType.INT64}
)


def is_assignable(produced: FieldType, required: FieldType) -> bool:
    """Whether a ``produced`` wire type satisfies a ``required`` one."""
    return produced in _WIDENS[required]


def unsatisfied_requirements(
    produced: PacketSchema, required: PacketSchema
) -> list[str]:
    """Explain every way ``produced`` fails to satisfy ``required``.

    The contract is subset-based: the producer may carry extra fields,
    but every required field must exist with an assignable type.
    Returns human-ready problem strings; empty means compatible.
    """
    problems: list[str] = []
    for name, req_type in required:
        try:
            got = produced.type_of(name)
        except KeyError:
            problems.append(
                f"field {name!r} ({req_type.value}) is not produced upstream"
            )
            continue
        if not is_assignable(got, req_type):
            problems.append(
                f"field {name!r}: upstream emits {got.value}, "
                f"consumer requires {req_type.value}"
            )
    return problems


def describe_schema(schema: PacketSchema) -> str:
    """Compact ``name:type`` rendering for diagnostics."""
    return "{" + ", ".join(f"{n}:{t.value}" for n, t in schema) + "}"
