"""Static verifier for cluster deployment plans (NEPG130–139).

PR 6 made misdeployment possible: a :class:`~repro.cluster.spec.WorkerSpec`
set wires real processes to real ports, and a bad pin map, a port
collision, or a non-deterministically partitioned cross-process link
only surfaces as a spawn-time crash or — worse — a silent exactly-once
violation after a worker restart.  This pass front-loads those into
structured diagnostics, exactly as :mod:`repro.analysis.graphcheck`
does for graphs:

===========  ========  =====================================================
code         severity  meaning
===========  ========  =====================================================
NEPG130      error     malformed cluster spec / unsound instance assignment
NEPG131      error     pin override names an unknown operator
NEPG132      error     pin override targets an out-of-range worker
NEPG133      error     TCP port collision (data/control/reserved) across workers
NEPG134      error     unix-socket path collision (or malformed unix endpoint)
NEPG135      error     worker spec set inconsistent (ids/endpoints/plan drift)
NEPG136      error     non-deterministic partitioning on a cross-worker link
NEPG137      error     config drift between per-worker descriptor configs
NEPG138      error     exactly-once infeasible on a cross-worker link
NEPG139      warning   worker hosts no operator instances (idle shard)
===========  ========  =====================================================

NEPG136 is the *promotion* of the single-process NEPG122 warning: an
unseeded shuffle into a parallel stage is merely non-reproducible
inside one process, but once the plan assigns the link across worker
processes, replay after a crash re-routes packets onto different wire
ids and the :class:`~repro.net.framing.SequenceTracker` dedup can no
longer guarantee exactly-once — so the warning becomes an error and
the NEPG122 finding for that link is superseded.

Three entry points:

- :func:`verify_plan` — graph + :class:`DeploymentPlan` (+ optional
  spec set); what :meth:`ClusterCoordinator.launch` gates on.
- :func:`verify_cluster` / :func:`verify_cluster_file` — a *cluster
  spec* JSON document (see below); the ``repro analyze --cluster``
  face.

A cluster spec file names either a planner input::

    {"descriptor_path": "fig1_relay.json", "workers": 2,
     "scheme": "round-robin", "pin": {"sender": 0},
     "endpoints": {"0": ["127.0.0.1", 7001], "1": ["127.0.0.1", 7002]},
     "control_ports": [7101, 7102], "reserved_ports": [9090]}

(``descriptor`` may be inline; ``endpoints``/``control_ports`` are
optional — without them port checks are skipped, because the
coordinator reserves kernel-assigned ports at launch) — or an explicit
``worker_specs`` list of :class:`WorkerSpec` JSON objects, the
inspect-by-hand form, which additionally enables the spec-set
consistency (NEPG135) and config-drift (NEPG137) passes.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.analysis.diagnostics import DiagnosticReport, Severity
from repro.analysis.graphcheck import verify_descriptor

__all__ = [
    "PlanVerifier",
    "verify_cluster",
    "verify_cluster_file",
    "verify_plan",
]

#: Endpoint: (host, port); a host of the form ``unix:/path`` selects a
#: Unix-domain socket and the port is ignored.
Endpoint = Tuple[str, int]


def _link_where(from_op: str, to_op: str, stream: str) -> str:
    return f"link {from_op!r}->{to_op!r}/{stream!r}"


class PlanVerifier:
    """Runs the NEPG130–139 passes over one deployment.

    Parameters
    ----------
    graph:
        The validated (or at least error-free) ``StreamProcessingGraph``.
    plan:
        The :class:`~repro.core.distributed.DeploymentPlan` under test.
    specs:
        Optional :class:`~repro.cluster.spec.WorkerSpec` sequence; when
        given, endpoint/control-port collision checks and the spec-set
        consistency + config-drift passes run too.
    reserved_ports:
        TCP ports the deployment must not touch (externally owned).
    """

    def __init__(
        self,
        graph: Any,
        plan: Any,
        specs: Optional[Sequence[Any]] = None,
        reserved_ports: Iterable[int] = (),
    ) -> None:
        self.graph = graph
        self.plan = plan
        self.specs = list(specs) if specs is not None else None
        self.reserved_ports = sorted(set(reserved_ports))
        self.report = DiagnosticReport(
            subject=f"deployment plan for graph {graph.name!r}"
        )
        #: ``where`` keys of links promoted by NEPG136 (so a caller can
        #: suppress the superseded NEPG122 warnings).
        self.promoted_links: Set[str] = set()

    # -- entry point ---------------------------------------------------------
    def run(self) -> DiagnosticReport:
        if not self.check_assignment():
            return self.report
        if self.specs is not None:
            self.check_spec_set()
            self.check_config_drift()
            self.check_ports()
        self.check_cross_worker_links()
        self.check_exactly_once()
        self.check_idle_workers()
        return self.report

    # -- pass 1: assignment soundness (NEPG130) ------------------------------
    def check_assignment(self) -> bool:
        """Every instance placed exactly once on an in-range worker.

        Returns False when the assignment is too broken for the
        placement-dependent passes to run.
        """
        rep = self.report
        ok = True
        n_workers = int(self.plan.n_workers)
        if n_workers <= 0:
            rep.add(
                "NEPG130",
                Severity.ERROR,
                f"plan declares {n_workers} workers; a deployment needs "
                "at least one",
                where="plan",
            )
            return False
        operators = self.graph.operators
        seen: Set[Tuple[str, int]] = set()
        for (op, idx), worker in sorted(self.plan.assignment.items()):
            key = f"({op!r}, {idx})"
            if op not in operators:
                rep.add(
                    "NEPG130",
                    Severity.ERROR,
                    f"assignment places instance {key} of an operator the "
                    "graph never declared",
                    where="plan",
                    hint="regenerate the plan from the deployed graph",
                )
                ok = False
                continue
            if not 0 <= idx < operators[op].parallelism:
                rep.add(
                    "NEPG130",
                    Severity.ERROR,
                    f"assignment places instance {key} but {op!r} has "
                    f"parallelism {operators[op].parallelism}",
                    where="plan",
                )
                ok = False
                continue
            if not 0 <= worker < n_workers:
                rep.add(
                    "NEPG130",
                    Severity.ERROR,
                    f"instance {key} is assigned to worker {worker} of a "
                    f"{n_workers}-worker plan",
                    where="plan",
                    hint="worker indexes run 0..n_workers-1",
                )
                ok = False
            seen.add((op, idx))
        for name, spec in operators.items():
            for idx in range(spec.parallelism):
                if (name, idx) not in seen:
                    rep.add(
                        "NEPG130",
                        Severity.ERROR,
                        f"instance ({name!r}, {idx}) is missing from the "
                        "assignment; the operator would silently not run",
                        where="plan",
                        hint="every (operator, instance) pair needs a worker",
                    )
                    ok = False
        return ok

    # -- pass 2: spec-set consistency (NEPG135) ------------------------------
    def check_spec_set(self) -> None:
        """Worker ids cover 0..n-1 once; endpoints and plans agree."""
        rep = self.report
        specs = self.specs or []
        n_workers = int(self.plan.n_workers)
        ids = [s.worker_id for s in specs]
        expected = list(range(n_workers))
        if sorted(ids) != expected:
            rep.add(
                "NEPG135",
                Severity.ERROR,
                f"worker spec set carries ids {sorted(ids)} for a "
                f"{n_workers}-worker plan (expected exactly {expected})",
                where="worker specs",
                hint="one spec per worker, ids 0..n_workers-1, no repeats",
            )
            return
        canonical = specs[0]
        for spec in specs[1:]:
            if spec.endpoints != canonical.endpoints:
                rep.add(
                    "NEPG135",
                    Severity.ERROR,
                    f"worker {spec.worker_id}'s endpoint map disagrees with "
                    f"worker {canonical.worker_id}'s; peers would dial "
                    "different addresses for the same shard",
                    where="worker specs",
                    hint="ship the identical endpoint map to every worker",
                )
            if spec.plan != canonical.plan:
                rep.add(
                    "NEPG135",
                    Severity.ERROR,
                    f"worker {spec.worker_id}'s deployment plan disagrees "
                    f"with worker {canonical.worker_id}'s; wire ids derive "
                    "from the shared plan, so frames would cross-connect",
                    where="worker specs",
                )
        for spec in specs:
            if spec.worker_id not in spec.endpoints:
                rep.add(
                    "NEPG135",
                    Severity.ERROR,
                    f"worker {spec.worker_id} has no entry in the endpoint "
                    "map; it cannot bind its own data-plane listener",
                    where="worker specs",
                )

    # -- pass 3: config drift (NEPG137) --------------------------------------
    def check_config_drift(self) -> None:
        """Per-worker descriptor ``config`` blocks must be identical.

        Watermarks, replay windows, and flush deadlines are *protocol*
        parameters between peers: a worker flushing 1 MB batches into a
        peer whose replay window was configured smaller wedges the link.
        """
        specs = self.specs or []
        if not specs:
            return
        canonical = specs[0].descriptor.get("config", {})
        for spec in specs[1:]:
            config = spec.descriptor.get("config", {})
            if config == canonical:
                continue
            keys = sorted(
                k
                for k in set(canonical) | set(config)
                if canonical.get(k) != config.get(k)
            )
            self.report.add(
                "NEPG137",
                Severity.ERROR,
                f"worker {spec.worker_id}'s descriptor config drifts from "
                f"worker {specs[0].worker_id}'s on {keys}; watermark and "
                "replay-window mismatches between peers wedge the link "
                "instead of failing loudly",
                where="worker specs",
                hint="generate every spec from one descriptor (the "
                "coordinator does this for you)",
            )

    # -- pass 4: ports and socket paths (NEPG133/NEPG134) --------------------
    def check_ports(self) -> None:
        """No two listeners may claim one TCP port or one socket path."""
        rep = self.report
        specs = self.specs or []
        if not specs:
            return
        #: (host, port) -> list of claimants, for TCP endpoints.
        tcp_claims: Dict[Tuple[str, int], List[str]] = {}
        #: socket path -> list of claimants, for unix endpoints.
        unix_claims: Dict[str, List[str]] = {}
        endpoints = specs[0].endpoints
        for worker, (host, port) in sorted(endpoints.items()):
            if host.startswith("unix:"):
                path = host[len("unix:") :]
                if not path:
                    rep.add(
                        "NEPG134",
                        Severity.ERROR,
                        f"worker {worker}'s unix endpoint has an empty "
                        "socket path",
                        where="endpoints",
                    )
                    continue
                unix_claims.setdefault(os.path.normpath(path), []).append(
                    f"worker {worker} data"
                )
            else:
                tcp_claims.setdefault((host, int(port)), []).append(
                    f"worker {worker} data"
                )
        for spec in specs:
            tcp_claims.setdefault(("127.0.0.1", int(spec.control_port)), []).append(
                f"worker {spec.worker_id} control"
            )
        for port in self.reserved_ports:
            for host in {h for h, _ in tcp_claims}:
                tcp_claims.setdefault((host, port), []).append("reserved")
        for (host, port), claimants in sorted(tcp_claims.items()):
            if len(claimants) > 1:
                rep.add(
                    "NEPG133",
                    Severity.ERROR,
                    f"TCP port {host}:{port} is claimed by "
                    f"{' and '.join(claimants)}; the second bind fails at "
                    "spawn (or the workers talk to the wrong peer)",
                    where="endpoints",
                    hint="reserve data and control ports in one batch "
                    "(repro.cluster.ports.reserve_ports)",
                )
        for path, claimants in sorted(unix_claims.items()):
            if len(claimants) > 1:
                rep.add(
                    "NEPG134",
                    Severity.ERROR,
                    f"unix socket path {path!r} is claimed by "
                    f"{' and '.join(claimants)}; the second worker silently "
                    "replaces the first's socket file",
                    where="endpoints",
                    hint="give every worker a distinct socket file",
                )

    # -- pass 5: cross-worker partitioning (NEPG136) -------------------------
    def _workers_of(self, op: str) -> Set[int]:
        return {
            worker
            for (name, _idx), worker in self.plan.assignment.items()
            if name == op
        }

    def _crossing_links(self) -> List[Any]:
        """Links whose sender/receiver instances span >1 worker."""
        crossing = []
        for lk in self.graph.links:
            span = self._workers_of(lk.from_op) | self._workers_of(lk.to_op)
            if len(span) > 1:
                crossing.append(lk)
        return crossing

    def check_cross_worker_links(self) -> None:
        """NEPG136: promote NEPG122 to an error on process-crossing links."""
        for lk in self._crossing_links():
            where = _link_where(lk.from_op, lk.to_op, lk.stream)
            try:
                scheme = lk.resolved_partitioning()
            except Exception:  # noqa: BLE001 — NEPG109 already reported it
                continue
            if getattr(scheme, "deterministic", True):
                continue
            self.promoted_links.add(where)
            self.report.add(
                "NEPG136",
                Severity.ERROR,
                f"{scheme.name} partitioning routes non-deterministically "
                f"and the plan assigns this link across worker processes; "
                "replay after a crash would re-route packets onto "
                "different wire ids, breaking exactly-once delivery "
                "(supersedes the single-process NEPG122 warning)",
                where=where,
                hint="seed the scheme (e.g. shuffle with an explicit seed) "
                "or switch to round-robin/fields partitioning",
            )

    # -- pass 6: exactly-once feasibility (NEPG138) --------------------------
    def check_exactly_once(self) -> None:
        """Cross-worker links need the recovery protocol and a replay
        window that can hold at least one full flush batch."""
        config = self.graph.config
        for lk in self._crossing_links():
            where = _link_where(lk.from_op, lk.to_op, lk.stream)
            if not config.transport_recovery:
                self.report.add(
                    "NEPG138",
                    Severity.ERROR,
                    "transport_recovery is disabled but this link crosses "
                    "a process boundary; a worker crash loses every "
                    "in-flight frame with no ack-replay to recover them",
                    where=where,
                    hint="enable transport_recovery (the default) for "
                    "cluster deployments",
                )
            elif config.transport_replay_window < config.buffer_capacity:
                self.report.add(
                    "NEPG138",
                    Severity.ERROR,
                    f"transport_replay_window ({config.transport_replay_window}) "
                    f"is smaller than buffer_capacity ({config.buffer_capacity}); "
                    "one capacity flush produces a frame that can never fit "
                    "the replay window, wedging the sender on this "
                    "cross-worker link",
                    where=where,
                    hint="keep transport_replay_window >= buffer_capacity",
                )

    # -- pass 7: idle workers (NEPG139) --------------------------------------
    def check_idle_workers(self) -> None:
        assigned = {worker for worker in self.plan.assignment.values()}
        idle = sorted(set(range(int(self.plan.n_workers))) - assigned)
        if idle:
            self.report.add(
                "NEPG139",
                Severity.WARNING,
                f"workers {idle} host no operator instances; they spawn, "
                "bind ports, and burn memory for nothing",
                where="plan",
                hint="shrink n_workers or rebalance the pin map",
            )


# -- module-level entry points ------------------------------------------------


def verify_plan(
    graph: Any,
    plan: Any,
    specs: Optional[Sequence[Any]] = None,
    reserved_ports: Iterable[int] = (),
) -> DiagnosticReport:
    """Verify one deployment plan (graph must already be error-free)."""
    return PlanVerifier(
        graph, plan, specs=specs, reserved_ports=reserved_ports
    ).run()


def verify_cluster(
    spec: Any, base_dir: str = ".", subject: str = "cluster spec"
) -> DiagnosticReport:
    """Verify a cluster spec document (see module docstring).

    Runs the full graph verifier over the deployed descriptor first —
    a cluster report therefore includes NEPG101–122 findings — then the
    plan passes; NEPG122 warnings for links promoted to NEPG136 are
    suppressed in favour of the error.
    """
    report = DiagnosticReport(subject=subject)
    if not _cluster_shape_ok(spec, report):
        return report

    explicit_specs: Optional[List[Any]] = None
    if "worker_specs" in spec:
        explicit_specs = _parse_worker_specs(spec["worker_specs"], report)
        if explicit_specs is None:
            return report
        descriptor = explicit_specs[0].descriptor
    else:
        descriptor = _load_descriptor(spec, base_dir, report)
        if descriptor is None:
            return report

    graph_report = verify_descriptor(descriptor)
    if graph_report.errors():
        report.extend(graph_report)
        return report

    from repro.core.graph import StreamProcessingGraph

    graph = StreamProcessingGraph.from_descriptor(descriptor, validate_wiring=False)
    if explicit_specs is not None:
        plan = explicit_specs[0].deployment_plan()
        verifier = PlanVerifier(
            graph,
            plan,
            specs=explicit_specs,
            reserved_ports=spec.get("reserved_ports", ()),
        )
    else:
        plan = _lenient_plan(graph, spec, report)
        if plan is None:
            report.extend(graph_report)
            return report
        verifier = PlanVerifier(
            graph,
            plan,
            specs=_synthesized_specs(spec, descriptor, plan, report),
            reserved_ports=spec.get("reserved_ports", ()),
        )
    verifier.run()
    # Fold graph findings, dropping NEPG122 warnings superseded by the
    # promoted NEPG136 error on the same link.
    for diag in graph_report:
        if diag.code == "NEPG122" and diag.where in verifier.promoted_links:
            continue
        report.diagnostics.append(diag)
    report.extend(verifier.report)
    return report


def verify_cluster_file(path: str) -> DiagnosticReport:
    """Verify a cluster spec JSON file (parse errors become NEPG130)."""
    report = DiagnosticReport(subject=path)
    try:
        with open(path, "r", encoding="utf-8") as fh:
            spec = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        report.add(
            "NEPG130",
            Severity.ERROR,
            f"cannot read cluster spec: {exc}",
            where=path,
        )
        return report
    inner = verify_cluster(spec, base_dir=os.path.dirname(path) or ".")
    inner.subject = path
    return inner


# -- cluster-spec plumbing -----------------------------------------------------


def _cluster_shape_ok(spec: Any, report: DiagnosticReport) -> bool:
    """Dict-shape validation; every problem is one NEPG130 finding."""
    ok = True

    def bad(message: str, where: str = "cluster spec") -> None:
        nonlocal ok
        ok = False
        report.add("NEPG130", Severity.ERROR, message, where=where)

    if not isinstance(spec, dict):
        bad(f"cluster spec must be an object, got {type(spec).__name__}")
        return False
    if "worker_specs" in spec:
        if not isinstance(spec["worker_specs"], list) or not spec["worker_specs"]:
            bad("'worker_specs' must be a non-empty list of WorkerSpec objects")
        return ok
    has_inline = isinstance(spec.get("descriptor"), dict)
    has_path = isinstance(spec.get("descriptor_path"), str)
    if not has_inline and not has_path:
        bad(
            "cluster spec needs 'descriptor' (inline), 'descriptor_path', "
            "or 'worker_specs'"
        )
    workers = spec.get("workers", 2)
    if not isinstance(workers, int) or isinstance(workers, bool) or workers <= 0:
        bad(f"'workers' must be a positive integer, got {workers!r}")
    if spec.get("scheme", "round-robin") not in ("round-robin", "capability"):
        bad(f"unknown plan scheme {spec.get('scheme')!r}")
    if "pin" in spec and not isinstance(spec["pin"], dict):
        bad("'pin' must map operator names to worker indexes")
    if "endpoints" in spec and not isinstance(spec["endpoints"], dict):
        bad("'endpoints' must map worker ids to [host, port] pairs")
    return ok


def _load_descriptor(
    spec: Mapping[str, Any], base_dir: str, report: DiagnosticReport
) -> Optional[Dict[str, Any]]:
    if isinstance(spec.get("descriptor"), dict):
        descriptor: Dict[str, Any] = spec["descriptor"]
        return descriptor
    path = os.path.join(base_dir, spec["descriptor_path"])
    try:
        with open(path, "r", encoding="utf-8") as fh:
            loaded = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        report.add(
            "NEPG130",
            Severity.ERROR,
            f"cannot read deployed descriptor: {exc}",
            where=path,
        )
        return None
    if not isinstance(loaded, dict):
        report.add(
            "NEPG130",
            Severity.ERROR,
            f"deployed descriptor must be an object, got {type(loaded).__name__}",
            where=path,
        )
        return None
    return loaded


def _parse_worker_specs(
    raw: Sequence[Any], report: DiagnosticReport
) -> Optional[List[Any]]:
    from repro.cluster.spec import WorkerSpec
    from repro.util.errors import NeptuneError

    specs: List[Any] = []
    for i, entry in enumerate(raw):
        try:
            specs.append(WorkerSpec.from_json(json.dumps(entry)))
        except (NeptuneError, TypeError, ValueError) as exc:
            report.add(
                "NEPG130",
                Severity.ERROR,
                f"worker_specs[{i}] is not a valid WorkerSpec: {exc}",
                where="worker specs",
            )
            return None
    return specs


def _lenient_plan(
    graph: Any, spec: Mapping[str, Any], report: DiagnosticReport
) -> Optional[Any]:
    """Build the plan the spec describes, reporting pin faults
    (NEPG131/132) instead of raising, and applying the valid pins."""
    from repro.cluster.spec import build_plan
    from repro.util.errors import NeptuneError

    n_workers = int(spec.get("workers", 2))
    pin_raw = spec.get("pin") or {}
    valid_pin: Dict[str, int] = {}
    for op, worker in pin_raw.items():
        if op not in graph.operators:
            report.add(
                "NEPG131",
                Severity.ERROR,
                f"pin override names operator {op!r}, which the deployed "
                "graph never declared",
                where="pin",
                hint="fix the name or drop the stale pin entry",
            )
        elif (
            not isinstance(worker, int)
            or isinstance(worker, bool)
            or not 0 <= worker < n_workers
        ):
            report.add(
                "NEPG132",
                Severity.ERROR,
                f"pin for {op!r} targets worker {worker!r} of a "
                f"{n_workers}-worker deployment",
                where="pin",
                hint=f"worker indexes run 0..{n_workers - 1}",
            )
        else:
            valid_pin[op] = worker
    try:
        return build_plan(
            graph,
            n_workers,
            scheme=str(spec.get("scheme", "round-robin")),
            capabilities=spec.get("capabilities"),
            pin=valid_pin,
        )
    except NeptuneError as exc:
        report.add(
            "NEPG130",
            Severity.ERROR,
            f"cannot build the deployment plan: {exc}",
            where="plan",
        )
        return None


def _synthesized_specs(
    spec: Mapping[str, Any],
    descriptor: Dict[str, Any],
    plan: Any,
    report: DiagnosticReport,
) -> Optional[List[Any]]:
    """WorkerSpecs from explicit ``endpoints``/``control_ports``, so the
    port passes can run; None (skipping them) when the spec leaves port
    assignment to the coordinator."""
    endpoints_raw = spec.get("endpoints")
    if endpoints_raw is None:
        return None
    from repro.cluster.spec import WorkerSpec

    try:
        endpoints: Dict[int, Endpoint] = {
            int(w): (str(ep[0]), int(ep[1])) for w, ep in endpoints_raw.items()
        }
    except (TypeError, ValueError, IndexError) as exc:
        report.add(
            "NEPG130",
            Severity.ERROR,
            f"malformed 'endpoints' map: {exc}",
            where="endpoints",
        )
        return None
    control_ports_raw = spec.get("control_ports", [])
    plan_raw = {
        "n_workers": plan.n_workers,
        "assignment": [
            [op, idx, worker]
            for (op, idx), worker in sorted(plan.assignment.items())
        ],
    }
    specs: List[Any] = []
    for w in range(int(plan.n_workers)):
        control = (
            int(control_ports_raw[w]) if w < len(control_ports_raw) else -(w + 1)
        )
        specs.append(
            WorkerSpec(
                worker_id=w,
                descriptor=descriptor,
                plan=plan_raw,
                endpoints=endpoints,
                control_port=control,
            )
        )
    return specs
