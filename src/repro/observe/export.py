"""Exporters: Prometheus text exposition and JSON snapshots."""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.observe.instruments import InstrumentSample, LabelsKey, TelemetryRegistry
from repro.observe.observer import RuntimeObserver

__all__ = ["snapshot", "to_json", "to_prometheus"]


def _escape_label_value(value: str) -> str:
    """Escape a label value per text format 0.0.4: ``\\``, ``"``, newline."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help(value: str) -> str:
    """Escape HELP text: only ``\\`` and newline (quotes stay literal)."""
    return value.replace("\\", "\\\\").replace("\n", "\\n")


def _labels_text(labels: LabelsKey, extra: str = "") -> str:
    parts = [f'{k}="{_escape_label_value(v)}"' for k, v in labels]
    if extra:
        parts.append(extra)
    if not parts:
        return ""
    return "{" + ",".join(parts) + "}"


def _fmt(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def to_prometheus(registry: TelemetryRegistry) -> str:
    """Render the registry in Prometheus text exposition format 0.0.4."""
    lines: List[str] = []
    announced: Dict[str, str] = {}
    for sample in registry.collect():
        if sample.name not in announced:
            if sample.help:
                lines.append(f"# HELP {sample.name} {_escape_help(sample.help)}")
            lines.append(f"# TYPE {sample.name} {sample.kind}")
            announced[sample.name] = sample.kind
        if sample.kind == "histogram":
            _render_histogram(lines, sample)
        else:
            lines.append(f"{sample.name}{_labels_text(sample.labels)} {_fmt(sample.value)}")
    return "\n".join(lines) + "\n" if lines else ""


def _render_histogram(lines: List[str], sample: InstrumentSample) -> None:
    hist = sample.histogram
    assert hist is not None
    for bound, cumulative in hist.cumulative_buckets():
        le = _labels_text(sample.labels, f'le="{_fmt(bound)}"')
        lines.append(f"{sample.name}_bucket{le} {cumulative}")
    base = _labels_text(sample.labels)
    lines.append(f"{sample.name}_sum{base} {_fmt(hist.sum)}")
    lines.append(f"{sample.name}_count{base} {hist.count}")


def snapshot(observer: RuntimeObserver) -> Dict[str, Any]:
    """JSON-friendly dump of instruments, timeline, and traces."""
    instruments: List[Dict[str, Any]] = []
    for sample in observer.registry.collect():
        entry: Dict[str, Any] = {
            "name": sample.name,
            "kind": sample.kind,
            "labels": dict(sample.labels),
            "value": sample.value,
        }
        if sample.histogram is not None:
            entry["count"] = sample.histogram.count
            entry["buckets"] = [
                {"le": bound, "cumulative": c}
                for bound, c in sample.histogram.cumulative_buckets()
                if bound != float("inf")
            ]
        instruments.append(entry)
    traces = {
        str(tid): [span.as_dict() for span in spans]
        for tid, spans in sorted(observer.collector.traces().items())
    }
    return {
        "instruments": instruments,
        "timeline": [e.as_dict() for e in observer.timeline.snapshot()],
        "timeline_evicted": observer.timeline.evicted,
        "timeline_dropped": observer.timeline.dropped,
        "traces": traces,
        "traces_dropped_spans": observer.collector.dropped,
    }


def to_json(observer: RuntimeObserver, indent: int = 2) -> str:
    """The :func:`snapshot` serialized (non-JSON attrs stringified)."""
    return json.dumps(snapshot(observer), indent=indent, default=str, sort_keys=True)
