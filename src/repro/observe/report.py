"""Human-readable reports: per-stage latency breakdown, timeline dump.

The breakdown's "coverage" column is the honesty check the CLI's
acceptance rides on: stages are contiguous by construction, so per
trace the stage-duration sum equals the measured end-to-end latency
(max span end − min span start) up to float rounding.  A coverage far
from 100% means a hop was lost (e.g. the trace cap was hit), and the
table says so instead of silently under-reporting.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.observe.timeline import EventTimeline
from repro.observe.tracing import STAGES, SpanRecord, TraceCollector

__all__ = [
    "format_breakdown",
    "format_timeline",
    "stage_stats",
    "trace_summaries",
]


def _percentile(sorted_values: List[float], p: float) -> float:
    if not sorted_values:
        return 0.0
    k = (len(sorted_values) - 1) * p / 100.0
    lo = int(k)
    hi = min(lo + 1, len(sorted_values) - 1)
    return sorted_values[lo] + (sorted_values[hi] - sorted_values[lo]) * (k - lo)


def stage_stats(collector: TraceCollector) -> Dict[str, Dict[str, float]]:
    """Per-stage duration statistics (seconds) across all spans."""
    by_stage: Dict[str, List[float]] = {stage: [] for stage in STAGES}
    for span in collector.all_spans():
        by_stage.setdefault(span.stage, []).append(span.duration)
    out: Dict[str, Dict[str, float]] = {}
    for stage, durations in by_stage.items():
        if not durations:
            continue
        durations.sort()
        out[stage] = {
            "count": float(len(durations)),
            "mean": sum(durations) / len(durations),
            "p50": _percentile(durations, 50.0),
            "p95": _percentile(durations, 95.0),
            "max": durations[-1],
            "total": sum(durations),
        }
    return out


def trace_summaries(collector: TraceCollector) -> List[Dict[str, float]]:
    """Per-trace totals: hop count, stage sum, end-to-end, coverage."""
    out: List[Dict[str, float]] = []
    for tid, spans in sorted(collector.traces().items()):
        stage_sum = sum(s.duration for s in spans)
        e2e = max(s.end for s in spans) - min(s.start for s in spans)
        out.append(
            {
                "trace_id": float(tid),
                "hops": float(max(s.hop for s in spans) + 1),
                "spans": float(len(spans)),
                "stage_sum": stage_sum,
                "end_to_end": e2e,
                "coverage": stage_sum / e2e if e2e > 0 else 1.0,
            }
        )
    return out


def _ms(seconds: float) -> str:
    return f"{seconds * 1e3:9.3f}"


def format_breakdown(collector: TraceCollector) -> str:
    """The ``repro trace`` per-stage latency breakdown table."""
    stats = stage_stats(collector)
    summaries = trace_summaries(collector)
    if not stats or not summaries:
        return "no traces collected (is sampling enabled?)"
    grand_total = sum(s["total"] for s in stats.values())
    lines = [
        "per-stage latency breakdown (ms)",
        f"{'stage':<12} {'count':>7} {'mean':>9} {'p50':>9} {'p95':>9} {'max':>9} {'share':>7}",
    ]
    for stage in STAGES:
        s = stats.get(stage)
        if s is None:
            continue
        share = s["total"] / grand_total if grand_total > 0 else 0.0
        lines.append(
            f"{stage:<12} {int(s['count']):>7} {_ms(s['mean'])} {_ms(s['p50'])} "
            f"{_ms(s['p95'])} {_ms(s['max'])} {share * 100:>6.1f}%"
        )
    n = len(summaries)
    mean_e2e = sum(s["end_to_end"] for s in summaries) / n
    mean_sum = sum(s["stage_sum"] for s in summaries) / n
    mean_cov = sum(s["coverage"] for s in summaries) / n
    mean_hops = sum(s["hops"] for s in summaries) / n
    lines.append("")
    lines.append(
        f"traces: {n}  mean hops: {mean_hops:.1f}  "
        f"mean end-to-end: {mean_e2e * 1e3:.3f}ms  "
        f"mean stage sum: {mean_sum * 1e3:.3f}ms  "
        f"coverage: {mean_cov * 100:.1f}%"
    )
    return "\n".join(lines)


def format_trace(trace_id: int, spans: List[SpanRecord]) -> str:
    """One trace, hop by hop, stage by stage."""
    lines = [f"trace {trace_id}:"]
    for span in spans:
        lines.append(
            f"  hop {span.hop} {span.stage:<12} {_ms(span.duration)}ms  op={span.operator}"
        )
    total = sum(s.duration for s in spans)
    lines.append(f"  total {_ms(total)}ms")
    return "\n".join(lines)


def format_timeline(timeline: EventTimeline, limit: int = 50) -> str:
    """The most recent ``limit`` events plus per-kind totals."""
    events = timeline.snapshot()
    counts = timeline.counts()
    lines = ["event timeline"]
    for key, n in sorted(counts.items()):
        lines.append(f"  {key:<32} x{n}")
    shown = events[-limit:]
    if shown:
        lines.append("")
        base = shown[0].ts
        for event in shown:
            attrs = " ".join(f"{k}={v}" for k, v in sorted(event.attrs.items()))
            lines.append(
                f"  +{event.ts - base:9.4f}s {event.category}.{event.name} {attrs}".rstrip()
            )
    if len(events) > limit:
        lines.append(f"  ... ({len(events) - limit} earlier events not shown)")
    if timeline.evicted:
        lines.append(f"  ({timeline.evicted} older events evicted from the ring)")
    return "\n".join(lines)
