"""Online SLO monitors and adaptive trace sampling (the health engine).

PR 3 made the runtime's mechanisms *visible* (registry, timeline,
traces); this module makes them *judged*.  A :class:`HealthEngine`
evaluates declarative :class:`SLO` objectives against the telemetry
registry on a scan loop, runs a breach/recover state machine per
objective (with consecutive-scan hysteresis, like the watermark gap in
§III-B4 prevents oscillation), lands every transition on the event
timeline as ``health.slo_breach`` / ``health.slo_recover``, and
exports ``neptune_slo_*`` series.

Supported objective kinds:

==================  ====================================================
kind                breach condition (evaluated per scan)
==================  ====================================================
``p99_latency``     p99 batch latency of the operator > threshold (s)
``e2e_delay``       p99 traced end-to-end latency > threshold (s)
``throughput_floor``  packets_in rate of the operator < threshold (/s)
``buffer_occupancy``  inbound channel bytes of the operator > threshold
==================  ====================================================

An attached :class:`AdaptiveSampler` closes the feedback loop the
paper leaves open: while a region is in breach, the sources feeding it
are sampled at ``hot_every`` (dense per-hop spans exactly where
diagnosis needs them); once healthy, rates decay multiplicatively back
to the base rate.  The controller is deterministic — counters, not
randomness — so identical scan sequences produce identical sampling
decisions (regression-tested).

Everything here is scan-time work: the runtime's hot paths are never
touched.  A scan is O(instruments) via the same pull-based bridge
scrape ``repro metrics`` uses.
"""

from __future__ import annotations

import threading
import time
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.observe.instruments import TelemetryRegistry
from repro.observe.observer import RuntimeObserver

__all__ = [
    "SLO",
    "SLO_KINDS",
    "AdaptiveSampler",
    "HealthEngine",
    "MonitorState",
    "default_slos",
    "graph_regions",
]

#: The objective kinds :class:`HealthEngine` can evaluate.
SLO_KINDS: Tuple[str, ...] = (
    "p99_latency",
    "e2e_delay",
    "throughput_floor",
    "buffer_occupancy",
)


class SLO:
    """One declarative service-level objective.

    Parameters
    ----------
    name:
        Unique monitor name (the ``slo`` label on exported series).
    kind:
        One of :data:`SLO_KINDS`.
    threshold:
        Breach threshold — seconds for the latency kinds, packets/sec
        for ``throughput_floor``, bytes for ``buffer_occupancy``.
    operator:
        Target operator (bare graph name).  ``e2e_delay`` is job-wide
        and ignores it.
    for_scans / clear_scans:
        Hysteresis: consecutive breaching scans before a breach fires,
        and consecutive healthy scans before it clears.
    warmup_scans:
        Scans skipped before evaluation starts (rates need a delta,
        and a job's first packets always look slow).
    """

    __slots__ = (
        "name",
        "kind",
        "threshold",
        "operator",
        "for_scans",
        "clear_scans",
        "warmup_scans",
    )

    def __init__(
        self,
        name: str,
        kind: str,
        threshold: float,
        operator: Optional[str] = None,
        for_scans: int = 2,
        clear_scans: int = 2,
        warmup_scans: int = 1,
    ) -> None:
        if kind not in SLO_KINDS:
            raise ValueError(f"unknown SLO kind {kind!r}; expected one of {SLO_KINDS}")
        if threshold <= 0:
            raise ValueError(f"threshold must be positive: {threshold}")
        if for_scans < 1 or clear_scans < 1:
            raise ValueError("for_scans and clear_scans must be >= 1")
        if warmup_scans < 0:
            raise ValueError(f"warmup_scans must be >= 0: {warmup_scans}")
        if kind != "e2e_delay" and operator is None:
            raise ValueError(f"SLO kind {kind!r} needs a target operator")
        self.name = name
        self.kind = kind
        self.threshold = threshold
        self.operator = operator
        self.for_scans = for_scans
        self.clear_scans = clear_scans
        self.warmup_scans = warmup_scans


class MonitorState:
    """Breach/recover state machine for one :class:`SLO`."""

    __slots__ = (
        "slo",
        "status",
        "bad_scans",
        "good_scans",
        "scans",
        "breaches",
        "breached_at",
        "last_value",
        "_last_total",
        "_last_ts",
    )

    def __init__(self, slo: SLO) -> None:
        self.slo = slo
        self.status = "ok"
        self.bad_scans = 0
        self.good_scans = 0
        self.scans = 0
        self.breaches = 0
        self.breached_at: Optional[float] = None
        self.last_value: Optional[float] = None
        self._last_total: Optional[float] = None  # throughput delta base
        self._last_ts: Optional[float] = None

    @property
    def breached(self) -> bool:
        """Whether the monitor is currently in breach."""
        return self.status == "breach"

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly form for `repro doctor` / the CLI."""
        return {
            "slo": self.slo.name,
            "kind": self.slo.kind,
            "operator": self.slo.operator,
            "threshold": self.slo.threshold,
            "status": self.status,
            "value": self.last_value,
            "breaches": self.breaches,
            "scans": self.scans,
        }


#: ``(scan_index, source, new_rate)`` — one sampling decision.
SamplingDecision = Tuple[int, str, int]


class AdaptiveSampler:
    """Deterministic feedback controller over a tracer's sampling rates.

    While a source feeds a breaching region its rate is pinned to
    ``hot_every``; once the region is healthy the rate decays by
    ``decay``× per scan until it reaches the base rate again, at which
    point the override is dropped.  No randomness anywhere: the same
    breach schedule yields the same decision sequence.

    Note the tracer must be *enabled* (``sample_every >= 1``) when the
    job is submitted — instances cache the on/off bit at construction,
    so the controller modulates density, it cannot resurrect a tracer
    that started dark.
    """

    def __init__(
        self,
        tracer: Any,
        hot_every: int = 1,
        decay: int = 4,
        base_every: Optional[int] = None,
    ) -> None:
        if hot_every < 1:
            raise ValueError(f"hot_every must be >= 1: {hot_every}")
        if decay < 2:
            raise ValueError(f"decay must be >= 2: {decay}")
        base = int(tracer.sample_every) if base_every is None else base_every
        if base < 1:
            raise ValueError(
                f"base sampling rate must be >= 1 for adaptive sampling: {base}"
            )
        if hot_every > base:
            raise ValueError(
                f"hot_every ({hot_every}) must not be sparser than base ({base})"
            )
        self.tracer = tracer
        self.hot_every = hot_every
        self.decay = decay
        self.base_every = base
        self.decisions: List[SamplingDecision] = []
        self._current: Dict[str, int] = {}

    def rate_for(self, source: str) -> int:
        """The effective sampling rate for ``source`` right now."""
        return self._current.get(source, self.base_every)

    def observe(
        self,
        scan: int,
        hot_sources: Iterable[str],
        observer: Optional[RuntimeObserver] = None,
    ) -> List[SamplingDecision]:
        """Apply one scan's verdict; returns the decisions it produced."""
        hot = set(hot_sources)
        changed: List[SamplingDecision] = []
        for source in sorted(hot | set(self._current)):
            old = self._current.get(source, self.base_every)
            if source in hot:
                new = self.hot_every
            else:
                new = min(self.base_every, old * self.decay)
            if new == old:
                continue
            if new >= self.base_every:
                self.tracer.clear_rate(source)
                self._current.pop(source, None)
                new = self.base_every
            else:
                self.tracer.set_rate(source, new)
                self._current[source] = new
            decision = (scan, source, new)
            changed.append(decision)
            self.decisions.append(decision)
            if observer is not None:
                observer.event(
                    "health",
                    "sampling_raised" if new < old else "sampling_decayed",
                    source=source,
                    sample_every=new,
                )
                observer.registry.gauge(
                    "neptune_trace_sample_every",
                    {"source": source},
                    "Effective trace sampling interval per source",
                ).set(float(new))
        return changed


_SampleIndex = Dict[str, List[Tuple[Dict[str, str], float]]]


class HealthEngine:
    """Scans telemetry, drives the SLO state machines, exports verdicts.

    Parameters
    ----------
    observer:
        The runtime's :class:`RuntimeObserver` — registry read and
        written, timeline written, clock used for every timestamp (so
        breach events share a clock with chaos injections; see the
        chaos-attribution regression test).
    slos:
        The objectives to monitor.
    scrape:
        Optional zero-arg callable refreshing the registry from live
        runtime state before each evaluation (usually a closure over
        :func:`repro.observe.bridge.scrape_job`).  Post-hoc engines
        (evaluating an already-populated registry) pass None.
    sampler / regions:
        Optional adaptive-sampling controller plus the operator →
        feeding-sources map (see :func:`graph_regions`) that scopes it.
    interval:
        Background scan period for :meth:`start` (seconds).
    """

    def __init__(
        self,
        observer: RuntimeObserver,
        slos: Sequence[SLO],
        scrape: Optional[Callable[[], None]] = None,
        sampler: Optional[AdaptiveSampler] = None,
        regions: Optional[Mapping[str, Sequence[str]]] = None,
        interval: float = 0.05,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive: {interval}")
        names = [s.name for s in slos]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate SLO names: {sorted(names)}")
        self.observer = observer
        self.monitors: List[MonitorState] = [MonitorState(s) for s in slos]
        self.scrape = scrape
        self.sampler = sampler
        self.regions: Dict[str, List[str]] = {
            op: list(srcs) for op, srcs in (regions or {}).items()
        }
        self.interval = interval
        self.scans = 0
        self.scan_errors = 0
        #: Wall seconds spent inside :meth:`scan_once` — the engine's
        #: entire cost (it does nothing between scans), so
        #: ``scan_seconds / job wall time`` is its measured duty cycle.
        self.scan_seconds = 0.0
        # Guards the scan counters: scan_once runs on the background
        # thread while status()/benchmarks read from the caller's.
        self._stats_lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # -- evaluation --------------------------------------------------------
    def scan_once(self) -> List[Tuple[str, str]]:
        """One synchronous scan; returns ``(slo, transition)`` pairs.

        Transitions are ``"breach"`` / ``"recover"``; a steady-state
        scan returns an empty list.  Deterministic given the registry
        and collector contents — the unit tests and the adaptive-
        sampling determinism suite drive this directly.
        """
        t0 = time.perf_counter()
        now = self.observer.clock.now()
        if self.scrape is not None:
            self.scrape()
        index = self._index_registry()
        transitions: List[Tuple[str, str]] = []
        for monitor in self.monitors:
            transition = self._evaluate(monitor, index, now)
            if transition is not None:
                transitions.append((monitor.slo.name, transition))
        with self._stats_lock:
            self.scans += 1
        self._export()
        if self.sampler is not None:
            hot: set[str] = set()
            for monitor in self.monitors:
                if not monitor.breached:
                    continue
                op = monitor.slo.operator
                if op is None:
                    for sources in self.regions.values():
                        hot.update(sources)
                else:
                    hot.update(self.regions.get(op, ()))
            self.sampler.observe(self.scans, hot, self.observer)
        with self._stats_lock:
            self.scan_seconds += time.perf_counter() - t0
        return transitions

    def _index_registry(self) -> _SampleIndex:
        index: _SampleIndex = {}
        for sample in self.observer.registry.collect():
            index.setdefault(sample.name, []).append(
                (dict(sample.labels), sample.value)
            )
        return index

    def _evaluate(
        self, monitor: MonitorState, index: _SampleIndex, now: float
    ) -> Optional[str]:
        slo = monitor.slo
        monitor.scans += 1
        value = self._value_for(monitor, index, now)
        if value is None or monitor.scans <= slo.warmup_scans:
            return None
        monitor.last_value = value
        if slo.kind == "throughput_floor":
            breaching = value < slo.threshold
        else:
            breaching = value > slo.threshold
        if breaching:
            monitor.bad_scans += 1
            monitor.good_scans = 0
            if monitor.status == "ok" and monitor.bad_scans >= slo.for_scans:
                monitor.status = "breach"
                monitor.breaches += 1
                monitor.breached_at = now
                self.observer.event(
                    "health",
                    "slo_breach",
                    slo=slo.name,
                    kind=slo.kind,
                    operator=slo.operator,
                    value=value,
                    threshold=slo.threshold,
                )
                return "breach"
        else:
            monitor.good_scans += 1
            monitor.bad_scans = 0
            if monitor.status == "breach" and monitor.good_scans >= slo.clear_scans:
                monitor.status = "ok"
                duration = (
                    now - monitor.breached_at
                    if monitor.breached_at is not None
                    else 0.0
                )
                monitor.breached_at = None
                self.observer.event(
                    "health",
                    "slo_recover",
                    slo=slo.name,
                    kind=slo.kind,
                    operator=slo.operator,
                    value=value,
                    duration=duration,
                )
                return "recover"
        return None

    def _value_for(
        self, monitor: MonitorState, index: _SampleIndex, now: float
    ) -> Optional[float]:
        slo = monitor.slo
        if slo.kind == "p99_latency":
            return _max_matching(
                index.get("neptune_operator_batch_latency_seconds", []),
                {"operator": slo.operator or "", "quantile": "p99"},
            )
        if slo.kind == "buffer_occupancy":
            return _max_matching(
                index.get("neptune_flowcontrol_buffered_bytes", []),
                {"operator": slo.operator or ""},
            )
        if slo.kind == "throughput_floor":
            total = _sum_matching(
                index.get("neptune_operator_packets_in_total", []),
                {"operator": slo.operator or ""},
            )
            if total is None:
                return None
            last_total, last_ts = monitor._last_total, monitor._last_ts
            monitor._last_total, monitor._last_ts = total, now
            if last_total is None or last_ts is None or now <= last_ts:
                return None  # first sighting: no delta yet
            return (total - last_total) / (now - last_ts)
        # e2e_delay: p99 of traced end-to-end latencies (job-wide).
        durations: List[float] = []
        for spans in self.observer.collector.traces().values():
            if not spans:
                continue
            start = min(s.start for s in spans)
            end = max(s.end for s in spans)
            durations.append(max(0.0, end - start))
        if not durations:
            return None
        ordered = sorted(durations)
        idx = min(len(ordered) - 1, round(0.99 * (len(ordered) - 1)))
        return ordered[idx]

    def _export(self) -> None:
        registry: TelemetryRegistry = self.observer.registry
        registry.counter(
            "neptune_health_scans_total", None, "Health-engine scans performed"
        ).set_total(float(self.scans))
        for monitor in self.monitors:
            labels = {"slo": monitor.slo.name}
            registry.gauge(
                "neptune_slo_breached", labels, "1 while the objective is in breach"
            ).set(1.0 if monitor.breached else 0.0)
            registry.counter(
                "neptune_slo_breaches_total", labels, "Breach episodes entered"
            ).set_total(float(monitor.breaches))
            if monitor.last_value is not None:
                registry.gauge(
                    "neptune_slo_value", labels, "Last evaluated objective value"
                ).set(monitor.last_value)

    # -- reporting ---------------------------------------------------------
    def breached_monitors(self) -> List[MonitorState]:
        """Monitors currently in breach."""
        return [m for m in self.monitors if m.breached]

    def status(self) -> Dict[str, object]:
        """JSON-friendly engine summary (the CLI's ``health`` block)."""
        return {
            "scans": self.scans,
            "scan_errors": self.scan_errors,
            "scan_seconds": self.scan_seconds,
            "monitors": [m.as_dict() for m in self.monitors],
        }

    # -- background loop ---------------------------------------------------
    def start(self) -> None:
        """Launch the background scan loop. Idempotent."""
        if self._thread is not None and self._thread.is_alive():
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="neptune-health", daemon=True
        )
        self._thread.start()

    def stop(self, timeout: float = 5.0) -> None:
        """Stop the scan loop (one final scan has already happened or
        will simply be skipped — scans are idempotent)."""
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout)
        self._thread = None

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                self.scan_once()
            except Exception:
                # A dying scan must never kill the monitor thread: the
                # registry may be mid-mutation during job teardown.
                with self._stats_lock:
                    self.scan_errors += 1


def _matches(labels: Dict[str, str], want: Dict[str, str]) -> bool:
    return all(labels.get(k) == v for k, v in want.items())


def _max_matching(
    samples: List[Tuple[Dict[str, str], float]], want: Dict[str, str]
) -> Optional[float]:
    values = [v for labels, v in samples if _matches(labels, want)]
    return max(values) if values else None


def _sum_matching(
    samples: List[Tuple[Dict[str, str], float]], want: Dict[str, str]
) -> Optional[float]:
    values = [v for labels, v in samples if _matches(labels, want)]
    return sum(values) if values else None


def graph_regions(graph: Any) -> Dict[str, List[str]]:
    """Operator → sorted source operators that (transitively) feed it.

    Duck-typed over a :class:`~repro.core.graph.StreamProcessingGraph`
    (``.links`` with ``from_op`` / ``to_op``, ``.operators`` mapping
    names to specs with ``is_source``); the observe package keeps its
    no-runtime-imports rule.  A source maps to itself, so raising the
    rate "for the region in breach" works whether the breaching
    operator is the source or the sink.
    """
    upstream: Dict[str, List[str]] = {}
    for link in graph.links:
        ops = upstream.setdefault(link.to_op, [])
        if link.from_op not in ops:
            ops.append(link.from_op)
    sources = {
        name for name, spec in graph.operators.items() if getattr(spec, "is_source", False)
    }
    regions: Dict[str, List[str]] = {}
    for name in graph.operators:
        seen: set[str] = set()
        frontier = [name]
        while frontier:
            op = frontier.pop()
            if op in seen:
                continue
            seen.add(op)
            frontier.extend(upstream.get(op, ()))
        regions[name] = sorted(seen & sources)
    return regions


def default_slos(
    operators: Iterable[str],
    latency_budget: float = 0.05,
    e2e_budget: Optional[float] = 0.25,
) -> List[SLO]:
    """A sensible default objective set for ``repro doctor``: one p99
    stage-latency budget per operator plus (optionally) one job-wide
    end-to-end delay bound."""
    slos = [
        SLO(f"{op}.p99_latency", "p99_latency", latency_budget, operator=op)
        for op in sorted(operators)
    ]
    if e2e_budget is not None:
        slos.append(SLO("job.e2e_delay", "e2e_delay", e2e_budget))
    return slos
