"""Causal packet tracing: sampled trace ids, per-hop stage spans.

A :class:`Tracer` mints a :class:`TraceContext` for every
``sample_every``-th packet emitted by a source.  The context rides the
packet object to its outbound buffer; a :class:`TraceNote` (the wire
form of the context plus sender-side timestamps) rides the serialized
batch inside the frame header's trace block, across the transport, and
is closed by the receiving instance, which reports one
:class:`SpanRecord` per stage to the job's :class:`TraceCollector`.

Each hop decomposes into six *contiguous* stages::

    serialize   emit() called       -> packet appended to the buffer
    enqueue     buffer append       -> flush takes the batch
    flush       flush take          -> frame handed to the transport
    wire        transport send/put  -> receiver drains the frame
    deserialize receiver drain      -> packet decoded
    execute     packet decoded      -> operator done (or derived emit)

Contiguity is the point: for a trace that propagates source → ... →
sink (derived packets inherit the context with ``hop + 1``, and a
hop's ``execute`` stage ends exactly when the derived packet's
``serialize`` stage starts), the sum of all stage durations equals the
packet's end-to-end latency by construction — the CLI's breakdown
table is an exact decomposition, not an approximation.

All timestamps are ``time.monotonic()`` seconds.  On one machine (the
supported deployment for the multi-worker tests) ``CLOCK_MONOTONIC``
is shared across processes, so cross-resource wire spans are
meaningful too.
"""

from __future__ import annotations

import struct
import threading
from typing import Dict, List, Optional, Tuple

__all__ = [
    "STAGES",
    "LegTrace",
    "SpanRecord",
    "TraceCollector",
    "TraceContext",
    "TraceNote",
    "Tracer",
    "decode_notes",
    "encode_notes",
]

#: Stage names in causal order; every hop reports exactly these.
STAGES: Tuple[str, ...] = (
    "serialize",
    "enqueue",
    "flush",
    "wire",
    "deserialize",
    "execute",
)

#: Wire form of one note: trace_id, hop, batch_index, encode/append/
#: take/send timestamps (float64 monotonic seconds).
_NOTE = struct.Struct("<QHIdddd")
NOTE_SIZE = _NOTE.size


class TraceContext:
    """Identity of one sampled packet's journey: (trace_id, hop)."""

    __slots__ = ("trace_id", "hop")

    def __init__(self, trace_id: int, hop: int = 0) -> None:
        self.trace_id = trace_id
        self.hop = hop

    def child(self) -> "TraceContext":
        """The context a derived packet inherits (next hop)."""
        return TraceContext(self.trace_id, self.hop + 1)

    def __repr__(self) -> str:
        return f"TraceContext(trace_id={self.trace_id}, hop={self.hop})"


class TraceNote:
    """One sampled packet's sender-side record for a single hop.

    Mutable by design: the emit path stamps ``encode_ts``, the stream
    buffer stamps ``append_ts`` / ``batch_index`` / ``take_ts``, and
    the flush sink stamps ``send_ts`` just before the frame leaves.
    """

    __slots__ = (
        "trace_id",
        "hop",
        "batch_index",
        "encode_ts",
        "append_ts",
        "take_ts",
        "send_ts",
    )

    def __init__(
        self,
        trace_id: int,
        hop: int,
        encode_ts: float,
        batch_index: int = 0,
        append_ts: float = 0.0,
        take_ts: float = 0.0,
        send_ts: float = 0.0,
    ) -> None:
        self.trace_id = trace_id
        self.hop = hop
        self.batch_index = batch_index
        self.encode_ts = encode_ts
        self.append_ts = append_ts
        self.take_ts = take_ts
        self.send_ts = send_ts

    def pack_into(self, out: bytearray) -> None:
        """Append the wire form to ``out``."""
        out += _NOTE.pack(
            self.trace_id,
            self.hop & 0xFFFF,
            self.batch_index & 0xFFFFFFFF,
            self.encode_ts,
            self.append_ts,
            self.take_ts,
            self.send_ts,
        )


def encode_notes(notes: List[TraceNote]) -> bytes:
    """Serialize notes into a frame trace block."""
    out = bytearray()
    for note in notes:
        note.pack_into(out)
    return bytes(out)


def decode_notes(data: bytes) -> List[TraceNote]:
    """Parse a frame trace block; raises ValueError on a torn block."""
    if len(data) % NOTE_SIZE != 0:
        raise ValueError(
            f"trace block length {len(data)} not a multiple of {NOTE_SIZE}"
        )
    notes: List[TraceNote] = []
    for off in range(0, len(data), NOTE_SIZE):
        trace_id, hop, batch_index, enc, app, take, send = _NOTE.unpack_from(
            data, off
        )
        notes.append(
            TraceNote(
                trace_id,
                hop,
                enc,
                batch_index=batch_index,
                append_ts=app,
                take_ts=take,
                send_ts=send,
            )
        )
    return notes


class LegTrace:
    """Per-link-leg handoff of taken notes from buffer to flush sink.

    The stream buffer's take (under its flush lock) deposits stamped
    notes here; the flush sink (invoked under the same flush lock,
    immediately after) claims them.  The flush lock is the
    synchronization — this object adds none.
    """

    __slots__ = ("pending",)

    def __init__(self) -> None:
        self.pending: List[TraceNote] = []

    def claim(self) -> List[TraceNote]:
        """Take (and clear) the notes of the batch being flushed."""
        if not self.pending:
            return []
        taken = self.pending
        self.pending = []
        return taken


class Tracer:
    """Deterministic counter-based packet sampler and id allocator.

    ``sample_every=N`` traces every N-th source-emitted packet
    (per tracer, across sources); ``0`` disables tracing entirely —
    the emit hot path then pays one attribute read and one comparison.

    Per-source overrides (:meth:`set_rate`) let a feedback controller
    concentrate sampling on the sources feeding an unhealthy graph
    region: an overridden source keeps its own deterministic counter,
    so raising one source's rate never perturbs the sampling sequence
    of the others.  Overrides only matter while the tracer is enabled:
    instances cache ``sample_every > 0`` at construction, so a tracer
    built with ``sample_every=0`` stays dark for the job's lifetime.
    """

    def __init__(self, sample_every: int = 0) -> None:
        if sample_every < 0:
            raise ValueError(f"sample_every must be >= 0: {sample_every}")
        self.sample_every = sample_every
        self._counter = 0
        self._next_id = 1
        self._rates: Dict[str, int] = {}
        self._source_counters: Dict[str, int] = {}
        self._lock = threading.Lock()

    @property
    def enabled(self) -> bool:
        """Whether any packets are being sampled."""
        return self.sample_every > 0

    def set_rate(self, source: str, every: int) -> None:
        """Override ``sample_every`` for packets emitted by ``source``."""
        if every < 1:
            raise ValueError(f"per-source rate must be >= 1: {every}")
        with self._lock:
            self._rates[source] = every

    def clear_rate(self, source: str) -> None:
        """Drop a per-source override (back to the tracer-wide rate)."""
        with self._lock:
            self._rates.pop(source, None)
            self._source_counters.pop(source, None)

    def rates(self) -> Dict[str, int]:
        """Snapshot of the per-source overrides currently in force."""
        with self._lock:
            return dict(self._rates)

    def maybe_sample(self, source: Optional[str] = None) -> Optional[TraceContext]:
        """Return a fresh hop-0 context for every N-th call, else None.

        ``source`` names the emitting source operator; it selects a
        per-source rate override when one is set and is otherwise
        ignored (legacy callers pass nothing).
        """
        if self.sample_every <= 0:
            return None
        with self._lock:
            every = self.sample_every
            if source is not None and source in self._rates:
                every = self._rates[source]
                count = self._source_counters.get(source, 0) + 1
                self._source_counters[source] = count
            else:
                self._counter += 1
                count = self._counter
            if count % every != 0:
                return None
            trace_id = self._next_id
            self._next_id += 1
        return TraceContext(trace_id, 0)


class SpanRecord:
    """One closed stage of one hop of one trace.

    ``worker`` is ``None`` for spans closed in-process; the cluster
    collector stamps the closing worker's id when it merges spans from
    multiple processes into one stitched trace.
    """

    __slots__ = ("trace_id", "hop", "stage", "start", "end", "operator", "worker")

    def __init__(
        self,
        trace_id: int,
        hop: int,
        stage: str,
        start: float,
        end: float,
        operator: str,
        worker: Optional[str] = None,
    ) -> None:
        self.trace_id = trace_id
        self.hop = hop
        self.stage = stage
        self.start = start
        self.end = end
        self.operator = operator
        self.worker = worker

    @property
    def duration(self) -> float:
        """Span duration in seconds (clamped at zero)."""
        return max(0.0, self.end - self.start)

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly form."""
        out: Dict[str, object] = {
            "trace_id": self.trace_id,
            "hop": self.hop,
            "stage": self.stage,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "operator": self.operator,
        }
        if self.worker is not None:
            out["worker"] = self.worker
        return out

    def __repr__(self) -> str:
        return (
            f"SpanRecord(trace={self.trace_id} hop={self.hop} "
            f"{self.stage} {self.duration * 1e3:.3f}ms op={self.operator})"
        )


def close_hop(
    note: TraceNote,
    drain_ts: float,
    deser_ts: float,
    done_ts: float,
    operator: str,
) -> List[SpanRecord]:
    """Build the six stage spans for one received hop."""
    tid, hop = note.trace_id, note.hop
    return [
        SpanRecord(tid, hop, "serialize", note.encode_ts, note.append_ts, operator),
        SpanRecord(tid, hop, "enqueue", note.append_ts, note.take_ts, operator),
        SpanRecord(tid, hop, "flush", note.take_ts, note.send_ts, operator),
        SpanRecord(tid, hop, "wire", note.send_ts, drain_ts, operator),
        SpanRecord(tid, hop, "deserialize", drain_ts, deser_ts, operator),
        SpanRecord(tid, hop, "execute", deser_ts, done_ts, operator),
    ]


class TraceCollector:
    """Bounded store of completed spans, grouped by trace id.

    Holds at most ``max_traces`` distinct traces; spans for further
    trace ids are counted (``dropped``) but not stored, so a long run
    with aggressive sampling cannot grow memory without bound.
    """

    def __init__(self, max_traces: int = 2048) -> None:
        if max_traces <= 0:
            raise ValueError(f"max_traces must be positive: {max_traces}")
        self._max = max_traces
        self._spans: Dict[int, List[SpanRecord]] = {}
        self._lock = threading.Lock()
        self.dropped = 0

    def add(self, spans: List[SpanRecord]) -> None:
        """Record the closed spans of one hop (one trace id)."""
        if not spans:
            return
        tid = spans[0].trace_id
        with self._lock:
            bucket = self._spans.get(tid)
            if bucket is None:
                if len(self._spans) >= self._max:
                    self.dropped += len(spans)
                    return
                bucket = self._spans[tid] = []
            bucket.extend(spans)

    def traces(self) -> Dict[int, List[SpanRecord]]:
        """Snapshot: trace id → spans sorted by (hop, causal stage)."""
        order = {stage: i for i, stage in enumerate(STAGES)}
        with self._lock:
            snap = {tid: list(spans) for tid, spans in self._spans.items()}
        for spans in snap.values():
            spans.sort(key=lambda s: (s.hop, order.get(s.stage, 99)))
        return snap

    def all_spans(self) -> List[SpanRecord]:
        """Every stored span (unsorted snapshot)."""
        with self._lock:
            return [s for spans in self._spans.values() for s in spans]

    def spans_since(self, cursor: Dict[int, int]) -> List[SpanRecord]:
        """Spans added since ``cursor`` was last advanced; advances it.

        ``cursor`` maps trace id → number of spans already consumed
        from that trace's bucket.  Buckets are append-only (``add``
        only extends), so slicing past the cursor yields every new span
        exactly once — the loss/duplication-free delta the cluster
        collector ships over the control channel.  The caller owns the
        cursor dict; passing a fresh ``{}`` replays everything.
        """
        out: List[SpanRecord] = []
        with self._lock:
            for tid, bucket in self._spans.items():
                seen = cursor.get(tid, 0)
                if len(bucket) > seen:
                    out.extend(bucket[seen:])
                    cursor[tid] = len(bucket)
        return out

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)
