"""Root-cause correlation over the three signal stores (`repro doctor`).

The health engine says *what* broke (an SLO breach episode on the
timeline); this module says *why*, by correlating that episode against
the causal events the runtime now emits:

- ``flowcontrol.gate_closed`` / ``gate_opened`` — a watermark gate
  episode names the operator whose inbound buffer filled and the
  upstream operators the gate throttled, so cascades reconstruct
  transitively (sink stalls → relay throttled → source throttled).
- ``chaos.*`` — injected faults (node kills, partitions, severed
  connections) stamped on the same clock as the breach events.
- ``transport.send_stall`` / ``reconnect`` / ``link_failed`` — the
  TCP-level face of backpressure and recovery.
- ``neptune_profile_*`` — the sampling profiler's per-operator CPU
  series: a breach with no gate episode, an execute-dominant stage,
  and one operator holding most of the sampled CPU is diagnosed
  **compute_bound**, naming the operator, its worker, and its hottest
  frame.

Every candidate cause is scored by temporal overlap/proximity with the
breach episode and by how direct the mechanism is (injected fault >
watermark cascade > transport stall); the ranked list plus the
dominant traced stage inside the episode is the diagnosis.  Input is
the :func:`repro.observe.export.snapshot` dict, so the same code runs
live (against an in-memory observer) and post-hoc (``--from-dump``).
"""

from __future__ import annotations

import re
from typing import Any, Dict, List, Mapping, Optional, Set, Tuple

from repro.observe.export import snapshot as observer_snapshot
from repro.observe.observer import RuntimeObserver

__all__ = ["DOCTOR_SCHEMA", "diagnose", "diagnose_observer", "render_report"]

DOCTOR_SCHEMA = "neptune-doctor/1"

#: How far before a breach's onset a cause may lie and still count (s).
_LOOKBACK = 30.0

#: One operator must hold at least this share of all sampled operator
#: CPU for a breach to be attributed as compute-bound.
_COMPUTE_SHARE = 0.6

_INSTANCE_SUFFIX = re.compile(r"\[\d+\]\Z")
_WORKER_PREFIX = re.compile(r"\Aw(\d+):")


def _bare(operator: str) -> str:
    """``w1:sink[0]`` → ``sink`` (worker-qualified instance labels →
    graph operator names).  Distributed workers label gate events with
    their ``wN:`` prefix so per-worker episodes stay distinct on the
    timeline; cause attribution works on graph names."""
    return _INSTANCE_SUFFIX.sub("", _WORKER_PREFIX.sub("", operator))


def _worker_of(operator: str) -> Optional[str]:
    """The worker id embedded in a ``wN:``-prefixed label, if any."""
    match = _WORKER_PREFIX.match(operator)
    return match.group(1) if match else None


def _f(value: Any, default: float = 0.0) -> float:
    return float(value) if isinstance(value, (int, float)) else default


class _Episode:
    """A half-open [start, end) span of some condition on the timeline."""

    __slots__ = ("start", "end", "attrs")

    def __init__(self, start: float, attrs: Dict[str, Any]) -> None:
        self.start = start
        self.end: Optional[float] = None
        self.attrs = attrs

    def overlap(self, start: float, end: float) -> float:
        """Seconds of overlap with [start, end]."""
        mine = self.end if self.end is not None else end
        return max(0.0, min(mine, end) - max(self.start, start))


def _pair_episodes(
    events: List[Dict[str, Any]],
    open_name: str,
    close_name: str,
    key: str,
) -> List[_Episode]:
    """Pair open/close events (matched on ``attrs[key]``) into episodes."""
    episodes: List[_Episode] = []
    pending: Dict[str, List[_Episode]] = {}
    for event in events:
        attrs = event.get("attrs") or {}
        ident = str(attrs.get(key, ""))
        if event["name"] == open_name:
            ep = _Episode(_f(event.get("ts")), dict(attrs))
            episodes.append(ep)
            pending.setdefault(ident, []).append(ep)
        elif event["name"] == close_name:
            stack = pending.get(ident)
            if stack:
                ep = stack.pop(0)
                ep.end = _f(event.get("ts"))
                # The closing event carries the episode's summary
                # attrs (duration, final value) — keep both sides.
                for k, v in attrs.items():
                    ep.attrs.setdefault(k, v)
    return episodes


def _gate_cascades(gates: List[_Episode]) -> Dict[str, Set[str]]:
    """Gated operator → transitively affected upstream operators.

    ``gate_closed`` on O carries ``throttles=[upstream of O]``: those
    writers block, their own inbound buffers fill, *their* gates close
    in turn.  The closure follows throttle edges until a fixed point,
    so the most-downstream stalled buffer is blamed for the whole
    cascade.
    """
    throttled_by: Dict[str, Set[str]] = {}
    for gate in gates:
        op = _bare(str(gate.attrs.get("operator", "")))
        targets = {
            _bare(str(t)) for t in gate.attrs.get("throttles", []) or []
        }
        throttled_by.setdefault(op, set()).update(targets)
    cascades: Dict[str, Set[str]] = {}
    for op in throttled_by:
        affected = {op}
        frontier = list(throttled_by.get(op, ()))
        while frontier:
            nxt = frontier.pop()
            if nxt in affected:
                continue
            affected.add(nxt)
            frontier.extend(throttled_by.get(nxt, ()))
        cascades[op] = affected
    return cascades


def _dominant_stage(
    traces: Mapping[str, List[Dict[str, Any]]],
    start: float,
    end: float,
    operator: Optional[str],
) -> Optional[Dict[str, Any]]:
    """The stage dominating traced time inside [start, end]."""

    def totals(only_op: Optional[str]) -> Dict[str, float]:
        acc: Dict[str, float] = {}
        for spans in traces.values():
            for span in spans:
                s, e = _f(span.get("start")), _f(span.get("end"))
                if e < start - _LOOKBACK or s > end:
                    continue
                if only_op is not None and _bare(str(span.get("operator", ""))) != only_op:
                    continue
                stage = str(span.get("stage", ""))
                acc[stage] = acc.get(stage, 0.0) + max(0.0, e - s)
        return acc

    by_stage = totals(operator) if operator is not None else {}
    if not by_stage:
        by_stage = totals(None)
    total = sum(by_stage.values())
    if total <= 0.0:
        return None
    stage, seconds = max(by_stage.items(), key=lambda kv: (kv[1], kv[0]))
    return {"stage": stage, "seconds": seconds, "fraction": seconds / total}


def _profile_attribution(snap: Mapping[str, Any]) -> Dict[str, Any]:
    """Per-operator sampled CPU from the ``neptune_profile_*`` series.

    Merged flight dumps can carry the same worker's series several
    times (periodic + on-request dumps of one worker); the counters are
    cumulative, so the *max* per (worker, operator) is the true total —
    summing duplicates would double-count.
    """
    cpu: Dict[Tuple[str, str], float] = {}
    frames: Dict[Tuple[str, str, str], float] = {}
    for series in snap.get("instruments", []) or []:
        name = series.get("name")
        labels = series.get("labels") or {}
        worker = str(labels.get("worker", ""))
        operator = str(labels.get("operator", ""))
        if (
            name == "neptune_profile_cpu_seconds_total"
            and labels.get("kind") == "operator"
        ):
            key = (worker, operator)
            cpu[key] = max(cpu.get(key, 0.0), _f(series.get("value")))
        elif name == "neptune_profile_top_frame_samples_total":
            fkey = (worker, operator, str(labels.get("frame", "")))
            frames[fkey] = max(frames.get(fkey, 0.0), _f(series.get("value")))
    by_op: Dict[str, float] = {}
    worker_of: Dict[str, Optional[str]] = {}
    worker_cpu: Dict[str, float] = {}
    for (worker, operator), seconds in cpu.items():
        by_op[operator] = by_op.get(operator, 0.0) + seconds
        if seconds >= worker_cpu.get(operator, -1.0):
            worker_cpu[operator] = seconds
            worker_of[operator] = worker or None
    frame_of: Dict[str, str] = {}
    frame_samples: Dict[str, float] = {}
    for (worker, operator, frame), count in frames.items():
        hottest = worker_of.get(operator)
        if hottest is not None and worker and worker != hottest:
            continue
        if count > frame_samples.get(operator, 0.0):
            frame_samples[operator] = count
            frame_of[operator] = frame
    return {
        "total": sum(by_op.values()),
        "by_op": by_op,
        "worker_of": worker_of,
        "frame_of": frame_of,
    }


def diagnose(snap: Mapping[str, Any], max_causes: int = 3) -> Dict[str, Any]:
    """Correlate a snapshot into a ranked root-cause report.

    ``snap`` is the :func:`repro.observe.export.snapshot` shape (also
    what ``repro doctor --dump`` writes).  The report is JSON-friendly;
    :func:`render_report` renders the human form.
    """
    events = sorted(
        (dict(e) for e in snap.get("timeline", [])),
        key=lambda e: (_f(e.get("ts")), str(e.get("category")), str(e.get("name"))),
    )
    horizon = _f(events[-1].get("ts")) if events else 0.0
    health_events = [e for e in events if e.get("category") == "health"]
    breaches = _pair_episodes(health_events, "slo_breach", "slo_recover", "slo")
    gate_events = [e for e in events if e.get("category") == "flowcontrol"]
    gates = _pair_episodes(gate_events, "gate_closed", "gate_opened", "operator")
    cascades = _gate_cascades(gates)
    # A gate whose operator is itself throttled by another gate is a
    # victim of the cascade, not its root: the most-downstream stalled
    # buffer (never anyone's throttle target) must outrank it.
    secondary = {
        _bare(str(t))
        for gate in gates
        for t in gate.attrs.get("throttles", []) or []
    }
    chaos = [e for e in events if e.get("category") == "chaos"]
    transport = [
        e
        for e in events
        if e.get("category") == "transport"
        and e.get("name") in ("send_stall", "reconnect", "link_failed")
    ]
    traces: Mapping[str, List[Dict[str, Any]]] = snap.get("traces", {})
    profile = _profile_attribution(snap)

    episodes: List[Dict[str, Any]] = []
    for breach in breaches:
        b_start = breach.start
        b_end = breach.end if breach.end is not None else horizon
        b_op = breach.attrs.get("operator")
        b_op_bare = _bare(str(b_op)) if b_op else None
        causes: List[Dict[str, Any]] = []
        for event in chaos:
            ts = _f(event.get("ts"))
            if ts > b_end or ts < b_start - _LOOKBACK:
                continue
            lead = max(0.0, b_start - ts)
            attrs = event.get("attrs") or {}
            target = str(attrs.get("target", ""))
            causes.append(
                {
                    "type": "injected_fault",
                    "operator": target,
                    "worker": attrs.get("worker"),
                    "score": 3.0 / (1.0 + lead),
                    "detail": f"injected {event.get('name')} on {target!r} "
                    f"at t={ts:.3f}s ({lead:.3f}s before breach)",
                }
            )
        for gate in gates:
            overlap = gate.overlap(b_start - _LOOKBACK, b_end)
            if overlap <= 0.0:
                continue
            gated_raw = str(gate.attrs.get("operator", ""))
            gated_op = _bare(gated_raw)
            gate_worker = _worker_of(gated_raw) or gate.attrs.get("worker")
            affected = cascades.get(gated_op, {gated_op})
            if b_op_bare is not None and b_op_bare not in affected:
                continue
            duration = (
                (gate.end - gate.start) if gate.end is not None else horizon - gate.start
            )
            throttled = sorted(
                {_bare(str(t)) for t in gate.attrs.get("throttles", []) or []}
            )
            window = b_end - b_start
            frac = min(1.0, overlap / window) if window > 0 else 1.0
            where = f" (worker {gate_worker})" if gate_worker is not None else ""
            detail = (
                f"inbound buffer of {gated_op!r}{where} >= high watermark "
                f"for {duration:.3f}s"
            )
            if throttled:
                detail += " -> throttled " + ", ".join(repr(t) for t in throttled)
            score = 2.0 + frac
            if gated_op in secondary:
                score = 1.0 + frac
                detail += " (itself throttled downstream)"
            causes.append(
                {
                    "type": "backpressure_cascade",
                    "operator": gated_op,
                    "worker": gate_worker,
                    "score": score,
                    "detail": detail,
                }
            )
        for event in transport:
            ts = _f(event.get("ts"))
            if ts > b_end or ts < b_start - _LOOKBACK:
                continue
            attrs = event.get("attrs") or {}
            endpoint = str(attrs.get("endpoint", ""))
            lead = max(0.0, b_start - ts)
            causes.append(
                {
                    "type": "transport",
                    "operator": endpoint,
                    "worker": attrs.get("worker"),
                    "score": 1.5 / (1.0 + lead),
                    "detail": f"transport {event.get('name')} on {endpoint} "
                    f"at t={ts:.3f}s",
                }
            )
        # Compute-bound attribution: queueing explanations always win
        # (a gate episode anywhere near the breach suppresses this),
        # but a breach with *no* gate and one operator monopolizing the
        # sampled CPU is a hot operator, not a stalled one.  The stage
        # check is a suppressor, not a requirement: emit-side dominance
        # (serialize/enqueue/flush) says the time went into batching or
        # a blocked emit, while "execute" is the compute itself and
        # "wire"/"deserialize" is where a compute-bound *receiver's*
        # backlog accrues (wire spans close at drain time).
        gated_nearby = any(
            gate.overlap(b_start - _LOOKBACK, b_end) > 0.0 for gate in gates
        )
        if profile["total"] > 0.0 and not gated_nearby:
            top_prof_op, op_cpu = max(
                profile["by_op"].items(), key=lambda kv: (kv[1], kv[0])
            )
            share = op_cpu / profile["total"]
            if share >= _COMPUTE_SHARE:
                dom = _dominant_stage(traces, b_start, b_end, top_prof_op)
                if dom is None or dom.get("stage") not in (
                    "serialize",
                    "enqueue",
                    "flush",
                ):
                    worker = profile["worker_of"].get(top_prof_op)
                    detail = (
                        f"operator {top_prof_op!r} held {share * 100.0:.0f}% of "
                        f"sampled CPU ({op_cpu:.2f}s) with no gate episode"
                    )
                    frame = profile["frame_of"].get(top_prof_op)
                    if frame:
                        detail += f"; top frame {frame}"
                    causes.append(
                        {
                            "type": "compute_bound",
                            "operator": top_prof_op,
                            "worker": worker,
                            "score": 2.0 + share,
                            "detail": detail,
                        }
                    )
        causes.sort(key=lambda c: (-float(c["score"]), str(c["operator"])))
        causes = causes[:max_causes]
        for rank, cause in enumerate(causes, start=1):
            cause["rank"] = rank
        top_op = str(causes[0]["operator"]) if causes else None
        episodes.append(
            {
                "slo": str(breach.attrs.get("slo", "")),
                "kind": breach.attrs.get("kind"),
                "operator": b_op,
                "observed_on_worker": breach.attrs.get("worker"),
                "value": breach.attrs.get("value"),
                "threshold": breach.attrs.get("threshold"),
                "start": b_start,
                "end": breach.end,
                "duration": (breach.end - b_start) if breach.end is not None else None,
                "causes": causes,
                "dominant_stage": _dominant_stage(traces, b_start, b_end, top_op),
            }
        )

    warnings: List[str] = []
    dropped = int(_f(snap.get("timeline_dropped", snap.get("timeline_evicted", 0))))
    if dropped > 0:
        warnings.append(
            f"timeline dropped {dropped} events on ring wrap: early causes "
            "may be missing and this diagnosis may be incomplete"
        )
    dropped_spans = int(_f(snap.get("traces_dropped_spans", 0)))
    if dropped_spans > 0:
        warnings.append(
            f"trace collector dropped {dropped_spans} spans past its cap: "
            "stage attribution may under-count"
        )

    root_cause: Optional[Dict[str, Any]] = None
    ranked = [
        (float(c["score"]), ep["slo"], c)
        for ep in episodes
        for c in ep["causes"]
    ]
    if ranked:
        ranked.sort(key=lambda item: (-item[0], item[1]))
        root_cause = dict(ranked[0][2])

    return {
        "schema": DOCTOR_SCHEMA,
        "healthy": not episodes,
        "breaches": episodes,
        "root_cause": root_cause,
        "gate_episodes": len(gates),
        "chaos_events": len(chaos),
        "warnings": warnings,
    }


def diagnose_observer(observer: RuntimeObserver, max_causes: int = 3) -> Dict[str, Any]:
    """Diagnose a live observer (snapshot + :func:`diagnose`)."""
    return diagnose(observer_snapshot(observer), max_causes=max_causes)


def render_report(report: Mapping[str, Any]) -> str:
    """Human rendering of a :func:`diagnose` report."""
    lines: List[str] = []
    breaches = list(report.get("breaches", []))
    if not breaches:
        lines.append("repro doctor: no SLO breach episodes on the timeline")
    else:
        lines.append(f"repro doctor: {len(breaches)} SLO breach episode(s)")
    for ep in breaches:
        duration = ep.get("duration")
        dur_text = f"{duration:.3f}s" if isinstance(duration, float) else "ongoing"
        value = ep.get("value")
        threshold = ep.get("threshold")
        vt = ""
        if isinstance(value, (int, float)) and isinstance(threshold, (int, float)):
            vt = f" (value {value:.4g} vs threshold {threshold:.4g})"
        lines.append(
            f"breach of {ep.get('slo')} at t={_f(ep.get('start')):.3f}s, "
            f"{dur_text}{vt}:"
        )
        causes = ep.get("causes", [])
        if not causes:
            lines.append("  no correlated cause on the timeline")
        for cause in causes:
            lines.append(
                f"  {cause.get('rank')}. [{cause.get('type')}] "
                f"{cause.get('detail')} (score {_f(cause.get('score')):.2f})"
            )
        stage = ep.get("dominant_stage")
        if stage:
            lines.append(
                f"  dominant span: {stage.get('stage')} "
                f"({100.0 * _f(stage.get('fraction')):.0f}% of traced time)"
            )
    root = report.get("root_cause")
    if root:
        worker = root.get("worker")
        where = f" on worker {worker}" if worker is not None else ""
        lines.append(
            f"root cause: [{root.get('type')}] {root.get('operator')!r}"
            f"{where} — {root.get('detail')}"
        )
    for warning in report.get("warnings", []):
        lines.append(f"warning: {warning}")
    return "\n".join(lines)
