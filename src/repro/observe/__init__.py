"""Unified observability for the NEPTUNE runtime.

The paper evaluates NEPTUNE on three end-to-end signals — throughput,
latency, bandwidth (§IV) — but attributes its wins to *internal*
mechanisms: batched scheduling, buffer flushes, watermark transitions,
selective compression.  ``repro.observe`` makes those mechanisms
visible without bespoke probes:

- :mod:`repro.observe.tracing` — causal packet tracing.  Trace ids are
  minted at sources (sampled), ride each packet through the outbound
  buffer, the frame header, the transport, and the downstream
  instance; every hop decomposes into contiguous timestamped stages
  (serialize → enqueue → flush → wire → deserialize → execute) whose
  durations tile the packet's end-to-end latency exactly.
- :mod:`repro.observe.instruments` — the unified telemetry registry: a
  named-instrument API (counter / gauge / histogram) with bounded
  memory that absorbs the ad-hoc counters scattered across
  ``core.metrics``, transport stats, flow-control watermark state,
  compression decisions, buffer occupancy, and object-pool hit rates.
- :mod:`repro.observe.timeline` — a ring-buffered structured event log
  (watermark crossings, flush-timer fires, batch executions,
  reconnects, chaos injections) under one schema.
- :mod:`repro.observe.export` — Prometheus text exposition and JSON
  snapshot dumps; ``repro trace`` / ``repro metrics`` CLI front-ends.
- :mod:`repro.observe.health` — the streaming health engine: online
  SLO monitors (breach/recover state machines over registry scans,
  exported as ``neptune_slo_*``) and the adaptive trace-sampling
  feedback controller.
- :mod:`repro.observe.doctor` — root-cause correlation: breach
  episodes ranked against backpressure cascades, injected faults, and
  transport stalls; the ``repro doctor`` CLI front-end.
- :mod:`repro.observe.policy` — the elasticity policy engine: a
  deterministic breach → reconfiguration decision table (retune the
  buffer bound, scale the thread pool, migrate an operator) over the
  health engine's transitions and the doctor's root cause, closing the
  SLO loop without a restart.
- :mod:`repro.observe.collector` — the cluster observability plane:
  worker-side :class:`DeltaSource` deltas over the control channel,
  coordinator-side :class:`ClusterCollector` merge (worker-labeled
  registry, cross-process trace stitching, cluster-scope HealthEngine)
  behind ``repro top`` / ``repro doctor --cluster``.
- :mod:`repro.observe.flightrec` — the black-box flight recorder:
  atomically-persisted periodic dumps of recent spans/events/metrics
  so SIGKILLed workers leave a post-mortem
  (``repro doctor --cluster --from-dump``).

Everything is opt-in: a runtime without a :class:`RuntimeObserver`
pays a single ``is None`` check on the hot paths, and an attached
observer with ``sample_every=0`` records no spans.
"""

from __future__ import annotations

from repro.observe.collector import (
    ClusterCollector,
    DeltaSource,
    StitchedTrace,
    stitch,
    stitch_spans,
)
from repro.observe.doctor import diagnose, diagnose_observer, render_report
from repro.observe.flightrec import (
    FlightRecorder,
    load_flight_dump,
    merge_flight_dumps,
)
from repro.observe.health import (
    SLO,
    AdaptiveSampler,
    HealthEngine,
    default_slos,
    graph_regions,
)
from repro.observe.instruments import (
    Counter,
    Gauge,
    Histogram,
    TelemetryRegistry,
)
from repro.observe.observer import RuntimeObserver
from repro.observe.policy import (
    PolicyConfig,
    PolicyEngine,
    ReconfigAction,
    action_to_changes,
    apply_action,
)
from repro.observe.timeline import EventTimeline, RuntimeEvent
from repro.observe.tracing import (
    STAGES,
    SpanRecord,
    TraceCollector,
    TraceContext,
    TraceNote,
    Tracer,
    decode_notes,
    encode_notes,
)

__all__ = [
    "SLO",
    "AdaptiveSampler",
    "ClusterCollector",
    "DeltaSource",
    "FlightRecorder",
    "HealthEngine",
    "StitchedTrace",
    "load_flight_dump",
    "merge_flight_dumps",
    "stitch",
    "stitch_spans",
    "default_slos",
    "diagnose",
    "diagnose_observer",
    "graph_regions",
    "render_report",
    "Counter",
    "Gauge",
    "Histogram",
    "TelemetryRegistry",
    "EventTimeline",
    "PolicyConfig",
    "PolicyEngine",
    "ReconfigAction",
    "RuntimeEvent",
    "RuntimeObserver",
    "action_to_changes",
    "apply_action",
    "STAGES",
    "SpanRecord",
    "TraceCollector",
    "TraceContext",
    "TraceNote",
    "Tracer",
    "decode_notes",
    "encode_notes",
]
