"""Black-box flight recorder: post-mortems for killed worker processes.

A SIGKILLed worker gets no chance to say goodbye — the chaos suite
proves the *data plane* survives (ack-replay, exactly-once), but until
now the kill left no observability record at all.  The
:class:`FlightRecorder` fixes that the way aircraft do: continuously
persist a bounded window of recent state, atomically, so whatever
killed the process finds the last periodic dump on disk.

Covered exits:

==============  =====================================================
exit path       mechanism
==============  =====================================================
SIGKILL / OOM   last *periodic* dump (written every ``every`` seconds
                via atomic ``os.replace``, so a kill mid-write leaves
                the previous complete dump, never a torn file)
SIGTERM         signal handler dumps ``reason="sigterm"`` then exits
normal exit     ``atexit`` hook dumps ``reason="atexit"``
hard crash      ``faulthandler`` traceback into ``<path>.crash``
coordinator     ``flight_dump`` control command (``kill_worker``
                requests one before delivering the signal)
==============  =====================================================

Dumps are JSON (``neptune-flight/1``): the worker's recent timeline
events, recent trace spans, instrument snapshot, and SLO monitor
states.  :func:`merge_flight_dumps` folds any number of per-worker
dumps into the exact snapshot shape ``repro doctor --from-dump``
already consumes, so post-hoc multi-worker diagnosis works from the
black boxes alone.
"""

from __future__ import annotations

import atexit
import faulthandler
import json
import os
import signal
import threading
from typing import Any, Callable, Dict, IO, List, Mapping, Optional, Tuple

from repro.observe.bridge import registry_series, scrape_observer
from repro.observe.observer import RuntimeObserver
from repro.observe.tracing import STAGES

__all__ = [
    "FLIGHT_SCHEMA",
    "FlightRecorder",
    "load_flight_dump",
    "merge_flight_dumps",
]

#: Schema tag on every dump file.
FLIGHT_SCHEMA = "neptune-flight/1"

_STAGE_ORDER: Dict[str, int] = {stage: i for i, stage in enumerate(STAGES)}


class FlightRecorder:
    """Bounded, continuously-persisted observability ring for one worker.

    ``install()`` hooks SIGTERM/atexit/faulthandler (call it from the
    process main thread — signal handlers cannot be installed
    elsewhere, in which case the SIGTERM hook is skipped and the
    periodic dump still covers the exit).  ``start()`` launches the
    periodic dump thread.  ``dump(reason)`` is safe from any thread
    and never raises on behalf of observability.
    """

    def __init__(
        self,
        observer: RuntimeObserver,
        path: str,
        worker_id: int = 0,
        max_events: int = 512,
        max_spans: int = 1024,
        every: float = 1.0,
        series_fn: Optional[Callable[[], List[Dict[str, Any]]]] = None,
        monitors_fn: Optional[Callable[[], List[Dict[str, Any]]]] = None,
    ) -> None:
        if every <= 0:
            raise ValueError(f"every must be positive: {every}")
        self.observer = observer
        self.path = path
        self.worker_id = int(worker_id)
        self.max_events = max_events
        self.max_spans = max_spans
        self.every = every
        self.series_fn = series_fn
        self.monitors_fn = monitors_fn
        self.dumps = 0
        self.dump_errors = 0
        self.last_reason: Optional[str] = None
        self._crash_file: Optional[IO[str]] = None
        self._prev_sigterm: Any = None
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # -- dumping -----------------------------------------------------------
    def dump(self, reason: str) -> Optional[str]:
        """Write one atomic dump; returns the path, or None on failure.

        The payload is built outside the lock (registry/timeline take
        their own locks, and ``series_fn`` may call back into runtime
        objects); only the file write is serialized — the periodic
        thread, a SIGTERM handler, and a coordinator request may race —
        and it goes to a temp file first so a kill mid-write can never
        tear the last good dump.
        """
        try:
            payload = self._payload(reason)
        except Exception:
            with self._lock:
                self.dump_errors += 1
            return None
        with self._lock:
            try:
                payload["dumps"] = self.dumps + 1
                tmp = self.path + ".tmp"
                with open(tmp, "w", encoding="utf-8") as fh:
                    json.dump(payload, fh, default=str)
                os.replace(tmp, self.path)
                self.dumps += 1
                self.last_reason = reason
                return self.path
            except Exception:
                self.dump_errors += 1
                return None

    def _payload(self, reason: str) -> Dict[str, Any]:
        wid = str(self.worker_id)
        events = self.observer.timeline.snapshot()[-self.max_events :]
        spans = self.observer.collector.all_spans()
        spans.sort(key=lambda s: (s.end, s.trace_id))
        spans = spans[-self.max_spans :]
        scrape_observer(self.observer)
        if self.series_fn is not None:
            try:
                instruments = list(self.series_fn())
            except Exception:
                instruments = registry_series(
                    self.observer.registry, {"worker": wid}
                )
        else:
            instruments = registry_series(self.observer.registry, {"worker": wid})
        monitors: List[Dict[str, Any]] = []
        if self.monitors_fn is not None:
            try:
                monitors = list(self.monitors_fn())
            except Exception:
                monitors = []
        span_dicts: List[Dict[str, Any]] = []
        for span in spans:
            d = dict(span.as_dict())
            d.setdefault("worker", wid)
            span_dicts.append(d)
        event_dicts: List[Dict[str, Any]] = []
        for event in events:
            d = dict(event.as_dict())
            attrs = dict(d.get("attrs") or {})  # type: ignore[arg-type]
            attrs.setdefault("worker", wid)
            d["attrs"] = attrs
            event_dicts.append(d)
        profile: Optional[Dict[str, Any]] = None
        profiler = getattr(self.observer, "profiler", None)
        if profiler is not None:
            try:
                profile = profiler.flight_section()
            except Exception:
                profile = None
        return {
            "schema": FLIGHT_SCHEMA,
            "worker": self.worker_id,
            "ts": self.observer.clock.now(),
            "reason": reason,
            "dumps": 0,  # stamped under the lock in dump()
            "events": event_dicts,
            "spans": span_dicts,
            "instruments": instruments,
            "monitors": monitors,
            "profile": profile,
            "timeline_dropped": self.observer.timeline.dropped,
        }

    # -- exit hooks --------------------------------------------------------
    def install(self) -> None:
        """Hook SIGTERM, atexit, and faulthandler.

        SIGTERM: dump then re-deliver default behaviour via
        ``SystemExit(143)`` so the worker's ``finally`` blocks still
        run.  faulthandler writes the crashing thread's traceback to
        ``<path>.crash`` (the periodic dump holds the telemetry side
        of the post-mortem).
        """
        atexit.register(self._on_atexit)
        try:
            self._prev_sigterm = signal.signal(signal.SIGTERM, self._on_sigterm)
        except ValueError:
            self._prev_sigterm = None  # not the main thread: skip
        try:
            self._crash_file = open(self.path + ".crash", "w", encoding="utf-8")
            faulthandler.enable(self._crash_file)
        except Exception:
            self._crash_file = None

    def _on_sigterm(self, signum: int, frame: Any) -> None:
        self.dump("sigterm")
        raise SystemExit(143)

    def _on_atexit(self) -> None:
        self.dump("atexit")

    # -- periodic loop -----------------------------------------------------
    def start(self) -> None:
        """Launch the periodic dump thread. Idempotent."""
        if self._thread is not None and self._thread.is_alive():
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="neptune-flightrec", daemon=True
        )
        self._thread.start()

    def stop(self, timeout: float = 5.0) -> None:
        """Stop the periodic thread (the atexit dump still fires)."""
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout)
        self._thread = None

    def _run(self) -> None:
        while not self._stop.wait(self.every):
            self.dump("periodic")


def load_flight_dump(path: str) -> Dict[str, Any]:
    """Read one dump file (raises on unreadable/invalid JSON)."""
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    if not isinstance(data, dict):
        raise ValueError(f"flight dump {path!r} is not a JSON object")
    return data


def merge_flight_dumps(dumps: List[Mapping[str, Any]]) -> Dict[str, Any]:
    """Fold per-worker flight dumps into one doctor-consumable snapshot.

    The output matches :func:`repro.observe.export.snapshot`'s shape
    (``instruments`` / ``timeline`` / ``traces``), so
    ``diagnose(merge_flight_dumps(...))`` works unchanged.  Spans are
    deduplicated by identity (overlapping dump windows from a worker
    that dumped both periodically and on request), events are merged
    in timestamp order, and a ``flight`` block records which workers
    and dump reasons contributed.
    """
    timeline: List[Dict[str, Any]] = []
    traces: Dict[str, List[Dict[str, Any]]] = {}
    instruments: List[Dict[str, Any]] = []
    seen_spans: set[Tuple[Any, Any, Any, Any]] = set()
    workers: List[int] = []
    reasons: Dict[str, str] = {}
    profiles: Dict[str, Dict[str, Any]] = {}
    dropped = 0
    for dump in dumps:
        if dump.get("schema") != FLIGHT_SCHEMA:
            continue
        wid = int(dump.get("worker", -1))
        workers.append(wid)
        reasons[str(wid)] = str(dump.get("reason", ""))
        profile = dump.get("profile")
        if isinstance(profile, Mapping):
            profiles[str(wid)] = dict(profile)
        dropped += int(dump.get("timeline_dropped", 0) or 0)
        for raw in dump.get("events") or []:
            timeline.append(dict(raw))
        for raw in dump.get("spans") or []:
            key = (
                raw.get("trace_id"),
                raw.get("hop"),
                raw.get("stage"),
                raw.get("operator"),
            )
            if key in seen_spans:
                continue
            seen_spans.add(key)
            traces.setdefault(str(raw.get("trace_id")), []).append(dict(raw))
        instruments.extend(dict(raw) for raw in dump.get("instruments") or [])
    timeline.sort(key=lambda e: float(e.get("ts") or 0.0))
    for spans in traces.values():
        spans.sort(
            key=lambda s: (
                int(s.get("hop") or 0),
                _STAGE_ORDER.get(str(s.get("stage")), 99),
            )
        )
    return {
        "instruments": instruments,
        "timeline": timeline,
        "timeline_evicted": 0,
        "timeline_dropped": dropped,
        "traces": traces,
        "traces_dropped_spans": 0,
        "flight": {"workers": sorted(workers), "reasons": reasons},
        "profiles": profiles,
    }
