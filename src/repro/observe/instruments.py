"""The unified telemetry registry: named counters, gauges, histograms.

One :class:`TelemetryRegistry` per observed runtime.  Instruments are
identified by ``(name, labels)``; ``counter()`` / ``gauge()`` /
``histogram()`` get-or-create, so call sites never coordinate.  Memory
is bounded: the registry caps the number of distinct instruments
(:class:`RegistryFull` past the cap — a misbehaving label set cannot
grow memory without bound) and histograms use fixed buckets.

Naming scheme (documented in DESIGN.md §9): ``neptune_<subsystem>_
<metric>[_total]`` with snake_case label keys, e.g.
``neptune_operator_packets_in_total{operator="relay"}``.  Counters are
monotonic; gauges are set-to-current; histograms observe durations in
seconds (Prometheus convention).
"""

from __future__ import annotations

import re
import threading
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "InstrumentSample",
    "RegistryFull",
    "TelemetryRegistry",
    "DEFAULT_BUCKETS",
]

LabelsKey = Tuple[Tuple[str, str], ...]

#: Default histogram buckets (seconds), tuned for sub-millisecond to
#: multi-second stream-processing latencies.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)


class RegistryFull(RuntimeError):
    """Raised when the registry's instrument cap would be exceeded."""


#: Prometheus text-format grammar: metric names admit colons, label
#: names do not.  Validated once per instrument creation (not per
#: update), so the hot paths never pay for it.
_METRIC_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*\Z")
_LABEL_NAME_RE = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*\Z")


def _labels_key(labels: Optional[Mapping[str, str]]) -> LabelsKey:
    if not labels:
        return ()
    return tuple(sorted(labels.items()))


class Counter:
    """Monotonically increasing named value (single float, lock-guarded)."""

    __slots__ = ("name", "labels", "help", "_value", "_lock")

    def __init__(self, name: str, labels: LabelsKey, help_: str) -> None:
        self.name = name
        self.labels = labels
        self.help = help_
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0: counters never go down)."""
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0: {amount}")
        with self._lock:
            self._value += amount

    def set_total(self, total: float) -> None:
        """Set the absolute total (bridge use: mirroring an existing
        monotonic counter kept elsewhere).  Never moves backwards."""
        with self._lock:
            if total > self._value:
                self._value = total

    @property
    def value(self) -> float:
        """Current total."""
        with self._lock:
            return self._value


class Gauge:
    """Set-to-current named value, optionally backed by a pull callback."""

    __slots__ = ("name", "labels", "help", "_value", "_fn", "_lock")

    def __init__(
        self,
        name: str,
        labels: LabelsKey,
        help_: str,
        fn: Optional[Callable[[], float]] = None,
    ) -> None:
        self.name = name
        self.labels = labels
        self.help = help_
        self._value = 0.0
        self._fn = fn
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        """Set the current value (push-style gauges)."""
        with self._lock:
            self._value = value

    @property
    def value(self) -> float:
        """Current value; pull gauges invoke their callback."""
        if self._fn is not None:
            try:
                return float(self._fn())
            except Exception:
                return 0.0  # a dying callback must not break a scrape
        with self._lock:
            return self._value


class Histogram:
    """Fixed-bucket cumulative histogram (Prometheus semantics).

    ``observe(v)`` increments every bucket whose upper bound is >= v at
    export time (buckets store per-bucket counts internally; exposition
    cumulates).  Memory per histogram is O(len(buckets)).
    """

    __slots__ = ("name", "labels", "help", "buckets", "_counts", "_sum", "_count", "_lock")

    def __init__(
        self,
        name: str,
        labels: LabelsKey,
        help_: str,
        buckets: Tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> None:
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError(f"buckets must be non-empty and sorted: {buckets!r}")
        self.name = name
        self.labels = labels
        self.help = help_
        self.buckets = tuple(buckets)
        self._counts = [0] * (len(buckets) + 1)  # +1 for +Inf
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Record one observation."""
        idx = len(self.buckets)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                idx = i
                break
        with self._lock:
            self._counts[idx] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        """Number of observations recorded."""
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        """Sum of observed values."""
        with self._lock:
            return self._sum

    def set_cumulative(
        self,
        bucket_counts: Iterable[int],
        total_count: int,
        total_sum: float,
    ) -> None:
        """Overwrite state from a cumulative snapshot (bridge use).

        ``bucket_counts`` are cumulative counts for this histogram's
        finite bounds, in order (the +Inf remainder is derived from
        ``total_count``).  Mirrors :meth:`Counter.set_total`'s
        never-backwards contract: a snapshot whose total count does not
        exceed what is already recorded is ignored, which makes
        re-absorbing the same worker delta idempotent.
        """
        counts = [int(c) for c in bucket_counts]
        if len(counts) != len(self.buckets):
            raise ValueError(
                f"expected {len(self.buckets)} cumulative bucket counts, "
                f"got {len(counts)}"
            )
        with self._lock:
            if total_count <= self._count:
                return
            prev = 0
            for i, cum in enumerate(counts):
                self._counts[i] = cum - prev
                prev = cum
            self._counts[len(self.buckets)] = int(total_count) - prev
            self._count = int(total_count)
            self._sum = float(total_sum)

    def cumulative_buckets(self) -> List[Tuple[float, int]]:
        """(upper_bound, cumulative_count) pairs, ending with +Inf."""
        with self._lock:
            counts = list(self._counts)
        out: List[Tuple[float, int]] = []
        running = 0
        for bound, c in zip(self.buckets, counts):
            running += c
            out.append((bound, running))
        running += counts[-1]
        out.append((float("inf"), running))
        return out


class InstrumentSample:
    """One exported sample: flattened instrument state for renderers."""

    __slots__ = ("name", "kind", "help", "labels", "value", "histogram")

    def __init__(
        self,
        name: str,
        kind: str,
        help_: str,
        labels: LabelsKey,
        value: float,
        histogram: Optional[Histogram] = None,
    ) -> None:
        self.name = name
        self.kind = kind
        self.help = help_
        self.labels = labels
        self.value = value
        self.histogram = histogram


class TelemetryRegistry:
    """All named instruments for one runtime, with bounded cardinality.

    Thread-safe: get-or-create is serialized; instrument updates take
    per-instrument locks so concurrent writers never contend on the
    registry itself.
    """

    def __init__(self, max_instruments: int = 4096) -> None:
        if max_instruments <= 0:
            raise ValueError(f"max_instruments must be positive: {max_instruments}")
        self._max = max_instruments
        self._lock = threading.Lock()
        self._instruments: Dict[Tuple[str, LabelsKey], object] = {}
        self._kinds: Dict[str, str] = {}  # metric name -> kind (consistency)

    def __len__(self) -> int:
        with self._lock:
            return len(self._instruments)

    def _get_or_create(
        self,
        name: str,
        labels: Optional[Mapping[str, str]],
        kind: str,
        factory: Callable[[LabelsKey], object],
    ) -> object:
        if not name:
            raise ValueError("instrument name must be non-empty")
        key = (name, _labels_key(labels))
        with self._lock:
            existing = self._instruments.get(key)
            if existing is not None:
                if self._kinds[name] != kind:
                    raise ValueError(
                        f"instrument {name!r} already registered as "
                        f"{self._kinds[name]}, not {kind}"
                    )
                return existing
            if self._kinds.get(name, kind) != kind:
                raise ValueError(
                    f"instrument {name!r} already registered as "
                    f"{self._kinds[name]}, not {kind}"
                )
            if len(self._instruments) >= self._max:
                raise RegistryFull(
                    f"registry cap {self._max} reached; refusing {name!r}"
                )
            if _METRIC_NAME_RE.match(name) is None:
                raise ValueError(
                    f"invalid metric name {name!r}: must match "
                    "[a-zA-Z_:][a-zA-Z0-9_:]*"
                )
            for label_name, _ in key[1]:
                if _LABEL_NAME_RE.match(label_name) is None:
                    raise ValueError(
                        f"invalid label name {label_name!r} on {name!r}: "
                        "must match [a-zA-Z_][a-zA-Z0-9_]*"
                    )
            instrument = factory(key[1])
            self._instruments[key] = instrument
            self._kinds[name] = kind
            return instrument

    def counter(
        self, name: str, labels: Optional[Mapping[str, str]] = None, help_: str = ""
    ) -> Counter:
        """Get-or-create a counter."""
        obj = self._get_or_create(
            name, labels, "counter", lambda lk: Counter(name, lk, help_)
        )
        assert isinstance(obj, Counter)
        return obj

    def gauge(
        self,
        name: str,
        labels: Optional[Mapping[str, str]] = None,
        help_: str = "",
        fn: Optional[Callable[[], float]] = None,
    ) -> Gauge:
        """Get-or-create a gauge; ``fn`` makes it pull-based."""
        obj = self._get_or_create(
            name, labels, "gauge", lambda lk: Gauge(name, lk, help_, fn)
        )
        assert isinstance(obj, Gauge)
        return obj

    def histogram(
        self,
        name: str,
        labels: Optional[Mapping[str, str]] = None,
        help_: str = "",
        buckets: Tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> Histogram:
        """Get-or-create a histogram with fixed buckets."""
        obj = self._get_or_create(
            name, labels, "histogram", lambda lk: Histogram(name, lk, help_, buckets)
        )
        assert isinstance(obj, Histogram)
        return obj

    def collect(self) -> List[InstrumentSample]:
        """Snapshot every instrument, sorted by (name, labels)."""
        with self._lock:
            items = sorted(self._instruments.items(), key=lambda kv: kv[0])
        out: List[InstrumentSample] = []
        for (name, labels), inst in items:
            if isinstance(inst, Counter):
                out.append(
                    InstrumentSample(name, "counter", inst.help, labels, inst.value)
                )
            elif isinstance(inst, Gauge):
                out.append(
                    InstrumentSample(name, "gauge", inst.help, labels, inst.value)
                )
            elif isinstance(inst, Histogram):
                out.append(
                    InstrumentSample(
                        name, "histogram", inst.help, labels, inst.sum, inst
                    )
                )
        return out

    def names(self) -> Iterable[str]:
        """Distinct metric names currently registered."""
        with self._lock:
            return sorted(self._kinds)
