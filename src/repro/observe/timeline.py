"""Structured runtime event timeline: a bounded ring of typed events.

Everything noteworthy that *happens* (as opposed to values that are
*sampled*) lands here under one schema: watermark crossings, flush
timer fires, batch executions, transport reconnects, chaos fault
injections.  The ring is bounded, so a long-running job keeps the most
recent ``capacity`` events and counts what it evicted.

Categories currently emitted by the runtime wiring:

=============  ====================================================
category       names
=============  ====================================================
flowcontrol    ``gate_closed`` / ``gate_opened`` (watermark cross)
buffer         ``timer_flush`` (flush-timer fired on a stale buffer)
runtime        ``batch_executed`` (instance drained a frame)
transport      ``reconnect`` / ``replay`` (link recovery)
chaos          ``fault_injected`` / ``node_killed`` / ``link_*``
=============  ====================================================
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Deque, Dict, List, Optional

from repro.util.clock import SYSTEM_CLOCK, Clock

__all__ = ["EventTimeline", "RuntimeEvent"]


class RuntimeEvent:
    """One timeline entry: when / what category / what name / details."""

    __slots__ = ("ts", "category", "name", "attrs")

    def __init__(
        self,
        ts: float,
        category: str,
        name: str,
        attrs: Dict[str, object],
    ) -> None:
        self.ts = ts
        self.category = category
        self.name = name
        self.attrs = attrs

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly form."""
        return {
            "ts": self.ts,
            "category": self.category,
            "name": self.name,
            "attrs": self.attrs,
        }

    def __repr__(self) -> str:
        return f"RuntimeEvent({self.ts:.6f} {self.category}.{self.name} {self.attrs})"


class EventTimeline:
    """Thread-safe bounded ring buffer of :class:`RuntimeEvent`.

    ``record()`` is cheap (one lock, one deque append) and never raises
    on behalf of observability: exotic attr values are kept as-is and
    only stringified at export time.
    """

    def __init__(self, capacity: int = 4096, clock: Clock = SYSTEM_CLOCK) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive: {capacity}")
        self.capacity = capacity
        self._clock = clock
        self._events: Deque[RuntimeEvent] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._recorded = 0
        self._dropped = 0

    def record(self, category: str, name: str, **attrs: object) -> RuntimeEvent:
        """Append one event stamped with the timeline's clock.

        A full ring drops its oldest event to admit the new one; the
        drop is counted (:attr:`dropped`) so consumers — notably
        ``repro doctor`` — can tell a complete record from a window.
        """
        event = RuntimeEvent(self._clock.now(), category, name, dict(attrs))
        with self._lock:
            if len(self._events) >= self.capacity:
                self._dropped += 1
            self._events.append(event)
            self._recorded += 1
        return event

    def record_at(
        self,
        ts: float,
        category: str,
        name: str,
        attrs: Optional[Dict[str, object]] = None,
    ) -> RuntimeEvent:
        """Append one event with an explicit timestamp.

        Used when merging events recorded elsewhere (another worker
        process) into this timeline: the original monotonic timestamp
        is preserved so episode pairing and cross-worker ordering stay
        meaningful (``CLOCK_MONOTONIC`` is machine-wide).
        """
        event = RuntimeEvent(ts, category, name, dict(attrs or {}))
        with self._lock:
            if len(self._events) >= self.capacity:
                self._dropped += 1
            self._events.append(event)
            self._recorded += 1
        return event

    def events_since(self, seen: int) -> "tuple[List[RuntimeEvent], int]":
        """Events recorded after the first ``seen``, plus the new total.

        Returns the suffix of events not yet consumed by a caller that
        previously saw ``seen`` recorded events.  If the ring evicted
        part of that suffix the evicted events are simply gone (the
        eviction is already counted); the returned total lets the
        caller advance its cursor atomically with the snapshot.
        """
        with self._lock:
            recorded = self._recorded
            new = recorded - seen
            if new <= 0:
                return [], recorded
            events = list(self._events)
            return events[-min(new, len(events)) :], recorded

    @property
    def recorded(self) -> int:
        """Total events ever recorded (including evicted ones)."""
        with self._lock:
            return self._recorded

    @property
    def evicted(self) -> int:
        """Events pushed out of the ring by newer ones."""
        with self._lock:
            return self._recorded - len(self._events)

    @property
    def dropped(self) -> int:
        """Events overwritten on ring wrap (diagnosis completeness)."""
        with self._lock:
            return self._dropped

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def snapshot(
        self,
        category: Optional[str] = None,
        name: Optional[str] = None,
    ) -> List[RuntimeEvent]:
        """Events oldest-first, optionally filtered by category/name."""
        with self._lock:
            events = list(self._events)
        if category is not None:
            events = [e for e in events if e.category == category]
        if name is not None:
            events = [e for e in events if e.name == name]
        return events

    def counts(self) -> Dict[str, int]:
        """``category.name`` → occurrences among retained events."""
        out: Dict[str, int] = {}
        for event in self.snapshot():
            key = f"{event.category}.{event.name}"
            out[key] = out.get(key, 0) + 1
        return out
