"""SLO-breach-driven live reconfiguration (the elasticity policy engine).

The health engine says *what* broke, the doctor says *why*; this module
closes the loop by deciding *what to do about it* — without restarting
the job.  A :class:`PolicyEngine` consumes the health engine's
breach/recover transitions together with the doctor's root-cause report
and emits typed :class:`ReconfigAction` records:

- ``retune`` — widen the flush deadline / capacity of the
  :class:`~repro.core.buffering.StreamBuffer` legs feeding an
  overwhelmed operator ("batch up": NEPTUNE's §III-B bound trades
  per-batch overhead against latency, so a sink drowning in small
  frequent batches is healed by larger, rarer ones).
- ``scale`` — grow (or, on recovery, shrink back) the hosting worker's
  Granules thread pool when the breach is execute-stage-bound rather
  than buffer-bound.
- ``migrate`` — move an operator off a faulted worker entirely (applied
  by the coordinator via a verified re-plan + rolling restart; see
  ``repro.cluster.coordinator``).

Determinism contract
--------------------
Decisions are **pure functions of observed counters** — the scan index,
the transition list, and the (already deterministic) doctor report.  No
wall clock, no randomness, no iteration-order dependence: two runs that
observe the same scan sequence produce *byte-identical* action logs
(:meth:`PolicyEngine.action_log`, asserted by the determinism test).
Wall time appears only in the engine's duty-cycle accounting, never in
a decision.

Like the rest of ``repro.observe`` this module imports no runtime
code: actions are *applied* through duck-typed targets exposing
``reconfigure(changes)`` (:class:`~repro.core.runtime.NeptuneRuntime`,
:class:`~repro.core.distributed.DistributedWorker`, or a
:class:`~repro.core.control.RemoteWorker` proxy) via
:func:`apply_action`.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.observe.observer import RuntimeObserver

__all__ = [
    "ACTION_KINDS",
    "PolicyConfig",
    "PolicyEngine",
    "ReconfigAction",
    "action_to_changes",
    "apply_action",
]

#: The action kinds :class:`PolicyEngine` can emit.
ACTION_KINDS: Tuple[str, ...] = ("retune", "scale", "migrate")


@dataclass(frozen=True)
class ReconfigAction:
    """One typed reconfiguration decision.

    ``params`` is action-kind specific and JSON-able:

    ===========  ========================================================
    kind         params
    ===========  ========================================================
    ``retune``   ``operator``, ``where`` (``into``/``from``),
                 ``max_delay`` (s), ``capacity`` (bytes)
    ``scale``    ``workers_delta`` (signed thread-count change)
    ``migrate``  ``operator``, ``from_worker``
    ===========  ========================================================
    """

    scan: int
    kind: str
    operator: str
    slo: str
    cause: str
    reason: str
    worker: Optional[int] = None
    params: Mapping[str, Any] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        """JSON-friendly form (the CLI's ``policy log`` rows)."""
        return {
            "scan": self.scan,
            "kind": self.kind,
            "operator": self.operator,
            "slo": self.slo,
            "cause": self.cause,
            "reason": self.reason,
            "worker": self.worker,
            "params": dict(self.params),
        }

    def as_line(self) -> str:
        """Canonical one-line JSON encoding.

        Keys are sorted and separators fixed, so identical decisions
        serialize to identical bytes — the unit the determinism test
        compares."""
        return json.dumps(self.as_dict(), sort_keys=True, separators=(",", ":"))


@dataclass
class PolicyConfig:
    """Tunables for :class:`PolicyEngine` (all decisions flow from
    these plus the observed counters — nothing else).

    Parameters
    ----------
    cooldown_scans:
        Scans that must pass after acting on an operator before the
        engine may act on it again (lets the previous action take
        effect before judging it insufficient).
    max_actions_per_operator:
        Lifetime cap on actions targeting one operator — the runaway
        brake if a breach simply cannot be healed by reconfiguration.
    retune_max_delay / retune_capacity:
        Absolute targets a ``batch_up`` retune applies to the buffer
        legs feeding the overwhelmed operator.  Absolute (not
        multiplicative) so the action log is identical no matter what
        the buffers currently hold.
    scale_step:
        Worker threads added by one ``scale`` action (and removed
        again by its recovery revert).
    execute_stage_fraction:
        When the doctor's dominant traced stage for the breach episode
        is ``execute`` with at least this fraction of traced time, the
        breach is judged CPU-bound and ``scale`` is preferred over
        ``retune``.
    revert_scale_on_recover:
        Emit the compensating scale-down when the SLO that triggered a
        scale-up recovers.  Retunes are never reverted: the wider
        batching regime *is* the steady-state fix.
    """

    cooldown_scans: int = 10
    max_actions_per_operator: int = 3
    retune_max_delay: float = 0.05
    retune_capacity: int = 64 * 1024
    scale_step: int = 1
    execute_stage_fraction: float = 0.6
    revert_scale_on_recover: bool = True

    def __post_init__(self) -> None:
        if self.cooldown_scans < 0:
            raise ValueError(f"cooldown_scans must be >= 0: {self.cooldown_scans}")
        if self.max_actions_per_operator < 1:
            raise ValueError(
                f"max_actions_per_operator must be >= 1: {self.max_actions_per_operator}"
            )
        if self.retune_max_delay <= 0:
            raise ValueError(f"retune_max_delay must be positive: {self.retune_max_delay}")
        if self.retune_capacity <= 0:
            raise ValueError(f"retune_capacity must be positive: {self.retune_capacity}")
        if self.scale_step < 1:
            raise ValueError(f"scale_step must be >= 1: {self.scale_step}")
        if not 0.0 < self.execute_stage_fraction <= 1.0:
            raise ValueError(
                f"execute_stage_fraction must be in (0, 1]: {self.execute_stage_fraction}"
            )


class PolicyEngine:
    """Deterministic breach → reconfiguration decision engine.

    Follows the :class:`~repro.observe.health.AdaptiveSampler`
    template: one :meth:`observe` call per health scan, decisions
    appended to :attr:`decisions`, everything a pure function of the
    inputs.  The engine never *applies* anything — callers hand its
    actions to :func:`apply_action` (worker-local changes) or the
    coordinator (migrations), keeping decide and act separable and the
    decide side trivially replayable.
    """

    def __init__(self, config: Optional[PolicyConfig] = None) -> None:
        self.config = config if config is not None else PolicyConfig()
        #: Every action ever decided, in decision order.
        self.decisions: List[ReconfigAction] = []
        #: Human-readable warnings (breaches the engine declined to act
        #: on, and why) — surfaced by ``repro policy status``.
        self.warnings: List[str] = []
        #: Breach transitions with no attributable root cause.
        self.no_cause = 0
        #: Actions suppressed by cooldown / per-operator caps.
        self.suppressed = 0
        self.scans = 0
        #: Wall seconds spent deciding — duty-cycle accounting only,
        #: never an input to a decision.
        self.scan_seconds = 0.0
        self._actions_for: Dict[str, int] = {}
        self._last_action_scan: Dict[str, int] = {}
        # Breaching SLO -> the scale-up it triggered, for the
        # compensating scale-down on recovery.
        self._scaled_for: Dict[str, ReconfigAction] = {}

    # -- decisions ----------------------------------------------------------
    def observe(
        self,
        scan: int,
        transitions: Sequence[Tuple[str, str]],
        report: Mapping[str, Any],
        observer: Optional[RuntimeObserver] = None,
    ) -> List[ReconfigAction]:
        """Apply one health scan's verdict; returns the actions decided.

        ``transitions`` is :meth:`HealthEngine.scan_once`'s return value
        (``(slo, "breach"|"recover")`` pairs) and ``report`` the
        :func:`repro.observe.doctor.diagnose` dict for the same scan.
        """
        t0 = time.perf_counter()
        actions: List[ReconfigAction] = []
        for slo, transition in transitions:
            if transition == "recover":
                action = self._on_recover(scan, slo)
            else:
                action = self._on_breach(scan, slo, report, observer)
            if action is not None:
                actions.append(action)
                self.decisions.append(action)
                self._actions_for[action.operator] = (
                    self._actions_for.get(action.operator, 0) + 1
                )
                self._last_action_scan[action.operator] = scan
                if observer is not None:
                    observer.event(
                        "policy",
                        "action",
                        kind=action.kind,
                        operator=action.operator,
                        slo=action.slo,
                        cause=action.cause,
                        scan=scan,
                    )
        self.scans += 1
        if observer is not None:
            self._export(observer)
        self.scan_seconds += time.perf_counter() - t0
        return actions

    def _on_breach(
        self,
        scan: int,
        slo: str,
        report: Mapping[str, Any],
        observer: Optional[RuntimeObserver],
    ) -> Optional[ReconfigAction]:
        root = report.get("root_cause")
        if not isinstance(root, Mapping) or not root:
            self.no_cause += 1
            self._warn(
                scan,
                f"breach of {slo!r} has no attributable root cause; taking no action",
                observer,
                slo=slo,
            )
            return None
        cause_type = str(root.get("type", ""))
        operator = str(root.get("operator", ""))
        worker = _as_worker_id(root.get("worker"))
        if not operator:
            self.no_cause += 1
            self._warn(
                scan,
                f"breach of {slo!r}: root cause names no operator; taking no action",
                observer,
                slo=slo,
            )
            return None
        if not self._may_act(scan, operator):
            self.suppressed += 1
            return None
        if cause_type == "backpressure_cascade":
            if self._execute_bound(report, slo):
                action = ReconfigAction(
                    scan=scan,
                    kind="scale",
                    operator=operator,
                    slo=slo,
                    cause=cause_type,
                    reason=(
                        f"execute-stage-bound breach of {slo}: add "
                        f"{self.config.scale_step} worker thread(s)"
                    ),
                    worker=worker,
                    params={"workers_delta": self.config.scale_step},
                )
                self._scaled_for[slo] = action
                return action
            return ReconfigAction(
                scan=scan,
                kind="retune",
                operator=operator,
                slo=slo,
                cause=cause_type,
                reason=(
                    f"backpressure cascade rooted at {operator}: batch up "
                    f"the legs feeding it"
                ),
                worker=worker,
                params={
                    "operator": operator,
                    "where": "into",
                    "max_delay": self.config.retune_max_delay,
                    "capacity": self.config.retune_capacity,
                },
            )
        if cause_type == "compute_bound":
            # The profiler already established the operator is burning
            # CPU (not queueing, not blocked): more worker threads is
            # the only reconfiguration that adds compute.
            action = ReconfigAction(
                scan=scan,
                kind="scale",
                operator=operator,
                slo=slo,
                cause=cause_type,
                reason=(
                    f"compute-bound breach of {slo}: {operator} dominates "
                    f"sampled CPU; add {self.config.scale_step} worker "
                    "thread(s)"
                ),
                worker=worker,
                params={"workers_delta": self.config.scale_step},
            )
            self._scaled_for[slo] = action
            return action
        if cause_type == "injected_fault":
            if worker is None:
                self._warn(
                    scan,
                    f"breach of {slo!r}: injected fault on {operator!r} has no "
                    "worker attribution; cannot migrate",
                    observer,
                    slo=slo,
                )
                return None
            return ReconfigAction(
                scan=scan,
                kind="migrate",
                operator=operator,
                slo=slo,
                cause=cause_type,
                reason=(
                    f"injected fault on worker {worker}: migrate {operator} "
                    "to a healthy worker"
                ),
                worker=worker,
                params={"operator": operator, "from_worker": worker},
            )
        self._warn(
            scan,
            f"breach of {slo!r}: cause type {cause_type!r} is not actionable "
            "by reconfiguration; taking no action",
            observer,
            slo=slo,
        )
        return None

    def _on_recover(self, scan: int, slo: str) -> Optional[ReconfigAction]:
        scaled = self._scaled_for.pop(slo, None)
        if scaled is None or not self.config.revert_scale_on_recover:
            return None
        delta = int(scaled.params.get("workers_delta", 0))
        if delta <= 0:
            return None
        return ReconfigAction(
            scan=scan,
            kind="scale",
            operator=scaled.operator,
            slo=slo,
            cause="recovered",
            reason=f"{slo} recovered: revert the scale-up from scan {scaled.scan}",
            worker=scaled.worker,
            params={"workers_delta": -delta},
        )

    def _may_act(self, scan: int, operator: str) -> bool:
        if self._actions_for.get(operator, 0) >= self.config.max_actions_per_operator:
            return False
        last = self._last_action_scan.get(operator)
        return last is None or scan - last >= self.config.cooldown_scans

    def _execute_bound(self, report: Mapping[str, Any], slo: str) -> bool:
        for episode in report.get("breaches", ()):
            if not isinstance(episode, Mapping) or episode.get("slo") != slo:
                continue
            stage = episode.get("dominant_stage")
            if not isinstance(stage, Mapping):
                return False
            fraction = stage.get("fraction")
            return (
                stage.get("stage") == "execute"
                and isinstance(fraction, (int, float))
                and float(fraction) >= self.config.execute_stage_fraction
            )
        return False

    def _warn(
        self,
        scan: int,
        message: str,
        observer: Optional[RuntimeObserver],
        slo: str,
    ) -> None:
        self.warnings.append(f"scan {scan}: {message}")
        if observer is not None:
            observer.event("policy", "no_action", slo=slo, scan=scan, reason=message)

    def _export(self, observer: RuntimeObserver) -> None:
        registry = observer.registry
        registry.counter(
            "neptune_policy_scans_total", None, "Policy-engine scans observed"
        ).set_total(float(self.scans))
        registry.counter(
            "neptune_policy_actions_total", None, "Reconfiguration actions decided"
        ).set_total(float(len(self.decisions)))
        registry.counter(
            "neptune_policy_no_cause_total",
            None,
            "Breaches with no attributable root cause",
        ).set_total(float(self.no_cause))

    # -- reporting ----------------------------------------------------------
    def action_log(self) -> List[str]:
        """The canonical action log: one sorted-key JSON line per
        decision.  Two runs observing the same scans produce
        byte-identical logs (the determinism contract)."""
        return [action.as_line() for action in self.decisions]

    def status(self) -> Dict[str, Any]:
        """JSON-friendly engine summary (``repro policy status``)."""
        by_kind: Dict[str, int] = {}
        for action in self.decisions:
            by_kind[action.kind] = by_kind.get(action.kind, 0) + 1
        return {
            "scans": self.scans,
            "scan_seconds": self.scan_seconds,
            "actions": len(self.decisions),
            "actions_by_kind": by_kind,
            "no_cause": self.no_cause,
            "suppressed": self.suppressed,
            "warnings": list(self.warnings),
            "last_actions": [a.as_dict() for a in self.decisions[-5:]],
        }


def _as_worker_id(value: Any) -> Optional[int]:
    """Doctor reports carry worker ids as ints, digit strings, or not
    at all; normalize to ``Optional[int]``."""
    if isinstance(value, bool):
        return None
    if isinstance(value, int):
        return value
    if isinstance(value, str) and value.isdigit():
        return int(value)
    return None


def action_to_changes(action: ReconfigAction) -> Dict[str, Any]:
    """Translate a worker-local action into the ``reconfigure``
    control-plane ``changes`` payload.

    ``migrate`` is not worker-local (it is a coordinator re-plan +
    rolling restart) and raises ``ValueError``.
    """
    if action.kind == "retune":
        return {
            "retune": {
                "operator": str(action.params.get("operator", action.operator)),
                "where": str(action.params.get("where", "into")),
                "max_delay": action.params.get("max_delay"),
                "capacity": action.params.get("capacity"),
            }
        }
    if action.kind == "scale":
        return {"scale": {"workers_delta": int(action.params.get("workers_delta", 0))}}
    raise ValueError(f"action kind {action.kind!r} is not a worker-local change")


def apply_action(target: Any, action: ReconfigAction) -> Dict[str, Any]:
    """Apply a worker-local action to any target exposing
    ``reconfigure(changes)`` — a :class:`NeptuneRuntime`, a
    :class:`DistributedWorker`, or a :class:`RemoteWorker` proxy —
    and return the target's applied-changes report."""
    return dict(target.reconfigure(action_to_changes(action)))
