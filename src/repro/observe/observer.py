"""The observer: one handle bundling tracing, telemetry, and timeline.

A :class:`RuntimeObserver` is the single object threaded through the
runtime (``NeptuneRuntime(..., observer=...)``), workers, transports,
and chaos scenarios.  Components hold a reference and guard every
observation with ``if observer is not None`` — an unobserved runtime
pays exactly that check on its hot paths.
"""

from __future__ import annotations

from typing import Optional

from repro.observe.instruments import TelemetryRegistry
from repro.observe.profiler import SamplingProfiler
from repro.observe.timeline import EventTimeline
from repro.observe.tracing import TraceCollector, Tracer
from repro.util.clock import SYSTEM_CLOCK, Clock

__all__ = ["RuntimeObserver"]


class RuntimeObserver:
    """Aggregates the four observability facilities for one runtime.

    - ``tracer`` mints sampled trace contexts at sources
      (``sample_every=0`` disables tracing while keeping telemetry and
      the timeline live);
    - ``collector`` stores closed per-hop stage spans;
    - ``registry`` holds named counters / gauges / histograms;
    - ``timeline`` rings structured runtime events.
    """

    def __init__(
        self,
        sample_every: int = 0,
        timeline_capacity: int = 4096,
        max_traces: int = 2048,
        max_instruments: int = 4096,
        clock: Clock = SYSTEM_CLOCK,
    ) -> None:
        self.clock = clock
        self.tracer = Tracer(sample_every=sample_every)
        self.collector = TraceCollector(max_traces=max_traces)
        self.registry = TelemetryRegistry(max_instruments=max_instruments)
        self.timeline = EventTimeline(capacity=timeline_capacity, clock=clock)
        # Attached by whoever builds a SamplingProfiler for this
        # runtime; scrape_observer exports its series when present.
        self.profiler: Optional[SamplingProfiler] = None

    @property
    def tracing_enabled(self) -> bool:
        """Whether the tracer is sampling any packets."""
        return self.tracer.enabled

    def event(self, category: str, name: str, **attrs: object) -> None:
        """Record a timeline event (convenience passthrough)."""
        self.timeline.record(category, name, **attrs)

    @staticmethod
    def for_tracing(sample_every: int = 1) -> "RuntimeObserver":
        """An observer that traces every ``sample_every``-th packet."""
        return RuntimeObserver(sample_every=sample_every)
