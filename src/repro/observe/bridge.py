"""Bridges from the runtime's existing ad-hoc counters to the registry.

The runtime already counts nearly everything the paper's analysis needs
— ``core.metrics`` operator counters, ``StreamBuffer`` flush stats,
``WatermarkChannel`` gate state, ``CompressionStats`` decisions,
``ObjectPool`` reuse counters, ``TcpTransport``/``TcpListener``
recovery stats — it just counts it in scattered instance attributes.
Rather than rewrite every hot-path increment (and pay for it), these
scrapers *pull* that state into a :class:`TelemetryRegistry` at export
time: hot paths stay untouched, and a scrape is O(instruments).

All runtime objects are duck-typed (``Any``): the bridge reads public
counters and never imports ``repro.core``/``repro.net``, so the observe
package stays dependency-free of the runtime it observes.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional

from repro.observe.instruments import TelemetryRegistry

__all__ = [
    "absorb_series",
    "registry_series",
    "scrape_distributed",
    "scrape_job",
    "scrape_listener",
    "scrape_observer",
    "scrape_transport",
    "scrape_worker",
    "worker_series",
]

_QUANTILES = (50.0, 95.0, 99.0)


def scrape_job(
    registry: TelemetryRegistry,
    job: Any,
    extra: Optional[Mapping[str, str]] = None,
) -> None:
    """Scrape one job runtime (``_JobRuntime`` or a ``JobHandle``).

    Populates operator, flow-control, buffer, compression, and
    object-pool instruments.  Safe to call repeatedly (counters mirror
    via ``set_total`` and never move backwards).  ``extra`` labels are
    merged into every instrument — pass ``{"worker": "0"}`` when
    scraping the per-worker jobs of a distributed deployment so
    partial counts from different workers never collide on one series.
    """
    inner = getattr(job, "_job", None)
    if inner is not None:  # accept a JobHandle transparently
        job = inner
    base: Dict[str, str] = dict(extra or {})
    _scrape_operators(registry, job, base)
    _scrape_flowcontrol(registry, job, base)
    _scrape_buffers(registry, job, base)
    _scrape_compression_and_pools(registry, job, base)


def _scrape_operators(
    registry: TelemetryRegistry, job: Any, base: Dict[str, str]
) -> None:
    snapshot: Mapping[str, Mapping[str, float]] = job.metrics.snapshot()
    for op, agg in snapshot.items():
        labels = {**base, "operator": op}
        registry.gauge(
            "neptune_operator_instances", labels, "Parallel instances of the operator"
        ).set(float(agg["instances"]))
        for key, metric, help_ in (
            ("packets_in", "neptune_operator_packets_in_total", "Packets processed"),
            ("packets_out", "neptune_operator_packets_out_total", "Packets emitted"),
            ("bytes_in", "neptune_operator_bytes_in_total", "Batch bytes received"),
            ("bytes_out", "neptune_operator_bytes_out_total", "Serialized bytes emitted"),
            ("batches_in", "neptune_operator_batches_in_total", "Frames drained"),
            ("executions", "neptune_operator_executions_total", "Scheduled executions"),
            (
                "emit_block_seconds",
                "neptune_operator_emit_block_seconds_total",
                "Seconds emits spent blocked on backpressure",
            ),
        ):
            registry.counter(metric, labels, help_).set_total(float(agg[key]))
    operators_fn = getattr(job.metrics, "operators", None)
    if operators_fn is None:
        return
    for m in operators_fn():
        labels = {**base, "operator": m.operator, "instance": str(m.instance)}
        if m.latency.count == 0:
            continue
        values = m.latency.percentiles(list(_QUANTILES))
        for q, value in zip(_QUANTILES, values):
            registry.gauge(
                "neptune_operator_batch_latency_seconds",
                {**labels, "quantile": f"p{q:g}"},
                "Channel-put to drain latency percentile per batch",
            ).set(value)


def _scrape_flowcontrol(
    registry: TelemetryRegistry, job: Any, base: Dict[str, str]
) -> None:
    for inst in job.all_instances():
        channel = getattr(inst, "channel", None)
        if channel is None:
            continue
        labels = {**base, "operator": inst.spec.name, "instance": str(inst.index)}
        registry.gauge(
            "neptune_flowcontrol_buffered_bytes", labels, "Bytes in the inbound channel"
        ).set(float(channel.buffered_bytes))
        registry.gauge(
            "neptune_flowcontrol_gated", labels, "1 while the channel gate is closed"
        ).set(1.0 if channel.gated else 0.0)
        registry.counter(
            "neptune_flowcontrol_gate_trips_total", labels, "High-watermark crossings"
        ).set_total(float(channel.gate_trips))
        registry.counter(
            "neptune_flowcontrol_writer_blocks_total", labels, "Writers blocked by the gate"
        ).set_total(float(channel.writer_blocks))
        registry.counter(
            "neptune_flowcontrol_gated_seconds_total",
            labels,
            "Cumulative seconds the channel gate spent closed",
        ).set_total(float(getattr(channel, "gated_seconds", 0.0)))


def _scrape_buffers(
    registry: TelemetryRegistry, job: Any, base: Dict[str, str]
) -> None:
    lbl = base or None
    totals = {
        "capacity_flushes": 0.0,
        "timer_flushes": 0.0,
        "manual_flushes": 0.0,
        "bytes_flushed": 0.0,
        "packets_flushed": 0.0,
        "buffers_recycled": 0.0,
        "spare_allocs": 0.0,
    }
    pending = 0.0
    for buf in getattr(job, "buffers", []):
        for key in totals:
            totals[key] += float(getattr(buf, key, 0))
        pending += float(buf.pending_bytes)
    for key, metric, help_ in (
        ("capacity_flushes", "neptune_buffer_capacity_flushes_total", "Flushes on capacity"),
        ("timer_flushes", "neptune_buffer_timer_flushes_total", "Flushes on max-delay timer"),
        ("manual_flushes", "neptune_buffer_manual_flushes_total", "Forced flushes (drain)"),
        ("bytes_flushed", "neptune_buffer_bytes_flushed_total", "Bytes flushed downstream"),
        ("packets_flushed", "neptune_buffer_packets_flushed_total", "Packets flushed"),
        (
            "buffers_recycled",
            "neptune_buffer_recycled_total",
            "Flush bytearrays returned to the double-buffer pool",
        ),
        (
            "spare_allocs",
            "neptune_buffer_spare_allocs_total",
            "Fresh bytearrays allocated because the spare pool was empty",
        ),
    ):
        registry.counter(metric, lbl, help_).set_total(totals[key])
    registry.gauge(
        "neptune_buffer_pending_bytes", lbl, "Unflushed bytes across all link legs"
    ).set(pending)


def _scrape_compression_and_pools(
    registry: TelemetryRegistry, job: Any, base: Dict[str, str]
) -> None:
    lbl = base or None
    seen = compressed = bytes_in = bytes_out = secs = 0.0
    decisions: Dict[str, float] = {}
    created = reused = overflow = prealloc = 0.0
    for inst in job.all_instances():
        for links in getattr(inst, "out_links", {}).values():
            for out in links:
                policy = getattr(out, "policy", None)
                if policy is None:
                    continue
                stats = policy.stats
                seen += stats.payloads_seen
                compressed += stats.payloads_compressed
                bytes_in += stats.bytes_in
                bytes_out += stats.bytes_out
                secs += stats.compress_seconds
                for decision, n in stats.decisions.items():
                    key = getattr(decision, "value", str(decision))
                    decisions[key] = decisions.get(key, 0.0) + n
        for pool in getattr(inst, "_pools", {}).values():
            created += pool.created
            reused += pool.reused
            overflow += pool.overflow
            prealloc += pool.preallocated
    for value, metric, help_ in (
        (seen, "neptune_compression_payloads_total", "Flushed payloads seen by policies"),
        (compressed, "neptune_compression_compressed_total", "Payloads actually compressed"),
        (bytes_in, "neptune_compression_bytes_in_total", "Bytes before compression"),
        (bytes_out, "neptune_compression_bytes_out_total", "Bytes after compression"),
        (secs, "neptune_compression_seconds_total", "Seconds spent in encode()"),
    ):
        registry.counter(metric, lbl, help_).set_total(value)
    for key, n in sorted(decisions.items()):
        registry.counter(
            "neptune_compression_decisions_total",
            {**base, "decision": key},
            "encode() outcomes by decision",
        ).set_total(n)
    registry.counter(
        "neptune_pool_created_total", lbl, "Packet-pool objects allocated"
    ).set_total(created)
    registry.counter(
        "neptune_pool_reused_total", lbl, "Packet-pool acquisitions served from free list"
    ).set_total(reused)
    registry.counter(
        "neptune_pool_overflow_total", lbl, "Acquisitions past the pool bound"
    ).set_total(overflow)
    acquisitions = reused + (created - prealloc)
    registry.gauge(
        "neptune_pool_reuse_ratio", lbl, "Fraction of acquisitions served from free list"
    ).set(reused / acquisitions if acquisitions > 0 else 0.0)


def scrape_worker(
    registry: TelemetryRegistry,
    worker: Any,
    extra: Optional[Mapping[str, str]] = None,
) -> None:
    """Scrape one :class:`~repro.core.distributed.DistributedWorker`:
    its job runtime (labelled ``worker=N`` so partial per-worker counts
    stay distinct series), its outbound transports (labelled by
    destination ``peer``), and its listener."""
    wl: Dict[str, str] = dict(extra or {})
    wl.setdefault("worker", str(worker.worker_id))
    scrape_job(registry, worker.job, extra=wl)
    # Copy first: the scrape may run on a control thread while flush
    # threads are still lazily adding transports.
    for peer, transport in list(getattr(worker, "_transports", {}).items()):
        scrape_transport(registry, transport, {**wl, "peer": str(peer)})
    listener = getattr(worker, "_listener", None)
    if listener is not None:
        scrape_listener(registry, listener, wl)


def scrape_distributed(registry: TelemetryRegistry, job: Any) -> None:
    """Scrape a :class:`~repro.core.distributed.DistributedJob`: every
    worker via :func:`scrape_worker`."""
    for w in getattr(job, "workers", []):
        scrape_worker(registry, w)


def registry_series(
    registry: TelemetryRegistry,
    extra: Optional[Mapping[str, str]] = None,
) -> List[Dict[str, Any]]:
    """Flatten every instrument of ``registry`` into JSON-able series.

    Histograms ship their finite-bound cumulative counts (the +Inf
    remainder is implied by ``count``), so :func:`absorb_series` can
    reconstruct the exact bucket state on the other side.  ``extra``
    labels are merged into every sample (pass ``{"worker": "0"}`` when
    exporting a worker-local registry for the cluster collector).
    """
    out: List[Dict[str, Any]] = []
    for sample in registry.collect():
        labels = dict(sample.labels or ())
        if extra:
            labels.update(extra)
        flat: Dict[str, Any] = {
            "name": sample.name,
            "kind": sample.kind,
            "help": sample.help,
            "labels": labels,
            "value": sample.value,
        }
        if sample.histogram is not None:
            hist = sample.histogram
            flat["count"] = hist.count
            flat["buckets"] = [
                [bound, cum]
                for bound, cum in hist.cumulative_buckets()
                if bound != float("inf")
            ]
        out.append(flat)
    return out


def worker_series(worker: Any) -> List[Dict[str, Any]]:
    """One worker's full instrument state as JSON-able flat series.

    This is what a worker process answers to the control plane's
    ``telemetry`` command: every sample carries its ``worker=N`` label,
    so a coordinator can :func:`absorb_series` from all shards into one
    registry without collisions and feed ``repro metrics`` or the
    HealthEngine exactly as in-process scraping would.
    """
    registry = TelemetryRegistry()
    scrape_worker(registry, worker)
    return registry_series(registry)


def absorb_series(registry: TelemetryRegistry, series: Any) -> None:
    """Merge :func:`worker_series`/:func:`registry_series` output into
    ``registry``.

    Counters land via ``set_total`` and histograms via
    ``set_cumulative`` (both never-backwards, so idempotent re-scrapes
    and re-delivered deltas never inflate a series), gauges via ``set``;
    unknown kinds and shape mismatches are ignored rather than
    poisoning the whole scrape.
    """
    for raw in series:
        name = raw.get("name")
        if not name:
            continue
        labels = raw.get("labels") or None
        help_ = raw.get("help", "")
        value = float(raw.get("value", 0.0))
        kind = raw.get("kind")
        if kind == "counter":
            registry.counter(name, labels, help_).set_total(value)
        elif kind == "gauge":
            registry.gauge(name, labels, help_).set(value)
        elif kind == "histogram":
            raw_buckets = raw.get("buckets") or []
            try:
                bounds = tuple(float(b[0]) for b in raw_buckets)
                hist = registry.histogram(name, labels, help_, buckets=bounds)
                hist.set_cumulative(
                    [int(b[1]) for b in raw_buckets],
                    int(raw.get("count", 0)),
                    value,
                )
            except (ValueError, TypeError, IndexError):
                continue  # malformed or bound-mismatched snapshot


def scrape_transport(
    registry: TelemetryRegistry,
    transport: Any,
    labels: Optional[Mapping[str, str]] = None,
) -> None:
    """Scrape one :class:`~repro.net.transport.TcpTransport`."""
    lbl = dict(labels or {})
    for attr, metric, help_ in (
        ("bytes_sent", "neptune_transport_bytes_sent_total", "Wire bytes written"),
        ("frames_sent", "neptune_transport_frames_sent_total", "Frames written"),
        ("acked_frames", "neptune_transport_acked_frames_total", "Frames acknowledged"),
        ("reconnects", "neptune_transport_reconnects_total", "Successful reconnects"),
        ("replayed_frames", "neptune_transport_replayed_frames_total", "Frames replayed"),
        (
            "send_stalls",
            "neptune_transport_send_stalls_total",
            "Sends that blocked on a full replay window",
        ),
    ):
        registry.counter(metric, lbl, help_).set_total(float(getattr(transport, attr, 0)))
    registry.gauge(
        "neptune_transport_unacked_frames", lbl, "Frames awaiting acknowledgement"
    ).set(float(getattr(transport, "unacked_frames", 0)))
    registry.gauge(
        "neptune_transport_unacked_bytes", lbl, "Replay-window bytes in flight"
    ).set(float(getattr(transport, "unacked_bytes", 0)))


def scrape_listener(
    registry: TelemetryRegistry,
    listener: Any,
    labels: Optional[Mapping[str, str]] = None,
) -> None:
    """Scrape one :class:`~repro.net.transport.TcpListener`."""
    lbl = dict(labels or {})
    for attr, metric, help_ in (
        (
            "duplicates_suppressed",
            "neptune_listener_duplicates_suppressed_total",
            "Replayed frames suppressed by exactly-once dedup",
        ),
        ("gap_resets", "neptune_listener_gap_resets_total", "Connections severed on seq gap"),
        (
            "corruption_resets",
            "neptune_listener_corruption_resets_total",
            "Connections severed on checksum corruption",
        ),
        (
            "injected_resets",
            "neptune_listener_injected_resets_total",
            "Connections killed by fault injection",
        ),
    ):
        registry.counter(metric, lbl, help_).set_total(float(getattr(listener, attr, 0)))


def scrape_observer(observer: Any) -> None:
    """Scrape the observer's own facilities into its registry."""
    registry: TelemetryRegistry = observer.registry
    registry.counter(
        "neptune_timeline_events_total", None, "Runtime events recorded (incl. evicted)"
    ).set_total(float(observer.timeline.recorded))
    registry.gauge(
        "neptune_timeline_events_retained", None, "Events currently in the ring"
    ).set(float(len(observer.timeline)))
    registry.counter(
        "neptune_timeline_dropped_total",
        None,
        "Events overwritten on ring wrap (diagnosis completeness)",
    ).set_total(float(getattr(observer.timeline, "dropped", 0)))
    registry.gauge(
        "neptune_trace_traces", None, "Distinct traces stored"
    ).set(float(len(observer.collector)))
    registry.counter(
        "neptune_trace_spans_dropped_total", None, "Spans dropped past the trace cap"
    ).set_total(float(observer.collector.dropped))
    profiler = getattr(observer, "profiler", None)
    if profiler is not None:
        # neptune_profile_* series ride every scrape path for free:
        # DeltaSource deltas, flight dumps, metrics/doctor snapshots.
        profiler.export(registry)
