"""Continuous sampling profiler: per-operator CPU attribution.

The queueing planes (tracing, health, collector) explain *where packets
wait*; this module explains *where cycles go*.  A background sampler
thread walks :func:`sys._current_frames` at a configurable rate
(default ~50 Hz) and classifies every thread it sees:

- **operator** threads — a worker thread currently inside
  ``_InstanceRuntime.execute`` announces itself through the
  thread-ownership registry (:func:`set_thread_owner` /
  :func:`clear_thread_owner`), so its samples are attributed to the
  operator it is running, not to the pool thread's name;
- **runtime** threads — everything else (flush timers, transport
  readers, control servers …) is attributed to its thread name with
  trailing ``-<digits>`` segments stripped, so labels are byte-stable
  across runs and ports.

Per-thread **on-CPU vs off-CPU** accounting comes from
``/proc/self/task/<native_id>/stat`` utime+stime deltas on Linux (keyed
by :func:`threading.get_native_id`).  Where ``/proc`` is missing — or a
per-thread read fails mid-run — the sampler degrades to *wall-only*
mode: the full sample period is attributed as on-CPU so per-operator
**shares** stay unskewed; only the on/off split is lost (and
``cpu_mode`` says so).

Overhead discipline follows the lock-order sanitizer: the ownership
hooks are gated on a module-level ``_ACTIVE`` flag (a dormant profiler
costs one attribute test per execute), all registry mutation is
GIL-atomic so the hot path takes no lock, and the sampler stretches its
own interval whenever a sample's cost would push its duty cycle past
``max_duty`` (3% by default).

Aggregates are bounded everywhere: at most ``max_operators`` labels
(new labels past the cap fold into ``(overflow)``), ``max_stacks``
collapsed stacks per label (overflow folds into ``(other)``), and
``max_frames`` leaf frames per label.  Export paths:

- :meth:`SamplingProfiler.export` publishes ``neptune_profile_*``
  series into a :class:`TelemetryRegistry` (ridden by the DeltaSource /
  ClusterCollector path with worker labels);
- :meth:`SamplingProfiler.snapshot` is the JSON-able full profile the
  control plane's ``profile`` command ships and ``repro profile``
  renders (collapsed stacks or speedscope JSON via :func:`speedscope`);
- :meth:`SamplingProfiler.flight_section` is the compact last-window
  block embedded in flight-recorder dumps.
"""

from __future__ import annotations

import os
import re
import sys
import threading
import time
from types import FrameType
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.observe.instruments import TelemetryRegistry

__all__ = [
    "PROFILE_SCHEMA",
    "SamplingProfiler",
    "set_thread_owner",
    "clear_thread_owner",
    "collapsed",
    "speedscope",
    "merge_profile_snapshots",
]

PROFILE_SCHEMA = "neptune-profile/1"

#: Reserved label for operators past the ``max_operators`` bound.
OVERFLOW_LABEL = "(overflow)"
#: Reserved collapsed-stack key for stacks past the ``max_stacks`` bound.
OTHER_STACK = "(other)"

_TRAILING_NUM = re.compile(r"(-\d+)+\Z")
_INSTANCE_SUFFIX = re.compile(r"\[\d+\]\Z")

try:  # pragma: no cover - platform constant
    _CLK_TCK = float(os.sysconf("SC_CLK_TCK"))
except (AttributeError, ValueError, OSError):  # pragma: no cover
    _CLK_TCK = 100.0


# ---------------------------------------------------------------------------
# Thread-ownership registry (hot path)
# ---------------------------------------------------------------------------


class _Owner:
    """Per-thread ownership slot: current operator label + native tid.

    The native id is cached on first registration so the steady-state
    hot path never repeats the ``gettid`` syscall.
    """

    __slots__ = ("label", "native_id")

    def __init__(self, label: Optional[str], native_id: Optional[int]) -> None:
        self.label = label
        self.native_id = native_id


#: True while at least one profiler is sampling.  The runtime tests this
#: before calling the ownership hooks, so a dormant profiler costs one
#: attribute lookup per execute.
_ACTIVE: bool = False
_ACTIVE_COUNT = 0
#: ident -> _Owner.  Mutated GIL-atomically (dict get/set on the owning
#: thread, list() iteration on the sampler) — no lock on the hot path.
_OWNERS: Dict[int, _Owner] = {}


def set_thread_owner(label: str) -> None:
    """Attribute the calling thread's samples to operator ``label``."""
    ident = threading.get_ident()
    owner = _OWNERS.get(ident)
    if owner is None:
        _OWNERS[ident] = _Owner(label, threading.get_native_id())
    else:
        owner.label = label


def clear_thread_owner() -> None:
    """The calling thread left operator code (back to runtime work)."""
    owner = _OWNERS.get(threading.get_ident())
    if owner is not None:
        owner.label = None


def _activate() -> None:
    global _ACTIVE, _ACTIVE_COUNT
    _ACTIVE_COUNT += 1
    _ACTIVE = True


def _deactivate() -> None:
    global _ACTIVE, _ACTIVE_COUNT
    _ACTIVE_COUNT = max(0, _ACTIVE_COUNT - 1)
    if _ACTIVE_COUNT == 0:
        _ACTIVE = False
        _OWNERS.clear()


# ---------------------------------------------------------------------------
# CPU accounting
# ---------------------------------------------------------------------------


def read_task_cpu(native_id: int) -> float:
    """On-CPU seconds (utime+stime) of one thread from ``/proc``.

    Parses after the *last* ``)`` because the comm field may itself
    contain parentheses or spaces.
    """
    with open(f"/proc/self/task/{native_id}/stat", "rb") as fh:
        data = fh.read()
    rest = data[data.rindex(b")") + 1 :].split()
    return (int(rest[11]) + int(rest[12])) / _CLK_TCK


#: Injectable reader, faultable in tests (non-Linux fallback coverage).
StatReader = Callable[[int], float]


def _bare_operator(label: str) -> str:
    """``relay[3]`` -> ``relay`` — byte-stable across instance counts."""
    return _INSTANCE_SUFFIX.sub("", label)


def _generic_label(name: str) -> str:
    """``neptune-ctl-52341`` -> ``neptune-ctl`` — byte-stable across ports."""
    return _TRAILING_NUM.sub("", name) or name


def _collapse(frame: Optional[FrameType], depth: int) -> Tuple[str, str]:
    """Collapsed root->leaf stack plus the leaf frame label."""
    parts: List[str] = []
    f = frame
    while f is not None and len(parts) < depth:
        code = f.f_code
        qualname = getattr(code, "co_qualname", code.co_name)
        parts.append(f"{os.path.basename(code.co_filename)}:{qualname}")
        f = f.f_back
    if not parts:
        return "(idle)", "(idle)"
    leaf = parts[0]
    parts.reverse()
    return ";".join(parts), leaf


class _OperatorProfile:
    """Bounded per-label aggregate the sampler feeds."""

    __slots__ = ("kind", "samples", "cpu_seconds", "wall_seconds", "stacks", "top_frames")

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self.samples = 0
        self.cpu_seconds = 0.0
        self.wall_seconds = 0.0
        self.stacks: Dict[str, int] = {}
        self.top_frames: Dict[str, int] = {}

    def note(self, stack: str, leaf: str, max_stacks: int, max_frames: int) -> None:
        stacks = self.stacks
        if stack in stacks or len(stacks) < max_stacks:
            stacks[stack] = stacks.get(stack, 0) + 1
        else:
            stacks[OTHER_STACK] = stacks.get(OTHER_STACK, 0) + 1
        frames = self.top_frames
        if leaf in frames or len(frames) < max_frames:
            frames[leaf] = frames.get(leaf, 0) + 1


class SamplingProfiler:
    """Always-available, duty-cycled ``sys._current_frames`` sampler.

    Parameters
    ----------
    hz:
        Target sampling rate while the duty budget allows it.
    max_duty:
        Ceiling on the sampler's own compute as a fraction of wall
        time; sample cost above it stretches the next interval.
    statfn:
        Per-thread CPU reader, injectable for fault tests.  ``None``
        probes :func:`read_task_cpu` at :meth:`start` and falls back to
        wall-only attribution when ``/proc`` is unavailable.
    """

    def __init__(
        self,
        hz: float = 50.0,
        *,
        max_operators: int = 48,
        max_stacks: int = 256,
        max_frames: int = 24,
        stack_depth: int = 24,
        max_duty: float = 0.03,
        window_seconds: float = 5.0,
        statfn: Optional[StatReader] = None,
    ) -> None:
        if hz <= 0:
            raise ValueError(f"hz must be positive: {hz}")
        self.hz = float(hz)
        self.max_operators = max_operators
        self.max_stacks = max_stacks
        self.max_frames = max_frames
        self.stack_depth = stack_depth
        self.max_duty = max_duty
        self.window_seconds = window_seconds
        self._statfn = statfn
        self.cpu_mode = "wall"
        self.samples = 0
        self.errors = 0
        self.stat_errors = 0
        self.sample_seconds = 0.0
        self._profiles: Dict[str, _OperatorProfile] = {}
        self._cpu_cursor: Dict[int, float] = {}
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._started_at = 0.0
        self._window_index = 0
        self._window_started = 0.0
        self._window_base: Dict[str, Tuple[int, float, float]] = {}
        self._last_window: Optional[Dict[str, Any]] = None
        self._last_window_ts = 0.0

    # -- lifecycle ---------------------------------------------------------
    @property
    def state(self) -> str:
        return "sampling" if self._thread is not None else "dormant"

    def start(self) -> None:
        """Probe the CPU reader, arm the ownership hooks, spawn the sampler."""
        with self._lock:
            if self._thread is not None:
                return
            statfn = self._statfn if self._statfn is not None else read_task_cpu
            try:
                statfn(threading.get_native_id())
                self.cpu_mode = "task-stat"
            except Exception:
                self.cpu_mode = "wall"
            self._statfn = statfn
            self._stop = threading.Event()
            now = time.monotonic()
            self._started_at = now
            self._window_started = now
            self._last_window_ts = now
            _activate()
            self._thread = threading.Thread(
                target=self._run, name="neptune-profiler", daemon=True
            )
            self._thread.start()

    def stop(self, timeout: float = 2.0) -> None:
        """Stop sampling; aggregates survive for export/snapshot."""
        with self._lock:
            thread = self._thread
            if thread is None:
                return
            self._stop.set()
        thread.join(timeout)
        with self._lock:
            self._thread = None
            _deactivate()

    def __enter__(self) -> "SamplingProfiler":
        self.start()
        return self

    def __exit__(self, *exc: Any) -> None:
        self.stop()

    # -- sampler loop ------------------------------------------------------
    def _run(self) -> None:
        period = 1.0 / self.hz
        sleep = period
        last = time.monotonic()
        while not self._stop.wait(sleep):
            now = time.monotonic()
            elapsed = now - last
            last = now
            t0 = time.perf_counter()
            try:
                self._sample_once(elapsed)
            except Exception:
                with self._lock:
                    self.errors += 1
            cost = time.perf_counter() - t0
            with self._lock:
                self.sample_seconds += cost
            # Duty discipline: if one sample cost c, the next interval
            # must be at least c/max_duty for the sampler's own compute
            # to stay under budget.
            sleep = period
            if self.max_duty > 0 and cost / self.max_duty > period:
                sleep = cost / self.max_duty
            if now - self._window_started >= self.window_seconds:
                self._rotate_window(now)

    def _sample_once(self, elapsed: float) -> None:
        frames = sys._current_frames()
        own = threading.get_ident()
        names: Dict[int, Tuple[str, Optional[int]]] = {}
        for t in threading.enumerate():
            ident = t.ident
            if ident is not None:
                names[ident] = (t.name, t.native_id)
        with self._lock:
            self.samples += 1
            for ident, frame in frames.items():
                if ident == own:
                    continue
                owner = _OWNERS.get(ident)
                native: Optional[int]
                if owner is not None and owner.label is not None:
                    label = _bare_operator(owner.label)
                    kind = "operator"
                    native = owner.native_id
                else:
                    info = names.get(ident)
                    if info is None:
                        label, native = "(foreign)", None
                    else:
                        label, native = _generic_label(info[0]), info[1]
                    kind = "runtime"
                prof = self._profiles.get(label)
                if prof is None:
                    if len(self._profiles) >= self.max_operators:
                        label = OVERFLOW_LABEL
                        prof = self._profiles.get(label)
                    if prof is None:
                        prof = _OperatorProfile(kind)
                        self._profiles[label] = prof
                prof.samples += 1
                prof.wall_seconds += elapsed
                prof.cpu_seconds += self._cpu_delta(native, elapsed)
                stack, leaf = _collapse(frame, self.stack_depth)
                prof.note(stack, leaf, self.max_stacks, self.max_frames)
            # Prune cursors/owners of threads that no longer exist, so
            # a churny pool cannot grow either map without bound.
            live = frames.keys()
            for ident in [i for i in _OWNERS if i not in live]:
                _OWNERS.pop(ident, None)
            natives = {o.native_id for o in _OWNERS.values()}
            natives.update(n for _, n in names.values() if n is not None)
            for tid in [t for t in self._cpu_cursor if t not in natives]:
                self._cpu_cursor.pop(tid, None)

    def _cpu_delta(self, native_id: Optional[int], elapsed: float) -> float:
        """On-CPU seconds this thread accrued since its last sample.

        In wall mode (no ``/proc``, or this thread's read failed) the
        full period counts as on-CPU: shares across operators stay
        honest, only the on/off split is unavailable.
        """
        if self.cpu_mode != "task-stat" or native_id is None:
            return elapsed
        statfn = self._statfn
        assert statfn is not None  # set by start()
        try:
            cur = statfn(native_id)
        except Exception:
            self.stat_errors += 1
            self._cpu_cursor.pop(native_id, None)
            return elapsed
        prev = self._cpu_cursor.get(native_id)
        self._cpu_cursor[native_id] = cur
        if prev is None:
            return 0.0
        return max(0.0, cur - prev)

    def _rotate_window(self, now: float) -> None:
        """Close the current window: store per-operator deltas."""
        with self._lock:
            ops: Dict[str, Any] = {}
            base = self._window_base
            new_base: Dict[str, Tuple[int, float, float]] = {}
            for label, prof in self._profiles.items():
                b = base.get(label, (0, 0.0, 0.0))
                d_samples = prof.samples - b[0]
                d_cpu = prof.cpu_seconds - b[1]
                d_wall = prof.wall_seconds - b[2]
                new_base[label] = (prof.samples, prof.cpu_seconds, prof.wall_seconds)
                if d_samples <= 0:
                    continue
                top = max(prof.top_frames.items(), key=lambda kv: kv[1], default=None)
                ops[label] = {
                    "kind": prof.kind,
                    "samples": d_samples,
                    "cpu_seconds": d_cpu,
                    "wall_seconds": d_wall,
                    "top_frame": top[0] if top else None,
                }
            self._window_base = new_base
            self._window_index += 1
            self._last_window = {"index": self._window_index, "operators": ops}
            self._last_window_ts = now
            self._window_started = now

    # -- export ------------------------------------------------------------
    def window_age(self) -> float:
        """Seconds since the last closed profile window."""
        if self._last_window_ts == 0.0:
            return -1.0
        return max(0.0, time.monotonic() - self._last_window_ts)

    def export(self, registry: TelemetryRegistry) -> None:
        """Publish ``neptune_profile_*`` series (monotonic totals)."""
        with self._lock:
            rows = [
                (
                    label,
                    prof.kind,
                    prof.samples,
                    prof.cpu_seconds,
                    prof.wall_seconds,
                    sorted(prof.top_frames.items(), key=lambda kv: (-kv[1], kv[0]))[:5],
                )
                for label, prof in self._profiles.items()
            ]
            samples, errors, stat_errors = self.samples, self.errors, self.stat_errors
            sample_seconds = self.sample_seconds
        for label, kind, n, cpu, wall, top in rows:
            labels = {"operator": label, "kind": kind}
            registry.counter(
                "neptune_profile_samples_total", labels, "Stack samples per operator."
            ).set_total(n)
            registry.counter(
                "neptune_profile_cpu_seconds_total",
                labels,
                "Sampled on-CPU seconds per operator.",
            ).set_total(cpu)
            registry.counter(
                "neptune_profile_wall_seconds_total",
                labels,
                "Sampled wall seconds per operator.",
            ).set_total(wall)
            registry.counter(
                "neptune_profile_off_cpu_seconds_total",
                labels,
                "Sampled off-CPU (blocked) seconds per operator.",
            ).set_total(max(0.0, wall - cpu))
            for frame, count in top:
                registry.counter(
                    "neptune_profile_top_frame_samples_total",
                    {"operator": label, "frame": frame},
                    "Samples per leaf frame (top frames only).",
                ).set_total(count)
        registry.gauge(
            "neptune_profile_sampler_state",
            None,
            "1 while the profiler samples, 0 dormant.",
        ).set(1.0 if self._thread is not None else 0.0)
        registry.gauge(
            "neptune_profile_cpu_mode",
            None,
            "1 when per-thread /proc accounting is live, 0 in wall-only mode.",
        ).set(1.0 if self.cpu_mode == "task-stat" else 0.0)
        registry.gauge(
            "neptune_profile_window_age_seconds",
            None,
            "Seconds since the last closed profile window.",
        ).set(self.window_age())
        registry.counter(
            "neptune_profile_sampler_samples_total", None, "Sampler sweeps taken."
        ).set_total(samples)
        registry.counter(
            "neptune_profile_sampler_errors_total", None, "Sampler sweep errors."
        ).set_total(errors)
        registry.counter(
            "neptune_profile_stat_errors_total",
            None,
            "Failed /proc task-stat reads (fell back to wall attribution).",
        ).set_total(stat_errors)
        registry.counter(
            "neptune_profile_sampler_cpu_seconds_total",
            None,
            "Compute spent inside the sampler itself.",
        ).set_total(sample_seconds)

    def snapshot(self) -> Dict[str, Any]:
        """Full JSON-able profile (stacks included) for the control plane."""
        with self._lock:
            operators: Dict[str, Any] = {}
            for label, prof in sorted(self._profiles.items()):
                operators[label] = {
                    "kind": prof.kind,
                    "samples": prof.samples,
                    "cpu_seconds": prof.cpu_seconds,
                    "wall_seconds": prof.wall_seconds,
                    "off_cpu_seconds": max(0.0, prof.wall_seconds - prof.cpu_seconds),
                    "stacks": dict(prof.stacks),
                    "top_frames": dict(prof.top_frames),
                }
            return {
                "schema": PROFILE_SCHEMA,
                "state": self.state,
                "hz": self.hz,
                "cpu_mode": self.cpu_mode,
                "samples": self.samples,
                "errors": self.errors,
                "stat_errors": self.stat_errors,
                "sample_seconds": self.sample_seconds,
                "window": {
                    "index": self._window_index,
                    "seconds": self.window_seconds,
                    "age_seconds": self.window_age(),
                },
                "operators": operators,
            }

    def info(self) -> Dict[str, Any]:
        """Cheap status block for ``collect_info`` / ``cluster status``."""
        return {
            "state": self.state,
            "hz": self.hz,
            "cpu_mode": self.cpu_mode,
            "samples": self.samples,
            "errors": self.errors,
            "stat_errors": self.stat_errors,
            "operators": len(self._profiles),
            "window_age_seconds": self.window_age(),
        }

    def flight_section(self) -> Dict[str, Any]:
        """Compact last-window block for flight-recorder dumps.

        Same shape as :meth:`snapshot` minus the per-stack detail (only
        the top 3 leaf frames per operator survive), so
        :func:`merge_profile_snapshots` and ``repro profile
        --from-dump`` consume it unchanged.
        """
        with self._lock:
            operators: Dict[str, Any] = {}
            for label, prof in sorted(self._profiles.items()):
                top = sorted(prof.top_frames.items(), key=lambda kv: (-kv[1], kv[0]))[:3]
                operators[label] = {
                    "kind": prof.kind,
                    "samples": prof.samples,
                    "cpu_seconds": prof.cpu_seconds,
                    "wall_seconds": prof.wall_seconds,
                    "off_cpu_seconds": max(0.0, prof.wall_seconds - prof.cpu_seconds),
                    "top_frames": dict(top),
                }
            window = self._last_window
            return {
                "schema": PROFILE_SCHEMA,
                "state": self.state,
                "cpu_mode": self.cpu_mode,
                "samples": self.samples,
                "window": dict(window) if window else None,
                "window_age_seconds": self.window_age(),
                "operators": operators,
            }


# ---------------------------------------------------------------------------
# Rendering / merging (operate on snapshot dicts, usable post-mortem)
# ---------------------------------------------------------------------------


def collapsed(operators: Dict[str, Any]) -> str:
    """Render a snapshot's operators as collapsed-stack text.

    One line per distinct stack, prefixed by the operator label —
    directly consumable by flamegraph.pl / speedscope import.
    """
    lines: List[str] = []
    for label in sorted(operators):
        stacks = operators[label].get("stacks") or {}
        for stack in sorted(stacks):
            lines.append(f"{label};{stack} {stacks[stack]}")
    return "\n".join(lines) + ("\n" if lines else "")


def speedscope(operators: Dict[str, Any], name: str = "neptune") -> Dict[str, Any]:
    """Render a snapshot's operators as a speedscope JSON document.

    One ``sampled`` profile per operator, unit seconds.  Each stack's
    weight is the operator's sampled ``cpu_seconds`` split by stack
    sample count, so the per-operator weight totals agree *exactly*
    with the ``neptune_profile_cpu_seconds_total`` series at snapshot
    time.
    """
    frame_index: Dict[str, int] = {}
    frames: List[Dict[str, str]] = []
    profiles: List[Dict[str, Any]] = []
    for label in sorted(operators):
        info = operators[label]
        stacks: Dict[str, int] = info.get("stacks") or {}
        total = sum(stacks.values())
        cpu = float(info.get("cpu_seconds", 0.0))
        samples: List[List[int]] = []
        weights: List[float] = []
        for stack in sorted(stacks):
            idxs: List[int] = []
            for fr in stack.split(";"):
                idx = frame_index.get(fr)
                if idx is None:
                    idx = len(frames)
                    frame_index[fr] = idx
                    frames.append({"name": fr})
                idxs.append(idx)
            samples.append(idxs)
            weights.append(cpu * stacks[stack] / total if total else 0.0)
        profiles.append(
            {
                "type": "sampled",
                "name": label,
                "unit": "seconds",
                "startValue": 0,
                "endValue": cpu,
                "samples": samples,
                "weights": weights,
            }
        )
    return {
        "$schema": "https://www.speedscope.app/file-format-schema.json",
        "name": name,
        "exporter": "repro-neptune",
        "activeProfileIndex": 0,
        "shared": {"frames": frames},
        "profiles": profiles,
    }


def merge_profile_snapshots(snaps: Dict[str, Dict[str, Any]]) -> Dict[str, Any]:
    """Merge per-worker profile snapshots into one cluster-wide snapshot.

    ``snaps`` maps worker id -> :meth:`SamplingProfiler.snapshot` dict.
    Operators are summed across workers; each merged operator records
    which workers contributed.
    """
    operators: Dict[str, Any] = {}
    modes = set()
    samples = 0
    for wid in sorted(snaps):
        snap = snaps[wid]
        modes.add(str(snap.get("cpu_mode", "wall")))
        samples += int(snap.get("samples", 0))
        for label, info in (snap.get("operators") or {}).items():
            agg = operators.get(label)
            if agg is None:
                agg = operators[label] = {
                    "kind": info.get("kind", "runtime"),
                    "samples": 0,
                    "cpu_seconds": 0.0,
                    "wall_seconds": 0.0,
                    "off_cpu_seconds": 0.0,
                    "stacks": {},
                    "top_frames": {},
                    "workers": [],
                }
            agg["samples"] += int(info.get("samples", 0))
            agg["cpu_seconds"] += float(info.get("cpu_seconds", 0.0))
            agg["wall_seconds"] += float(info.get("wall_seconds", 0.0))
            agg["off_cpu_seconds"] += float(info.get("off_cpu_seconds", 0.0))
            for stack, count in (info.get("stacks") or {}).items():
                agg["stacks"][stack] = agg["stacks"].get(stack, 0) + int(count)
            for frame, count in (info.get("top_frames") or {}).items():
                agg["top_frames"][frame] = agg["top_frames"].get(frame, 0) + int(count)
            agg["workers"].append(str(wid))
    mode = modes.pop() if len(modes) == 1 else ("mixed" if modes else "wall")
    return {
        "schema": PROFILE_SCHEMA,
        "state": "merged",
        "cpu_mode": mode,
        "samples": samples,
        "workers": sorted(snaps),
        "operators": dict(sorted(operators.items())),
    }
