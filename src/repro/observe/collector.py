"""Cluster-wide telemetry collection over the control channel.

PR 6 sharded the data plane across worker processes but left every
observability facility (registry, traces, timeline, SLO monitors)
trapped inside the process that produced it.  This module builds the
cluster observability plane on top of the *existing* control channel —
no new sockets:

- :class:`DeltaSource` lives in each worker process.  Every time the
  coordinator asks (the ``collect`` control command), it builds one
  bounded delta: absolute worker-labeled series (never-backwards on
  the receiving side), the trace spans and timeline events added since
  the previous collect (cursor-based, loss/duplication-free), and the
  worker's local SLO monitor states.  Deltas carry a monotonic ``seq``
  so re-delivery is detectable.
- :class:`ClusterCollector` lives in the coordinator.  It polls every
  worker's DeltaSource, merges series via
  :func:`~repro.observe.bridge.absorb_series` (counters/histograms
  never move backwards — absorbing the same delta twice is a no-op),
  dedups re-shipped spans (worker restart + ack-replay re-executes
  hops), stitches cross-worker spans into end-to-end traces, and runs
  a cluster-scope :class:`~repro.observe.health.HealthEngine` over the
  merged registry so a breach on one worker is judged against gates
  and stalls on another.
- :func:`stitch` groups the merged spans into :class:`StitchedTrace`
  objects — single causal traces whose stages tile end-to-end across
  process boundaries (``CLOCK_MONOTONIC`` is machine-wide, and the
  runtime closes a hop's ``execute`` stage at the exact timestamp the
  derived packet's ``serialize`` stage opens).

Everything here is scan-time work on control threads: the data plane's
hot paths are never touched, which is what the collector-overhead
guardrail bench asserts.

All runtime objects (workers, proxies) are duck-typed ``Any``: the
observe package never imports ``repro.core``/``repro.cluster``.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.observe.bridge import (
    absorb_series,
    registry_series,
    scrape_observer,
    worker_series,
)
from repro.observe.health import SLO, HealthEngine
from repro.observe.observer import RuntimeObserver
from repro.observe.tracing import STAGES, SpanRecord, TraceCollector

__all__ = [
    "COLLECT_SCHEMA",
    "ClusterCollector",
    "DeltaSource",
    "StitchedTrace",
    "stitch",
    "stitch_spans",
]

#: Schema tag on every delta a worker ships (versioned for rolling
#: upgrades: a coordinator ignores deltas it does not understand).
COLLECT_SCHEMA = "neptune-collect/1"

_STAGE_ORDER: Dict[str, int] = {stage: i for i, stage in enumerate(STAGES)}

#: Dedup key of one shipped span: a worker restart re-executes hops and
#: ack-replay re-delivers frames, so the same logical span can be built
#: twice — but never with a different (trace, hop, stage, operator).
_SpanKey = Tuple[int, int, str, str]


class DeltaSource:
    """Worker-side builder of bounded telemetry deltas.

    One per worker process, attached as ``worker.delta_source`` so the
    control plane's ``collect`` command can find it.  ``collect()`` is
    called on a control-server thread — never the data plane — and its
    cost is accounted in ``build_seconds`` so the guardrail bench can
    bound the duty cycle.
    """

    def __init__(
        self,
        observer: RuntimeObserver,
        worker_id: int,
        worker: Any = None,
        health: Optional[HealthEngine] = None,
        incarnation: int = 0,
    ) -> None:
        self.observer = observer
        self.worker_id = int(worker_id)
        self.worker = worker
        self.health = health
        #: Process (re)spawn count of this shard; stamped on every
        #: delta so the coordinator can fence a dead incarnation's
        #: in-flight telemetry after a restart.
        self.incarnation = int(incarnation)
        self.collects = 0
        self.build_seconds = 0.0
        #: CPU seconds of the building thread (``time.thread_time``).
        #: In a busy worker ``build_seconds`` is inflated by GIL waits
        #: — time the data plane was *running*, not paying — so this is
        #: the number the overhead guardrail charges the plane with.
        self.build_cpu_seconds = 0.0
        self.spans_shipped = 0
        self.events_shipped = 0
        self._seq = 0
        self._span_cursor: Dict[int, int] = {}
        self._event_cursor = 0
        self._last_ts: Optional[float] = None
        self._stage_hist: Dict[str, Any] = {}
        self._lock = threading.Lock()

    def collect(self) -> Dict[str, Any]:
        """Build one delta: absolute series + span/event deltas."""
        t0 = time.perf_counter()
        c0 = time.thread_time()
        wid = str(self.worker_id)
        spans = self.observer.collector.spans_since(self._span_cursor)
        # Feed shipped span durations into per-stage histograms: this
        # is the cluster's p99-per-stage source (`repro top`) and real
        # histogram traffic for the absorb path — scan-time work only.
        for span in spans:
            hist = self._stage_hist.get(span.stage)
            if hist is None:
                hist = self.observer.registry.histogram(
                    "neptune_trace_stage_seconds",
                    {"stage": span.stage},
                    "Closed trace span durations per stage",
                )
                self._stage_hist[span.stage] = hist
            hist.observe(span.duration)
        events, self._event_cursor = self.observer.timeline.events_since(
            self._event_cursor
        )
        scrape_observer(self.observer)
        series: List[Dict[str, Any]] = []
        if self.worker is not None:
            series.extend(worker_series(self.worker))
        series.extend(registry_series(self.observer.registry, {"worker": wid}))
        monitors: List[Dict[str, Any]] = []
        if self.health is not None:
            monitors = [dict(m.as_dict()) for m in self.health.monitors]
        span_dicts: List[Dict[str, Any]] = []
        for span in spans:
            d = dict(span.as_dict())
            d["worker"] = wid
            span_dicts.append(d)
        with self._lock:
            self._seq += 1
            seq = self._seq
            self.collects += 1
            self.spans_shipped += len(spans)
            self.events_shipped += len(events)
            self.build_seconds += time.perf_counter() - t0
            self.build_cpu_seconds += time.thread_time() - c0
            self._last_ts = self.observer.clock.now()
        return {
            "schema": COLLECT_SCHEMA,
            "worker": self.worker_id,
            "seq": seq,
            "incarnation": self.incarnation,
            "series": series,
            "spans": span_dicts,
            "events": [dict(e.as_dict()) for e in events],
            "monitors": monitors,
        }

    def info(self) -> Dict[str, Any]:
        """Cheap status summary (``repro cluster status``)."""
        profiler = getattr(self.observer, "profiler", None)
        with self._lock:
            last_age: Optional[float] = None
            if self._last_ts is not None:
                last_age = max(0.0, self.observer.clock.now() - self._last_ts)
            return {
                "worker": self.worker_id,
                "seq": self._seq,
                "incarnation": self.incarnation,
                "collects": self.collects,
                "build_seconds": self.build_seconds,
                "build_cpu_seconds": self.build_cpu_seconds,
                "spans_shipped": self.spans_shipped,
                "events_shipped": self.events_shipped,
                "last_collect_age": last_age,
                "profiler": None if profiler is None else profiler.info(),
            }


class ClusterCollector:
    """Coordinator-side merge point for every worker's deltas.

    Owns a cluster :class:`RuntimeObserver` whose registry holds the
    worker-labeled union of every shard's series, whose collector holds
    the stitched cross-worker spans, and whose timeline holds every
    worker's events (original timestamps preserved).  An optional
    cluster-scope :class:`HealthEngine` evaluates SLOs against that
    merged view after each poll, so ``repro doctor --cluster`` can
    attribute a breach observed on one worker to a gate on another.
    """

    def __init__(
        self,
        observer: Optional[RuntimeObserver] = None,
        slos: Sequence[SLO] = (),
        interval: float = 0.25,
        max_span_keys: int = 65536,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive: {interval}")
        self.observer = observer if observer is not None else RuntimeObserver()
        self.health: Optional[HealthEngine] = None
        if slos:
            self.health = HealthEngine(self.observer, list(slos), scrape=None)
        self.interval = interval
        self.polls = 0
        self.absorbed = 0
        self.stale = 0
        self.fetch_errors = 0
        #: Wall seconds spent inside :meth:`poll_once` — the entire
        #: coordinator-side cost of the plane (nothing runs between
        #: polls), for the guardrail bench's duty-cycle bound.
        self.poll_seconds = 0.0
        #: The portion of ``poll_seconds`` spent blocked in fetchers.
        #: Against remote workers that is mostly RPC wait (the worker's
        #: control thread competing with its data plane for the GIL),
        #: not coordinator compute: the causally-attributable merge
        #: cost is ``poll_seconds - fetch_seconds`` plus the workers'
        #: own ``build_seconds``.
        self.fetch_seconds = 0.0
        #: CPU seconds of the polling thread (``time.thread_time``).
        #: Fetch waits consume no CPU, so this is the merge cost alone,
        #: unpolluted by scheduler noise — what the overhead guardrail
        #: charges the coordinator side of the plane with.
        self.poll_cpu_seconds = 0.0
        self._max_span_keys = max_span_keys
        self._fetch: Dict[int, Callable[[], Optional[Mapping[str, Any]]]] = {}
        self._last_seq: Dict[int, int] = {}
        # Expected incarnation per worker.  Absent → learn from the
        # first delta seen (in-process harnesses never restart); set by
        # reset_worker so a dead incarnation's in-flight delta cannot
        # be absorbed under the fresh worker's label.
        self._incarnation: Dict[int, int] = {}
        self.fenced = 0
        self._last_at: Dict[int, float] = {}
        self._seen_spans: Set[_SpanKey] = set()
        self._monitors: Dict[Tuple[int, str], Dict[str, Any]] = {}
        # Guards the cursors/stats above.  Never held while touching
        # the observer (registry/timeline take their own locks).
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        #: Optional hook called after each health scan with
        #: ``(scan_index, transitions)`` — the policy engine's tap.  Runs
        #: on the poll thread; exceptions are swallowed into
        #: ``fetch_errors`` (observability must never kill the poll
        #: loop, and neither may policy).
        self.on_scan: Optional[Callable[[int, List[Tuple[str, str]]], None]] = None

    # -- wiring ------------------------------------------------------------
    def attach(
        self, worker_id: int, fetch: Callable[[], Optional[Mapping[str, Any]]]
    ) -> None:
        """Register a worker's delta fetcher (a control-proxy closure).

        The closure is re-resolved every poll, so a coordinator that
        splices in a fresh proxy after a restart keeps working without
        re-attaching.
        """
        with self._lock:
            self._fetch[int(worker_id)] = fetch

    def detach(self, worker_id: int) -> None:
        """Stop polling a worker (it keeps its merged history)."""
        with self._lock:
            self._fetch.pop(int(worker_id), None)

    def reset_worker(self, worker_id: int, incarnation: Optional[int] = None) -> None:
        """Forget a worker's delta sequence cursor.

        Call after restarting a worker process: the fresh process
        restarts its ``seq`` at 1, which would otherwise look like a
        stale re-delivery and be dropped forever.  Span dedup (by span
        identity) still protects against the restart re-shipping hops
        the dead incarnation already shipped.

        ``incarnation`` (the new process's spawn count) arms the fence:
        a delta still in flight from the *old* incarnation — fetched
        before the kill, absorbed after this reset — would otherwise
        land under the new worker label with a high ``seq``, silently
        burying the new incarnation's restarted sequence.  With the
        fence armed, any delta whose incarnation differs from the
        expected one is dropped (counted in ``fenced``).  Call this
        *before* splicing in the fresh control proxy so no window
        exists in which an old delta can slip through.
        """
        with self._lock:
            self._last_seq.pop(int(worker_id), None)
            if incarnation is None:
                self._incarnation.pop(int(worker_id), None)
            else:
                self._incarnation[int(worker_id)] = int(incarnation)

    # -- merging -----------------------------------------------------------
    def absorb(self, delta: Mapping[str, Any]) -> bool:
        """Merge one worker delta; returns False if it was stale.

        Stale means a ``seq`` at or below the last absorbed one for
        that worker — exactly what re-delivery of the same delta looks
        like.  Dropping it keeps the merge idempotent: span/event
        payloads are *deltas* and would double-count if replayed
        (series would not — they are absorbed never-backwards — but
        the check makes the whole message idempotent, not just part).

        A delta whose ``incarnation`` does not match the expected one
        for that worker (armed by :meth:`reset_worker` after a
        restart) is fenced: it was built by a process that no longer
        exists, and absorbing it would poison the fresh incarnation's
        sequence cursor.
        """
        worker = int(delta.get("worker", -1))
        seq = int(delta.get("seq", 0))
        incarnation = int(delta.get("incarnation", 0))
        with self._lock:
            expected = self._incarnation.get(worker)
            if expected is None:
                self._incarnation[worker] = incarnation
            elif incarnation != expected:
                self.fenced += 1
                return False
            if seq <= self._last_seq.get(worker, 0):
                self.stale += 1
                return False
            self._last_seq[worker] = seq
        absorb_series(self.observer.registry, delta.get("series") or [])
        by_tid: Dict[int, List[SpanRecord]] = {}
        for raw in delta.get("spans") or []:
            try:
                key: _SpanKey = (
                    int(raw["trace_id"]),
                    int(raw["hop"]),
                    str(raw["stage"]),
                    str(raw["operator"]),
                )
                span = SpanRecord(
                    key[0],
                    key[1],
                    key[2],
                    float(raw["start"]),
                    float(raw["end"]),
                    key[3],
                    worker=str(raw.get("worker", worker)),
                )
            except (KeyError, TypeError, ValueError):
                continue
            with self._lock:
                if key in self._seen_spans:
                    continue
                if len(self._seen_spans) < self._max_span_keys:
                    self._seen_spans.add(key)
            by_tid.setdefault(key[0], []).append(span)
        for spans in by_tid.values():
            self.observer.collector.add(spans)
        for raw in delta.get("events") or []:
            attrs = dict(raw.get("attrs") or {})
            attrs.setdefault("worker", str(worker))
            self.observer.timeline.record_at(
                float(raw.get("ts", 0.0)),
                str(raw.get("category", "")),
                str(raw.get("name", "")),
                attrs,
            )
        now = self.observer.clock.now()
        with self._lock:
            for mon in delta.get("monitors") or []:
                self._monitors[(worker, str(mon.get("slo", "")))] = dict(mon)
            self._last_at[worker] = now
            self.absorbed += 1
        return True

    def poll_once(self) -> int:
        """Fetch + absorb from every attached worker, then scan SLOs.

        A worker whose fetch fails (severed control socket, mid-kill)
        is skipped and counted; the poll never raises on behalf of
        observability.  Returns the number of deltas absorbed.
        """
        t0 = time.perf_counter()
        c0 = time.thread_time()
        with self._lock:
            fetchers = list(self._fetch.items())
        absorbed = 0
        fetch_secs = 0.0
        for _worker_id, fetch in fetchers:
            f0 = time.perf_counter()
            try:
                delta = fetch()
            except Exception:
                with self._lock:
                    self.fetch_errors += 1
                continue
            finally:
                fetch_secs += time.perf_counter() - f0
            if delta is not None and self.absorb(delta):
                absorbed += 1
        if self.health is not None:
            try:
                transitions = self.health.scan_once()
            except Exception:
                with self._lock:
                    self.fetch_errors += 1
            else:
                hook = self.on_scan
                if hook is not None:
                    try:
                        hook(self.health.scans, transitions)
                    except Exception:
                        with self._lock:
                            self.fetch_errors += 1
        with self._lock:
            self.polls += 1
            self.poll_seconds += time.perf_counter() - t0
            self.fetch_seconds += fetch_secs
            self.poll_cpu_seconds += time.thread_time() - c0
        return absorbed

    # -- reporting ---------------------------------------------------------
    def ages(self) -> Dict[int, Optional[float]]:
        """Worker id → seconds since its last absorbed delta (None if
        never collected)."""
        now = self.observer.clock.now()
        with self._lock:
            return {
                wid: (
                    max(0.0, now - self._last_at[wid])
                    if wid in self._last_at
                    else None
                )
                for wid in self._fetch
            }

    def worker_monitors(self) -> List[Dict[str, Any]]:
        """Latest reported worker-local SLO monitor states."""
        with self._lock:
            return [
                {**state, "worker": wid}
                for (wid, _slo), state in sorted(self._monitors.items())
            ]

    def status(self) -> Dict[str, Any]:
        """JSON-friendly collector summary."""
        with self._lock:
            stats = {
                "polls": self.polls,
                "absorbed": self.absorbed,
                "stale": self.stale,
                "fenced": self.fenced,
                "fetch_errors": self.fetch_errors,
                "poll_seconds": self.poll_seconds,
                "fetch_seconds": self.fetch_seconds,
                "poll_cpu_seconds": self.poll_cpu_seconds,
                "last_seq": dict(self._last_seq),
            }
        out: Dict[str, Any] = dict(stats)
        out["ages"] = {str(k): v for k, v in self.ages().items()}
        out["worker_monitors"] = self.worker_monitors()
        if self.health is not None:
            out["health"] = self.health.status()
        return out

    def stitched(self) -> List[StitchedTrace]:
        """The merged spans as stitched end-to-end traces."""
        return stitch(self.observer.collector)

    # -- background loop ---------------------------------------------------
    def start(self) -> None:
        """Launch the background poll loop. Idempotent."""
        if self._thread is not None and self._thread.is_alive():
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="neptune-collector", daemon=True
        )
        self._thread.start()

    def stop(self, timeout: float = 5.0) -> None:
        """Stop the poll loop (polls are idempotent; a final explicit
        ``poll_once`` before worker shutdown captures the tail)."""
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout)
        self._thread = None

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                self.poll_once()
            except Exception:
                with self._lock:
                    self.fetch_errors += 1


class StitchedTrace:
    """One end-to-end causal trace assembled from multi-worker spans.

    ``complete`` means the hop numbers are contiguous from 0 and every
    hop carries all six stages — the invariant under which the stage
    spans *tile* the trace exactly: by construction the runtime closes
    each stage at the timestamp the next one opens (a non-terminal
    hop's ``execute`` ends at the derived packet's ``serialize``
    start), so a complete trace has zero gap and zero overlap even
    when adjacent spans were closed in different processes.
    """

    __slots__ = (
        "trace_id",
        "spans",
        "workers",
        "hops",
        "start",
        "end",
        "gap_seconds",
        "overlap_seconds",
        "complete",
    )

    def __init__(self, trace_id: int, spans: Sequence[SpanRecord]) -> None:
        ordered = sorted(
            spans, key=lambda s: (s.hop, _STAGE_ORDER.get(s.stage, 99))
        )
        self.trace_id = trace_id
        self.spans: List[SpanRecord] = ordered
        self.workers: List[str] = sorted(
            {s.worker for s in ordered if s.worker is not None}
        )
        hops = sorted({s.hop for s in ordered})
        self.hops = len(hops)
        self.start = min((s.start for s in ordered), default=0.0)
        self.end = max((s.end for s in ordered), default=0.0)
        gap = 0.0
        overlap = 0.0
        for prev, nxt in zip(ordered, ordered[1:]):
            delta = nxt.start - prev.end
            if delta > 0:
                gap += delta
            else:
                overlap += -delta
        self.gap_seconds = gap
        self.overlap_seconds = overlap
        stages_by_hop: Dict[int, Set[str]] = {}
        for s in ordered:
            stages_by_hop.setdefault(s.hop, set()).add(s.stage)
        self.complete = bool(ordered) and hops == list(range(len(hops))) and all(
            stages_by_hop[h] == set(STAGES) for h in hops
        )

    @property
    def duration(self) -> float:
        """End-to-end seconds, first stage open to last stage close."""
        return max(0.0, self.end - self.start)

    def as_dict(self) -> Dict[str, Any]:
        """JSON-friendly form."""
        return {
            "trace_id": self.trace_id,
            "workers": list(self.workers),
            "hops": self.hops,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "gap_seconds": self.gap_seconds,
            "overlap_seconds": self.overlap_seconds,
            "complete": self.complete,
            "spans": [s.as_dict() for s in self.spans],
        }

    def __repr__(self) -> str:
        return (
            f"StitchedTrace(trace={self.trace_id} hops={self.hops} "
            f"workers={self.workers} {self.duration * 1e3:.3f}ms "
            f"complete={self.complete})"
        )


def stitch_spans(trace_id: int, spans: Sequence[SpanRecord]) -> StitchedTrace:
    """Stitch one trace's spans (from any number of workers)."""
    return StitchedTrace(trace_id, spans)


def stitch(collector: TraceCollector) -> List[StitchedTrace]:
    """Stitch every trace in ``collector``, ordered by trace id."""
    return [
        StitchedTrace(tid, spans)
        for tid, spans in sorted(collector.traces().items())
    ]
