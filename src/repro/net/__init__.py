"""Networking substrate: wire framing, flow-controlled channels, transports.

NEPTUNE's communication module (built on Java NIO/Netty in the paper) is
realized here as:

- :mod:`repro.net.framing` — length-prefixed, checksummed frames that
  carry one *buffer flush* (a batch of serialized stream packets).
- :mod:`repro.net.flowcontrol` — credit/watermark bounded channels: the
  in-process analogue of TCP receive-window flow control, the mechanism
  NEPTUNE's backpressure rides on.
- :mod:`repro.net.transport` — endpoint implementations: in-process
  (same Granules resource) and TCP sockets (across resources/machines).
"""

from repro.net.framing import (
    Frame,
    FrameEncoder,
    FrameDecoder,
    FrameHeader,
    SequenceTracker,
)
from repro.net.flowcontrol import WatermarkChannel, ChannelClosed
from repro.net.transport import (
    Transport,
    InProcessTransport,
    RetryPolicy,
    TcpTransport,
    TcpListener,
    is_unix_endpoint,
)

__all__ = [
    "Frame",
    "FrameHeader",
    "FrameEncoder",
    "FrameDecoder",
    "SequenceTracker",
    "WatermarkChannel",
    "ChannelClosed",
    "Transport",
    "InProcessTransport",
    "RetryPolicy",
    "TcpTransport",
    "TcpListener",
    "is_unix_endpoint",
]
