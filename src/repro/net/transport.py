"""Transport endpoints.

A :class:`Transport` moves one flushed buffer (a batch of serialized
stream packets for one link) to a receiving resource.  Two
implementations:

- :class:`InProcessTransport` — both operators live in the same
  Granules resource; the batch is handed to the receiver's inbound
  :class:`~repro.net.flowcontrol.WatermarkChannel` directly.  The
  channel's watermark gate blocks the sender — the local leg of
  backpressure.
- :class:`TcpTransport` / :class:`TcpListener` — across resources.
  Frames ride TCP; the listener's reader thread blocks on the gated
  inbound channel, the kernel receive buffer fills, the TCP window
  closes, and the sender's blocking ``sendall`` stalls — the
  paper's TCP-flow-control leg of backpressure, for real.

Both transports preserve per-link FIFO order and deliver exactly once
(sequence numbers + checksums are verified by the framing layer on the
TCP path; the in-process path is a single FIFO handoff).

Failure recovery (paper §I-B "no dropped packets", §VI fault
tolerance): with a :class:`RetryPolicy`, a :class:`TcpTransport`
survives mid-stream connection loss.  It keeps every sent frame in a
bounded replay window until the receiver acknowledges delivery
(12-byte ``(link_id, seq)`` ack records ride the same socket in the
reverse direction); on any socket error it reconnects with
exponential backoff plus seeded jitter and replays the unacknowledged
window in order.  The listener, in *resume* mode, carries per-link
sequence expectations across connections (:class:`SequenceTracker`):
replayed frames that did survive the failure are suppressed as
duplicates, detected gaps and checksum corruption sever the connection
to demand a retransmit.  Net effect: a link either delivers every
frame exactly once or fails loudly after the retry budget — never
silently loses or duplicates data.
"""

from __future__ import annotations

import os
import random
import socket
import struct
import threading
import time
from abc import ABC, abstractmethod
from collections import deque
from dataclasses import dataclass
from typing import Callable

from repro.net.flowcontrol import ChannelClosed, WatermarkChannel
from repro.net.framing import (
    HEADER_SIZE,
    Frame,
    FrameDecoder,
    FrameEncoder,
    FrameHeader,
    SequenceTracker,
)
from repro.util.errors import SerializationError, TransportError

# One batch delivered to a receiver: (link_id, packet_count, body bytes).
Batch = tuple[int, int, bytes]

#: Ack record carried on the reverse path: (link_id, seq) delivered.
_ACK = struct.Struct("<IQ")

#: Host-string prefix selecting a Unix-domain socket endpoint.
UNIX_PREFIX = "unix:"


def is_unix_endpoint(host: str) -> bool:
    """True when ``host`` names a Unix-domain socket (``"unix:/path"``).

    Same-host shard fabrics can skip the loopback TCP stack entirely:
    both :class:`TcpTransport` and :class:`TcpListener` accept a host of
    the form ``"unix:/path/to.sock"`` (the port is then ignored, 0 by
    convention) and speak the identical framing/ack/replay protocol
    over ``AF_UNIX``.
    """
    return host.startswith(UNIX_PREFIX)


def _connect_endpoint(host: str, port: int, timeout: float | None) -> socket.socket:
    """Open a stream connection to ``(host, port)`` or, for a
    ``"unix:/path"`` host, to that Unix socket path.

    TCP connections disable Nagle: latency matters for small flushes
    and batching is done at the application layer, as NEPTUNE/Netty
    does.  ``AF_UNIX`` has no Nagle to disable.
    """
    if is_unix_endpoint(host):
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            sock.settimeout(timeout)
            sock.connect(host[len(UNIX_PREFIX) :])
        except OSError:
            sock.close()
            raise
        return sock
    sock = socket.create_connection((host, port), timeout=timeout)
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    return sock


class Transport(ABC):
    """Sender-side endpoint for one destination resource."""

    @abstractmethod
    def send(
        self,
        link_id: int,
        body: bytes | bytearray | memoryview,
        count: int,
        trace: bytes = b"",
    ) -> None:
        """Deliver one batch; blocks under backpressure.  Never drops.

        ``body`` may be a pooled bytearray on loan from the flushing
        :class:`~repro.core.buffering.StreamBuffer` — the transport has
        fully consumed it by the time ``send`` returns, so the caller
        may recycle it immediately.  ``trace`` is an opaque observe
        trace block that must ride the frame to the receiver (see
        :mod:`repro.observe.tracing`).
        """

    @abstractmethod
    def close(self) -> None:
        """Release the endpoint.  Idempotent."""


class InProcessTransport(Transport):
    """Same-resource delivery through a watermark channel."""

    def __init__(self, channel: WatermarkChannel) -> None:
        self._channel = channel
        self._seq: dict[int, int] = {}

    def send(
        self,
        link_id: int,
        body: bytes | bytearray | memoryview,
        count: int,
        trace: bytes = b"",
    ) -> None:
        """Deliver one batch; blocks under backpressure, never drops."""
        if not isinstance(body, bytes):
            # The frame outlives this call (parked in the channel), but
            # the send contract lets the caller recycle ``body`` as soon
            # as we return — snapshot it.
            body = bytes(body)
        seq = self._seq.get(link_id, 0)
        self._seq[link_id] = seq + 1
        frame = Frame(FrameHeader(link_id, seq, count, len(body), 0), body, trace)
        try:
            self._channel.put(len(body), frame, timeout=None)
        except ChannelClosed as exc:
            raise TransportError("in-process channel closed") from exc

    def close(self) -> None:  # the receiver owns the channel lifecycle
        """Release underlying resources. Idempotent."""
        pass


@dataclass(frozen=True)
class RetryPolicy:
    """Reconnect/retry behaviour for a :class:`TcpTransport`.

    Attributes
    ----------
    max_retries:
        Consecutive failed reconnect attempts tolerated before the
        transport gives up (raises :class:`TransportError` and fires
        the ``on_link_failure`` callback).
    backoff_base / backoff_max:
        Exponential backoff: attempt ``n`` sleeps
        ``min(backoff_max, backoff_base * 2**n)`` seconds ...
    backoff_jitter:
        ... multiplied by a random factor in ``[1-j, 1+j]`` drawn from
        a generator seeded by ``seed`` (and the endpoint), so backoff
        sequences are reproducible under a fixed fault schedule while
        still decorrelating concurrent links.
    send_timeout:
        Upper bound on how long one ``send`` may block waiting for
        replay-window space (i.e. for acks).  None = wait forever.
    replay_window_bytes:
        Replay-buffer capacity.  A send blocks (flow control on
        unacknowledged data) rather than evicting — eviction would
        silently forfeit the zero-loss guarantee.
    seed:
        Seed for the jitter generator (chaos scenarios pin it).
    """

    max_retries: int = 6
    backoff_base: float = 0.05
    backoff_max: float = 2.0
    backoff_jitter: float = 0.25
    send_timeout: float | None = 10.0
    replay_window_bytes: int = 8 << 20
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0: {self.max_retries}")
        if self.backoff_base <= 0:
            raise ValueError(f"backoff_base must be positive: {self.backoff_base}")
        if self.backoff_max < self.backoff_base:
            raise ValueError(
                f"backoff_max must be >= backoff_base: {self.backoff_max}"
            )
        if not 0.0 <= self.backoff_jitter <= 1.0:
            raise ValueError(
                f"backoff_jitter must be in [0, 1]: {self.backoff_jitter}"
            )
        if self.replay_window_bytes <= 0:
            raise ValueError(
                f"replay_window_bytes must be positive: {self.replay_window_bytes}"
            )

    def backoff(self, attempt: int, rng: random.Random) -> float:
        """Backoff delay before reconnect ``attempt`` (0-based)."""
        raw = min(self.backoff_max, self.backoff_base * (2**attempt))
        if self.backoff_jitter <= 0:
            return raw
        return raw * (1.0 - self.backoff_jitter + 2.0 * self.backoff_jitter * rng.random())


class TcpTransport(Transport):
    """Blocking TCP client carrying NEPTUNE frames.

    One instance per (sender resource → receiver resource) pair; all
    links between the pair multiplex over the single connection, which
    is how NEPTUNE amortizes connection state.  ``send`` is serialized
    by a lock so frame bytes from concurrent flushes never interleave.

    With ``retry`` set, the transport keeps unacknowledged frames in a
    replay window and transparently reconnects + replays on connection
    loss (see module docstring).  The peer listener must then run with
    ``ack=True, resume=True``.

    Parameters
    ----------
    host, port:
        Destination listener.  A host of the form ``"unix:/path"``
        connects to that Unix-domain socket instead (port ignored).
    connect_timeout:
        Bound on the *initial* connection attempt (reconnects use the
        retry policy's backoff schedule).
    retry:
        :class:`RetryPolicy` enabling recovery; None = legacy fail-fast
        (any socket error raises :class:`TransportError` immediately).
    injector:
        Optional :class:`~repro.chaos.injector.FaultInjector`; every
        *first-time* frame send is intercepted at ``site`` (replays are
        never re-injected, so a fault plan addresses stable frame
        ordinals).
    site:
        Injection site name recorded in fault traces.
    on_link_failure:
        Callback fired (with the terminal exception) when the retry
        budget is exhausted and the link is declared dead.
    observer:
        Optional :class:`~repro.observe.observer.RuntimeObserver`;
        reconnects, replays, and terminal link failures land on its
        event timeline.
    """

    def __init__(
        self,
        host: str,
        port: int,
        connect_timeout: float = 10.0,
        retry: RetryPolicy | None = None,
        injector=None,
        site: str = "tcp.send",
        on_link_failure: Callable[[BaseException], None] | None = None,
        observer=None,
    ) -> None:
        self._host = host
        self._port = port
        self._connect_timeout = connect_timeout
        self._retry = retry
        self._injector = injector
        self._site = site
        self._on_link_failure = on_link_failure
        self._observer = observer
        self._encoder = FrameEncoder()
        self._lock = threading.Lock()  # serializes writes + recovery
        self._state = threading.Lock()  # guards the replay window
        self._acks = threading.Condition(self._state)
        self._unacked: deque[tuple[int, int, bytes]] = deque()
        self._unacked_bytes = 0
        self._acked_high: dict[int, int] = {}
        self._closed = False
        self._conn_dead = False
        self._conn_gen = 0
        self._last_ack_at = time.monotonic()
        # zlib.crc32-free stable endpoint hash: Python's str hash is
        # randomized per process, which would make jitter sequences
        # irreproducible across runs.
        endpoint = f"{host}:{port}".encode()
        self._rng = random.Random(
            (retry.seed if retry else 0) ^ int.from_bytes(endpoint[-4:], "little")
        )
        try:
            self._sock = _connect_endpoint(host, port, connect_timeout)
        except OSError as exc:
            raise TransportError(f"connect to {host}:{port} failed: {exc}") from exc
        self._sock.settimeout(None)
        self.bytes_sent = 0
        self.frames_sent = 0
        self.acked_frames = 0
        self.reconnects = 0
        self.replayed_frames = 0
        self.send_stalls = 0
        if retry is not None:
            self._start_ack_reader(self._sock, self._conn_gen)

    # -- ack path -----------------------------------------------------------
    def _start_ack_reader(self, sock: socket.socket, gen: int) -> None:
        t = threading.Thread(
            target=self._ack_loop,
            args=(sock, gen),
            name=f"neptune-tcp-ack-reader-{self._port}",
            daemon=True,
        )
        t.start()

    def _ack_loop(self, sock: socket.socket, gen: int) -> None:
        buf = b""
        try:
            while True:
                chunk = sock.recv(4096)
                if not chunk:
                    break
                buf += chunk
                while len(buf) >= _ACK.size:
                    link_id, seq = _ACK.unpack_from(buf)
                    buf = buf[_ACK.size :]
                    self._on_ack(link_id, seq)
        except OSError:
            pass
        # This connection is gone.  If it is still the current one,
        # flag it and (opportunistically) recover so a receiver-driven
        # reset triggers a replay even with no new sends in flight.
        # With an empty replay window there is nothing to recover —
        # an idle connection dying is how a peer shuts down, not a
        # fault, so reconnecting would only hammer a closed listener.
        with self._state:
            if self._conn_gen != gen or self._closed:
                return
            self._conn_dead = True
            has_unacked = bool(self._unacked)
            self._acks.notify_all()
        if not has_unacked:
            return
        if self._lock.acquire(blocking=False):
            try:
                if not self._closed and self._conn_dead:
                    try:
                        self._recover()
                    except TransportError:
                        pass  # surfaced to the next send / ensure_delivered
            finally:
                self._lock.release()

    def _on_ack(self, link_id: int, seq: int) -> None:
        with self._state:
            self._last_ack_at = time.monotonic()
            high = self._acked_high.get(link_id, -1)
            if seq > high:
                self._acked_high[link_id] = seq
            while self._unacked:
                l, s, wire = self._unacked[0]
                if s <= self._acked_high.get(l, -1):
                    self._unacked.popleft()
                    self._unacked_bytes -= len(wire)
                    self.acked_frames += 1
                else:
                    break
            self._acks.notify_all()

    # -- send ------------------------------------------------------------------
    def send(
        self,
        link_id: int,
        body: bytes | bytearray | memoryview,
        count: int,
        trace: bytes = b"",
    ) -> None:
        """Deliver one batch; blocks under backpressure, never drops."""
        with self._lock:
            if self._closed:
                raise TransportError("send on closed transport")
            if self._retry is None and self._injector is None:
                # Hot path: write (header, body) without materializing
                # the concatenated frame — zero-copy all the way to the
                # socket.
                header, payload = self._encoder.encode_parts(
                    link_id, body, count, trace
                )
                try:
                    self._sock.sendall(header)
                    if len(payload):
                        self._sock.sendall(payload)
                except OSError as exc:
                    raise TransportError(f"send failed: {exc}") from exc
                with self._state:
                    self.bytes_sent += len(header) + len(payload)
                    self.frames_sent += 1
                return
            if self._retry is not None:
                if self._conn_dead:
                    self._recover()
                # Reserve window space BEFORE assigning the sequence
                # number: a window timeout must not strand a gap in the
                # link's sequence space.
                self._wait_window(HEADER_SIZE + len(trace) + len(body))
                # The replay window stores full wire bytes (one
                # materialized copy — the price of replayability), so a
                # trace block survives retransmission byte-identically.
                wire = self._encoder.encode(link_id, body, count, trace)
                seq = self._encoder.sequence(link_id) - 1
                with self._state:
                    self._unacked.append((link_id, seq, wire))
                    self._unacked_bytes += len(wire)
            else:
                wire = self._encoder.encode(link_id, body, count, trace)
            chunks, kill_after = [wire], False
            if self._injector is not None:
                chunks, kill_after, _ = self._injector.apply_to_wire(self._site, wire)
            try:
                for chunk in chunks:
                    self._sock.sendall(chunk)
                if kill_after:
                    self._sever_current()
                    raise OSError("connection severed by fault injection")
            except OSError as exc:
                if self._retry is None:
                    raise TransportError(f"send failed: {exc}") from exc
                self._recover()
            # Stats live under _state (shared with the ack reader);
            # _lock only serializes the send/recovery pipeline.
            with self._state:
                self.bytes_sent += len(wire)
                self.frames_sent += 1

    def _wait_window(self, incoming: int) -> None:
        """Block until the replay window can absorb ``incoming`` bytes.

        A send that actually has to wait is a *stall*: the receiver is
        not acking fast enough to keep the window open — the TCP-level
        face of backpressure.  Stalls are counted and land on the
        timeline so ``repro doctor`` can fold them into cascades.
        """
        assert self._retry is not None
        deadline = (
            None
            if self._retry.send_timeout is None
            else time.monotonic() + self._retry.send_timeout
        )
        stalled_at: float | None = None
        with self._state:
            while self._unacked_bytes + incoming > self._retry.replay_window_bytes:
                if self._conn_dead:
                    break  # recover (with the lock held by our caller)
                if stalled_at is None:
                    stalled_at = time.monotonic()
                    self.send_stalls += 1
                remaining = 0.05 if deadline is None else min(0.05, deadline - time.monotonic())
                if deadline is not None and remaining <= 0:
                    raise TransportError(
                        f"replay window full for {self._retry.send_timeout}s "
                        f"({self._unacked_bytes} unacked bytes): receiver not acking"
                    )
                self._acks.wait(remaining)
        if stalled_at is not None and self._observer is not None:
            self._observer.event(
                "transport",
                "send_stall",
                endpoint=f"{self._host}:{self._port}",
                stalled_seconds=time.monotonic() - stalled_at,
                window_bytes=self._retry.replay_window_bytes,
            )
        if self._conn_dead:
            self._recover()

    def _sever_current(self) -> None:
        """Hard-close the current socket (fault injection / recovery)."""
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass

    # -- recovery ------------------------------------------------------------
    def _recover(self) -> None:
        """Reconnect with backoff and replay the unacked window.

        Caller must hold ``_lock``.  Raises :class:`TransportError`
        (after firing ``on_link_failure``) when the retry budget is
        exhausted.
        """
        assert self._retry is not None
        policy = self._retry
        self._sever_current()
        attempt = 0
        while True:
            if self._closed:
                raise TransportError("transport closed during recovery")
            if attempt > 0:  # first reconnect is immediate
                time.sleep(policy.backoff(attempt - 1, self._rng))
            try:
                sock = _connect_endpoint(self._host, self._port, self._connect_timeout)
                sock.settimeout(None)
                with self._state:
                    replay = list(self._unacked)
                    self._sock = sock
                    self._conn_gen += 1
                    gen = self._conn_gen
                    self._conn_dead = False
                    self._last_ack_at = time.monotonic()
                self._start_ack_reader(sock, gen)
                # Replays bypass the injector: fault plans address
                # first-time sends only, keeping traces deterministic.
                for _link, _seq, wire in replay:
                    sock.sendall(wire)
                with self._state:
                    self.reconnects += 1
                    self.replayed_frames += len(replay)
                if self._observer is not None:
                    self._observer.event(
                        "transport",
                        "reconnect",
                        endpoint=f"{self._host}:{self._port}",
                        attempts=attempt + 1,
                        replayed_frames=len(replay),
                    )
                return
            except OSError as exc:
                attempt += 1
                if attempt > policy.max_retries:
                    self._declare_dead(exc)

    def _declare_dead(self, exc: BaseException) -> None:
        err = TransportError(
            f"link to {self._host}:{self._port} lost: "
            f"{self._retry.max_retries} reconnect attempts failed: {exc}"
        )
        if self._observer is not None:
            self._observer.event(
                "transport",
                "link_failed",
                endpoint=f"{self._host}:{self._port}",
                error=str(exc),
            )
        if self._on_link_failure is not None:
            try:
                self._on_link_failure(err)
            except Exception:
                pass  # notification must not mask the transport error
        raise err from exc

    # -- delivery assurance -----------------------------------------------
    @property
    def unacked_frames(self) -> int:
        """Frames sent but not yet acknowledged (0 without a policy)."""
        with self._state:
            return len(self._unacked)

    @property
    def unacked_bytes(self) -> int:
        """Bytes in the replay window awaiting acknowledgement."""
        with self._state:
            return self._unacked_bytes

    def ensure_delivered(self, timeout: float = 10.0, stall: float = 0.5) -> bool:
        """Block until every sent frame is acknowledged (retry mode).

        Recovers (reconnect + replay) if the connection dies — or if
        ack progress stalls for ``stall`` seconds, which heals frames
        the network swallowed without killing the connection (e.g. an
        injected ``drop`` on the final frame, with no later frame to
        trip the receiver's gap detection).  Returns True when the
        window drained, False on timeout or terminal link failure.
        No-op True without a policy.
        """
        if self._retry is None:
            return True
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            force = False
            with self._state:
                if not self._unacked:
                    return True
                dead = self._conn_dead
                if not dead:
                    if time.monotonic() - self._last_ack_at > stall:
                        force = True
                    else:
                        self._acks.wait(0.05)
                        continue
            if dead or force:
                with self._lock:
                    if self._closed:
                        return False
                    try:
                        if self._conn_dead or force:
                            self._recover()
                        with self._state:
                            self._last_ack_at = time.monotonic()
                    except TransportError:
                        return False
        with self._state:
            return not self._unacked

    def close(self, drain_timeout: float = 5.0) -> None:
        """Release underlying resources. Idempotent.

        In retry mode, first waits up to ``drain_timeout`` for the
        replay window to drain (recovering if needed) so a graceful
        close never abandons in-flight frames.
        """
        if self._retry is not None and not self._closed:
            self.ensure_delivered(drain_timeout)
        with self._lock:
            if self._closed:
                return
            self._closed = True
            with self._state:
                self._acks.notify_all()
            self._sever_current()


class TcpListener:
    """Accepts NEPTUNE frame connections and hands frames to a sink.

    The ``sink`` callable receives each decoded :class:`Frame` and MAY
    BLOCK — that is the design: a sink that feeds a gated
    :class:`WatermarkChannel` stops this reader thread, the socket's
    kernel receive buffer fills, and TCP flow control throttles the
    sender.

    Parameters
    ----------
    host, port:
        Bind address; port 0 picks an ephemeral port (see ``port``).
        A host of the form ``"unix:/path"`` binds a Unix-domain socket
        at that path instead (``port`` attribute stays 0, ``host``
        keeps the ``unix:`` form so it can be dialed verbatim).
    sink:
        Callback invoked with each received frame, per connection in
        arrival order.
    recv_buffer:
        ``SO_RCVBUF`` hint; a small kernel buffer makes backpressure
        propagate after less in-flight data.
    ack:
        Send a 12-byte ``(link_id, seq)`` ack record back on the same
        connection after each frame is delivered to the sink (the
        :class:`TcpTransport` retry mode's replay-window pruning
        signal).  Duplicates are re-acked so a sender whose acks were
        lost with the previous connection can still prune.
    resume:
        Carry per-link sequence expectations across connections in a
        shared :class:`SequenceTracker` and *suppress duplicates*
        instead of erroring — required to accept a reconnecting
        transport's replayed window.  Gaps and corrupted frames sever
        the connection, demanding a retransmit, rather than poisoning
        the link forever.
    injector / site:
        Optional receive-side fault injection (connection kills,
        delays), intercepted once per received chunk.
    """

    def __init__(
        self,
        host: str,
        port: int,
        sink: Callable[[Frame], None],
        recv_buffer: int | None = None,
        ack: bool = False,
        resume: bool = False,
        injector=None,
        site: str = "tcp.recv",
    ) -> None:
        self._sink = sink
        self._ack = ack
        self._resume = resume
        self._injector = injector
        self._site = site
        self.tracker = SequenceTracker() if resume else None
        self._unix_path: str | None = (
            host[len(UNIX_PREFIX) :] if is_unix_endpoint(host) else None
        )
        if self._unix_path is not None:
            self._server = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            if recv_buffer is not None:
                self._server.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, recv_buffer)
            # A crashed listener leaves its socket file behind; rebinding
            # the same path must not fail because of that residue.
            try:
                os.unlink(self._unix_path)
            except OSError:
                pass
            try:
                self._server.bind(self._unix_path)
            except OSError as exc:
                self._server.close()
                raise TransportError(f"bind to {host} failed: {exc}") from exc
            self._server.listen(64)
            self.host, self.port = host, 0
        else:
            self._server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            self._server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            if recv_buffer is not None:
                self._server.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, recv_buffer)
            self._server.bind((host, port))
            self._server.listen(64)
            self.host, self.port = self._server.getsockname()[:2]
        self._threads: list[threading.Thread] = []
        self._conns: list[socket.socket] = []
        self._lock = threading.Lock()
        # Resume mode: after a reconnect, the dying connection's reader
        # may still be blocked delivering frame N while the new
        # connection's reader holds replayed N+1 — without per-link
        # serialization the two threads could land frames out of order.
        self._link_locks: dict[int, threading.Lock] = {}
        self._running = True
        self.errors: list[BaseException] = []
        self._error_event = threading.Event()
        # Recovery / chaos observability.
        self.duplicates_suppressed = 0
        self.gap_resets = 0
        self.corruption_resets = 0
        self.injected_resets = 0
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name=f"neptune-tcp-listener-{self.port}", daemon=True
        )
        self._accept_thread.start()

    def wait_error(self, timeout: float | None = None) -> bool:
        """Block until a reader error is recorded (condition-based;
        replaces sleep-polling in tests).  True if one arrived."""
        return self._error_event.wait(timeout)

    def _accept_loop(self) -> None:
        while self._running:
            try:
                conn, _addr = self._server.accept()
            except OSError:
                return  # listener closed
            if self._unix_path is None:
                conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            with self._lock:
                if not self._running:
                    conn.close()
                    return
                self._conns.append(conn)
                t = threading.Thread(
                    target=self._reader_loop,
                    args=(conn,),
                    name=f"neptune-tcp-reader-{self.port}",
                    daemon=True,
                )
                self._threads.append(t)
            t.start()

    def _reader_loop(self, conn: socket.socket) -> None:
        # Per-connection decoder: structural checks always; sequence
        # continuity per-connection in legacy mode, cross-connection
        # via the shared tracker in resume mode.
        decoder = FrameDecoder(verify_sequence=not self._resume)
        try:
            while True:
                chunk = conn.recv(65536)
                if not chunk:
                    return
                if self._injector is not None and self._injector.should_kill_connection(
                    self._site
                ):
                    with self._lock:
                        self.injected_resets += 1
                    return
                for frame in decoder.feed(chunk):
                    if not self._deliver(conn, frame):
                        return  # gap: sever so the sender replays
        except ChannelClosed:
            return
        except OSError:
            return
        except BaseException as exc:  # noqa: BLE001 — surfaced for tests/ops
            # Reader threads run one per connection, concurrently.
            with self._lock:
                self.errors.append(exc)
                if self._resume and isinstance(exc, SerializationError):
                    # Corrupted frame: closing the connection (finally)
                    # makes the sender reconnect and retransmit a clean
                    # copy — checksum + replay self-heals corruption.
                    self.corruption_resets += 1
            self._error_event.set()
        finally:
            conn.close()

    def _deliver(self, conn: socket.socket, frame: Frame) -> bool:
        """Check/sink/ack one frame; False demands a connection reset.

        In resume mode the whole step is atomic per link: a reconnected
        sender's replay (on a fresh reader thread) must not overtake
        the old connection's reader still blocked in the sink.
        """
        if self.tracker is None:
            self._sink(frame)  # may block: that IS backpressure
            self._send_ack(conn, frame)
            return True
        with self._lock:
            lock = self._link_locks.setdefault(frame.link_id, threading.Lock())
        with lock:
            verdict = self.tracker.check(frame.link_id, frame.seq)
            if verdict == SequenceTracker.DUPLICATE:
                # Counters are shared across per-link reader threads;
                # the link lock only serializes one link's deliveries.
                with self._lock:
                    self.duplicates_suppressed += 1
                self._send_ack(conn, frame)  # re-ack lost acks
                return True
            if verdict == SequenceTracker.GAP:
                with self._lock:
                    self.gap_resets += 1
                return False
            self._sink(frame)  # may block: that IS backpressure
            self._send_ack(conn, frame)
            return True

    def _send_ack(self, conn: socket.socket, frame: Frame) -> None:
        if not self._ack:
            return
        try:
            conn.sendall(_ACK.pack(frame.link_id, frame.seq))
        except OSError:
            pass  # connection already dying; sender will replay

    def close(self) -> None:
        """Release underlying resources. Idempotent."""
        with self._lock:
            if not self._running:
                return
            self._running = False
            conns = list(self._conns)
        # accept() does not reliably wake when the listening socket is
        # closed under it; nudge the accept thread with a throwaway
        # connection (it sees _running=False and exits) before closing.
        try:
            host = "127.0.0.1" if self.host == "0.0.0.0" else self.host
            _connect_endpoint(host, self.port, 0.2).close()
        except OSError:
            pass
        self._server.close()
        if self._unix_path is not None:
            try:
                os.unlink(self._unix_path)
            except OSError:
                pass
        for c in conns:
            try:
                c.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            c.close()
        self._accept_thread.join(5.0)
        for t in self._threads:
            t.join(5.0)
