"""Transport endpoints.

A :class:`Transport` moves one flushed buffer (a batch of serialized
stream packets for one link) to a receiving resource.  Two
implementations:

- :class:`InProcessTransport` — both operators live in the same
  Granules resource; the batch is handed to the receiver's inbound
  :class:`~repro.net.flowcontrol.WatermarkChannel` directly.  The
  channel's watermark gate blocks the sender — the local leg of
  backpressure.
- :class:`TcpTransport` / :class:`TcpListener` — across resources.
  Frames ride TCP; the listener's reader thread blocks on the gated
  inbound channel, the kernel receive buffer fills, the TCP window
  closes, and the sender's blocking ``sendall`` stalls — the
  paper's TCP-flow-control leg of backpressure, for real.

Both transports preserve per-link FIFO order and deliver exactly once
(sequence numbers + checksums are verified by the framing layer on the
TCP path; the in-process path is a single FIFO handoff).
"""

from __future__ import annotations

import socket
import threading
from abc import ABC, abstractmethod
from typing import Callable

from repro.net.flowcontrol import ChannelClosed, WatermarkChannel
from repro.net.framing import Frame, FrameDecoder, FrameEncoder, FrameHeader
from repro.util.errors import TransportError

# One batch delivered to a receiver: (link_id, packet_count, body bytes).
Batch = tuple[int, int, bytes]


class Transport(ABC):
    """Sender-side endpoint for one destination resource."""

    @abstractmethod
    def send(self, link_id: int, body: bytes, count: int) -> None:
        """Deliver one batch; blocks under backpressure.  Never drops."""

    @abstractmethod
    def close(self) -> None:
        """Release the endpoint.  Idempotent."""


class InProcessTransport(Transport):
    """Same-resource delivery through a watermark channel."""

    def __init__(self, channel: WatermarkChannel) -> None:
        self._channel = channel
        self._seq: dict[int, int] = {}

    def send(self, link_id: int, body: bytes, count: int) -> None:
        """Deliver one batch; blocks under backpressure, never drops."""
        seq = self._seq.get(link_id, 0)
        self._seq[link_id] = seq + 1
        frame = Frame(FrameHeader(link_id, seq, count, len(body), 0), body)
        try:
            self._channel.put(len(body), frame, timeout=None)
        except ChannelClosed as exc:
            raise TransportError("in-process channel closed") from exc

    def close(self) -> None:  # the receiver owns the channel lifecycle
        """Release underlying resources. Idempotent."""
        pass


class TcpTransport(Transport):
    """Blocking TCP client carrying NEPTUNE frames.

    One instance per (sender resource → receiver resource) pair; all
    links between the pair multiplex over the single connection, which
    is how NEPTUNE amortizes connection state.  ``send`` is serialized
    by a lock so frame bytes from concurrent flushes never interleave.
    """

    def __init__(self, host: str, port: int, connect_timeout: float = 10.0) -> None:
        self._encoder = FrameEncoder()
        self._lock = threading.Lock()
        self._closed = False
        try:
            self._sock = socket.create_connection((host, port), timeout=connect_timeout)
        except OSError as exc:
            raise TransportError(f"connect to {host}:{port} failed: {exc}") from exc
        # Latency matters for small flushes; batching is done at the
        # application layer, so disable Nagle as NEPTUNE/Netty does.
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._sock.settimeout(None)
        self.bytes_sent = 0
        self.frames_sent = 0

    def send(self, link_id: int, body: bytes, count: int) -> None:
        """Deliver one batch; blocks under backpressure, never drops."""
        wire = self._encoder.encode(link_id, body, count)
        with self._lock:
            if self._closed:
                raise TransportError("send on closed transport")
            try:
                self._sock.sendall(wire)
            except OSError as exc:
                raise TransportError(f"send failed: {exc}") from exc
            self.bytes_sent += len(wire)
            self.frames_sent += 1

    def close(self) -> None:
        """Release underlying resources. Idempotent."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            try:
                self._sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            self._sock.close()


class TcpListener:
    """Accepts NEPTUNE frame connections and hands frames to a sink.

    The ``sink`` callable receives each decoded :class:`Frame` and MAY
    BLOCK — that is the design: a sink that feeds a gated
    :class:`WatermarkChannel` stops this reader thread, the socket's
    kernel receive buffer fills, and TCP flow control throttles the
    sender.

    Parameters
    ----------
    host, port:
        Bind address; port 0 picks an ephemeral port (see ``port``).
    sink:
        Callback invoked with each received frame, per connection in
        arrival order.
    recv_buffer:
        ``SO_RCVBUF`` hint; a small kernel buffer makes backpressure
        propagate after less in-flight data.
    """

    def __init__(
        self,
        host: str,
        port: int,
        sink: Callable[[Frame], None],
        recv_buffer: int | None = None,
    ) -> None:
        self._sink = sink
        self._server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        if recv_buffer is not None:
            self._server.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, recv_buffer)
        self._server.bind((host, port))
        self._server.listen(64)
        self.host, self.port = self._server.getsockname()[:2]
        self._threads: list[threading.Thread] = []
        self._conns: list[socket.socket] = []
        self._lock = threading.Lock()
        self._running = True
        self.errors: list[BaseException] = []
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name=f"tcp-listener-{self.port}", daemon=True
        )
        self._accept_thread.start()

    def _accept_loop(self) -> None:
        while self._running:
            try:
                conn, _addr = self._server.accept()
            except OSError:
                return  # listener closed
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            with self._lock:
                if not self._running:
                    conn.close()
                    return
                self._conns.append(conn)
                t = threading.Thread(
                    target=self._reader_loop,
                    args=(conn,),
                    name=f"tcp-reader-{self.port}",
                    daemon=True,
                )
                self._threads.append(t)
            t.start()

    def _reader_loop(self, conn: socket.socket) -> None:
        decoder = FrameDecoder()
        try:
            while True:
                chunk = conn.recv(65536)
                if not chunk:
                    return
                for frame in decoder.feed(chunk):
                    self._sink(frame)  # may block: that IS backpressure
        except ChannelClosed:
            return
        except OSError:
            return
        except BaseException as exc:  # noqa: BLE001 — surfaced for tests/ops
            self.errors.append(exc)
        finally:
            conn.close()

    def close(self) -> None:
        """Release underlying resources. Idempotent."""
        with self._lock:
            if not self._running:
                return
            self._running = False
            conns = list(self._conns)
        self._server.close()
        for c in conns:
            try:
                c.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            c.close()
        self._accept_thread.join(5.0)
        for t in self._threads:
            t.join(5.0)
