"""Watermark-based flow-controlled channels (paper §III-B4).

"For each inbound buffer of a stream processor, we maintain high and low
watermarks.  Once the buffer is filled up to the high watermark, the IO
worker threads are not allowed to write to the buffer unless the buffer
contents are consumed by the worker threads and the buffer usage reaches
the low watermark level."

:class:`WatermarkChannel` is that inbound buffer: a byte-capacity
bounded queue whose writers block between the high-watermark trip and
the low-watermark drain.  Hysteresis (the gap between the marks, "set
sufficiently apart to avoid the system oscillating between the two
states rapidly") prevents write-admission flapping.  Over TCP the
blocked reader stops draining the socket, the kernel receive window
closes, and the sender's writes block — propagating pressure upstream
exactly as the paper describes; in-process links block directly.
"""

from __future__ import annotations

import threading
from typing import Any, Callable

from repro.util.clock import Clock, SYSTEM_CLOCK
from repro.util.errors import NeptuneError


class ChannelClosed(NeptuneError):
    """Write to (or blocking read from) a closed channel."""


class WatermarkChannel:
    """Bounded byte-accounted FIFO with high/low watermark admission.

    Items are ``(size_bytes, payload)`` pairs; admission is decided on
    the byte total, matching NEPTUNE's capacity-based (not count-based)
    buffers.

    Parameters
    ----------
    high_watermark:
        Byte level at which writers stop being admitted.
    low_watermark:
        Byte level the queue must drain to before writers resume.
    clock:
        Time source for gate-episode durations (``gated_seconds`` /
        ``last_gate_seconds``).  Chaos and policy tests run on a
        :class:`~repro.util.clock.ManualClock`; wall-clock reads here
        would make sim-time gate attribution flake.
    """

    def __init__(
        self,
        high_watermark: int,
        low_watermark: int | None = None,
        injector=None,
        site: str = "channel.put",
        clock: Clock = SYSTEM_CLOCK,
    ) -> None:
        if high_watermark <= 0:
            raise ValueError(f"high_watermark must be positive: {high_watermark}")
        if low_watermark is None:
            low_watermark = high_watermark // 2
        if not 0 <= low_watermark < high_watermark:
            raise ValueError(
                f"low_watermark must be in [0, high): {low_watermark} vs {high_watermark}"
            )
        self.high_watermark = high_watermark
        self.low_watermark = low_watermark
        # Chaos hook: an optional FaultInjector consulted on every put
        # (delay faults stall the writer, modelling a slow IO thread).
        self._injector = injector
        self._site = site
        self._clock = clock
        self._items: list[tuple[int, Any]] = []
        self._bytes = 0
        self._gated = False  # True between high trip and low drain
        self._lock = threading.Lock()
        self._writable = threading.Condition(self._lock)
        self._readable = threading.Condition(self._lock)
        self._closed = False
        # Observability / backpressure metrics.
        self.writer_blocks = 0
        self.gate_trips = 0
        self.gated_seconds = 0.0  # cumulative time the gate was closed
        self.last_gate_seconds = 0.0  # duration of the last closed episode
        self._gated_since = 0.0
        self._on_gate: Callable[[bool], None] | None = None
        self._on_data: Callable[[], None] | None = None

    def on_data_available(self, callback: Callable[[], None]) -> None:
        """Register a callback fired (outside the lock) after each put.

        The runtime hooks this to Granules' data-driven scheduling so a
        destination operator is dispatched when a batch lands.
        """
        self._on_data = callback

    def on_gate_change(self, callback: Callable[[bool], None]) -> None:
        """Register a callback invoked with the new gate state on change.

        The runtime uses this to throttle upstream operator scheduling
        (the application-visible half of backpressure).
        """
        self._on_gate = callback

    def _set_gate(self, gated: bool) -> Callable[[bool], None] | None:
        """Flip the gate state; caller must hold ``_lock``.

        Returns the gate-change callback to invoke (or None) — the
        CALLER runs it *after releasing the lock*.  Invoking it under
        the lock would let a callback that re-enters the channel (or
        blocks, e.g. pausing a scheduler) deadlock every reader and
        writer.
        """
        if gated == self._gated:
            return None
        self._gated = gated
        if gated:
            self.gate_trips += 1
            self._gated_since = self._clock.now()
        else:
            duration = self._clock.now() - self._gated_since
            self.last_gate_seconds = duration
            self.gated_seconds += duration
        return self._on_gate

    def put(self, size: int, item: Any, timeout: float | None = None) -> bool:
        """Enqueue ``item`` accounting ``size`` bytes.

        Blocks while the gate is closed.  Returns False on timeout;
        raises :class:`ChannelClosed` if the channel closes while
        waiting or is already closed.
        """
        if size < 0:
            raise ValueError(f"negative size: {size}")
        if self._injector is not None:
            self._injector.maybe_delay(self._site)
        gate_cb: Callable[[bool], None] | None = None
        with self._writable:
            if self._closed:
                raise ChannelClosed("put on closed channel")
            blocked = False
            while self._gated:
                blocked = True
                if not self._writable.wait(timeout):
                    self.writer_blocks += 1
                    return False
                if self._closed:
                    raise ChannelClosed("channel closed while blocked in put")
            if blocked:
                self.writer_blocks += 1
            self._items.append((size, item))
            self._bytes += size
            if self._bytes >= self.high_watermark:
                gate_cb = self._set_gate(True)
            self._readable.notify()
        if gate_cb is not None:
            gate_cb(True)
        if self._on_data is not None:
            self._on_data()
        return True

    def get(self, timeout: float | None = None) -> Any:
        """Dequeue one item; blocks while empty.

        Raises :class:`ChannelClosed` when the channel is closed and
        drained.  Returns the payload only (size accounting is
        internal).
        """
        with self._readable:
            while not self._items:
                if self._closed:
                    raise ChannelClosed("channel closed and drained")
                if not self._readable.wait(timeout):
                    raise TimeoutError("get timed out")
            size, item = self._items.pop(0)
            gate_cb = self._release(size)
        if gate_cb is not None:
            gate_cb(False)
        return item

    def drain(self, max_items: int | None = None) -> list[Any]:
        """Dequeue up to ``max_items`` (all if None) without blocking."""
        with self._readable:
            n = len(self._items) if max_items is None else min(max_items, len(self._items))
            taken = self._items[:n]
            del self._items[:n]
            freed = sum(s for s, _ in taken)
            gate_cb = self._release(freed)
            items = [item for _, item in taken]
        if gate_cb is not None:
            gate_cb(False)
        return items

    def _release(self, freed: int) -> Callable[[bool], None] | None:
        """Caller must hold ``_lock``; returns the gate callback to run
        after release (see :meth:`_set_gate`)."""
        self._bytes -= freed
        if self._gated and self._bytes <= self.low_watermark:
            self._writable.notify_all()
            return self._set_gate(False)
        return None

    def close(self) -> None:
        """Release underlying resources. Idempotent."""
        with self._lock:
            self._closed = True
            self._writable.notify_all()
            self._readable.notify_all()

    @property
    def closed(self) -> bool:
        """Whether this object has been closed."""
        with self._lock:
            return self._closed

    @property
    def gated(self) -> bool:
        """Whether writers are currently blocked (gate closed)."""
        with self._lock:
            return self._gated

    @property
    def buffered_bytes(self) -> int:
        """Bytes currently buffered."""
        with self._lock:
            return self._bytes

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)
