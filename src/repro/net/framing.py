"""Wire framing for NEPTUNE batches.

One frame carries one application-level buffer flush: a batch of
serialized stream packets for a single link, possibly compressed by the
stream's :class:`~repro.compression.CompressionPolicy`.

Frame layout (all integers little-endian)::

    magic      2 bytes   0x4E50 ("NP")
    version    1 byte
    link_id    4 bytes   destination link
    seq        8 bytes   per-link frame sequence number (in-order check)
    count      4 bytes   number of packets in the batch
    length     4 bytes   body length in bytes
    checksum   4 bytes   xxh32 of the body
    [trace_len 2 bytes   version 2 only: trace block length]
    [trace     `trace_len` bytes   version 2 only: observe trace notes]
    body       `length` bytes

Version 1 frames carry no trace block; version 2 frames insert one
between header and body (see :mod:`repro.observe.tracing`).  The
encoder emits version 1 whenever the trace block is empty, so tracing
is zero wire overhead unless a sampled packet is actually aboard, and
decoders accept both versions.  The checksum covers the body only: a
trace note is advisory diagnostics, not stream data.

The sequence number and checksum implement the paper's correctness
requirements: no corrupted, dropped, duplicated, or reordered packets.
"""

from __future__ import annotations

import struct
import threading
from dataclasses import dataclass

from repro.lz4 import xxh32
from repro.util.errors import SerializationError

MAGIC = 0x4E50
VERSION = 1
VERSION_TRACED = 2
_HEADER = struct.Struct("<HBIQII I".replace(" ", ""))
HEADER_SIZE = _HEADER.size
_TRACE_LEN = struct.Struct("<H")
MAX_TRACE = 0xFFFF

# Upper bound on a frame body; a flush is at most the application buffer
# (1 MB default) plus compression flag — anything bigger is corruption.
MAX_BODY = 64 * 1024 * 1024


@dataclass(frozen=True)
class FrameHeader:
    """Decoded frame header."""

    link_id: int
    seq: int
    count: int
    length: int
    checksum: int


@dataclass(frozen=True)
class Frame:
    """A decoded frame: header plus body bytes (and any trace block).

    In-process frames may carry a ``bytearray`` body on loan from the
    sender's :class:`~repro.core.buffering.StreamBuffer` pool (zero-copy
    flush); wire-decoded frames always hold ``bytes``.
    """

    header: FrameHeader
    body: bytes | bytearray | memoryview
    trace: bytes = b""

    @property
    def link_id(self) -> int:
        """Destination link id carried by this frame."""
        return self.header.link_id

    @property
    def seq(self) -> int:
        """Per-link sequence number of this frame."""
        return self.header.seq

    @property
    def count(self) -> int:
        """Number of observations recorded."""
        return self.header.count


class FrameEncoder:
    """Stateful encoder assigning per-link sequence numbers.

    One encoder per outbound connection; it is the single writer for its
    links, so a plain dict of counters suffices (the runtime serializes
    access through the IO thread that owns the connection).
    """

    def __init__(self) -> None:
        self._seqs: dict[int, int] = {}

    def encode(
        self,
        link_id: int,
        body: bytes | bytearray | memoryview,
        count: int,
        trace: bytes = b"",
    ) -> bytes:
        """Encode one batch into a single wire-frame byte string.

        Materializes header+body in one buffer — use when the caller
        needs the whole frame as one object (e.g. a replay window).
        """
        header, _ = self.encode_parts(link_id, body, count, trace)
        return b"".join((header, body))

    def encode_parts(
        self,
        link_id: int,
        body: bytes | bytearray | memoryview,
        count: int,
        trace: bytes = b"",
    ) -> tuple[bytes, bytes | bytearray | memoryview]:
        """Encode one batch as ``(header, body)`` and bump the link's seq.

        The header part includes any trace block; the body is returned
        as given — zero-copy for the common send path, which can write
        the two parts to a socket without concatenating them.  A
        non-empty ``trace`` block upgrades the frame to version 2.
        """
        if link_id < 0 or link_id > 0xFFFFFFFF:
            raise SerializationError(f"link_id out of range: {link_id}")
        if len(body) > MAX_BODY:
            raise SerializationError(f"frame body too large: {len(body)}")
        if len(trace) > MAX_TRACE:
            raise SerializationError(f"frame trace block too large: {len(trace)}")
        seq = self._seqs.get(link_id, 0)
        self._seqs[link_id] = seq + 1
        version = VERSION_TRACED if trace else VERSION
        header = _HEADER.pack(
            MAGIC, version, link_id, seq, count, len(body), xxh32(body)
        )
        if trace:
            return header + _TRACE_LEN.pack(len(trace)) + trace, body
        return header, body

    def sequence(self, link_id: int) -> int:
        """Next sequence number that will be assigned for ``link_id``."""
        return self._seqs.get(link_id, 0)


class FrameDecoder:
    """Incremental decoder over a byte stream.

    Feed arbitrary chunks with :meth:`feed`; complete frames come out of
    :meth:`frames`.  Verifies magic, version, length bounds, checksum,
    and per-link sequence continuity.
    """

    def __init__(self, verify_sequence: bool = True) -> None:
        self._buf = bytearray()
        self._expected: dict[int, int] = {}
        self._verify_sequence = verify_sequence

    def feed(self, data: bytes) -> list[Frame]:
        """Append ``data`` and return all frames completed by it."""
        self._buf += data
        out: list[Frame] = []
        while True:
            frame = self._try_decode_one()
            if frame is None:
                return out
            out.append(frame)

    def _try_decode_one(self) -> Frame | None:
        if len(self._buf) < HEADER_SIZE:
            return None
        magic, version, link_id, seq, count, length, checksum = _HEADER.unpack_from(
            self._buf
        )
        if magic != MAGIC:
            raise SerializationError(f"bad frame magic: {magic:#06x}")
        if version not in (VERSION, VERSION_TRACED):
            raise SerializationError(f"unsupported frame version: {version}")
        if length > MAX_BODY:
            raise SerializationError(f"frame body too large: {length}")
        trace = b""
        body_at = HEADER_SIZE
        if version == VERSION_TRACED:
            if len(self._buf) < HEADER_SIZE + _TRACE_LEN.size:
                return None
            (trace_len,) = _TRACE_LEN.unpack_from(self._buf, HEADER_SIZE)
            body_at = HEADER_SIZE + _TRACE_LEN.size + trace_len
            if len(self._buf) < body_at + length:
                return None
            trace = bytes(self._buf[HEADER_SIZE + _TRACE_LEN.size : body_at])
        if len(self._buf) < body_at + length:
            return None
        body = bytes(self._buf[body_at : body_at + length])
        del self._buf[: body_at + length]
        if xxh32(body) != checksum:
            raise SerializationError(
                f"checksum mismatch on link {link_id} seq {seq}: packet corrupted"
            )
        if self._verify_sequence:
            expected = self._expected.get(link_id, 0)
            if seq != expected:
                raise SerializationError(
                    f"out-of-order frame on link {link_id}: got seq {seq}, expected {expected}"
                )
            self._expected[link_id] = seq + 1
        return Frame(FrameHeader(link_id, seq, count, length, checksum), body, trace)

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered awaiting a complete frame."""
        return len(self._buf)


class SequenceTracker:
    """Cross-connection per-link sequence bookkeeping for resumable links.

    A :class:`FrameDecoder` lives for one TCP connection; when a
    transport reconnects after a failure and *replays* its unacked
    frames, the receiver must carry its per-link expectations across
    connections and classify each arriving frame:

    - ``DELIVER`` — ``seq`` is exactly the next expected frame;
      delivered and the expectation advances.
    - ``DUPLICATE`` — ``seq`` was already delivered (a replay of a
      frame that survived the failure); suppressed, never re-delivered.
    - ``GAP`` — ``seq`` skips ahead: at least one frame was lost and
      has not (yet) been replayed.  The caller severs the connection,
      which makes the sender reconnect and replay from its oldest
      unacknowledged frame — turning detected loss into retransmission
      instead of an error.

    One tracker per listener, shared by all reader threads.
    """

    DELIVER = "deliver"
    DUPLICATE = "duplicate"
    GAP = "gap"

    def __init__(self) -> None:
        self._expected: dict[int, int] = {}
        self._lock = threading.Lock()
        self.delivered = 0
        self.duplicates = 0
        self.gaps = 0

    def check(self, link_id: int, seq: int) -> str:
        """Classify one frame and advance expectations on delivery."""
        with self._lock:
            expected = self._expected.get(link_id, 0)
            if seq == expected:
                self._expected[link_id] = seq + 1
                self.delivered += 1
                return self.DELIVER
            if seq < expected:
                self.duplicates += 1
                return self.DUPLICATE
            self.gaps += 1
            return self.GAP

    def expected(self, link_id: int) -> int:
        """Next sequence number that will be accepted for ``link_id``."""
        with self._lock:
            return self._expected.get(link_id, 0)
