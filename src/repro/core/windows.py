"""Windowing utilities for stateful processors.

The paper's manufacturing-equipment job monitors "the delay between the
sensor state change and actuation of the corresponding valve over a
24-hour time window" — a time-based sliding window; a count-based
tumbling window covers the common descriptive-statistics stage the
buffering discussion mentions (§III-B1).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Iterator


class SlidingWindow:
    """Time-based sliding window of (timestamp, value) observations.

    ``add`` inserts an observation and evicts everything older than
    ``size`` seconds relative to the newest timestamp.  Timestamps must
    be non-decreasing (streams are ordered; enforced so aggregate
    results are well-defined).
    """

    def __init__(self, size: float) -> None:
        if size <= 0:
            raise ValueError(f"window size must be positive: {size}")
        self.size = size
        self._items: deque[tuple[float, Any]] = deque()

    def add(self, timestamp: float, value: Any) -> None:
        """Add one observation to the window."""
        if self._items and timestamp < self._items[-1][0]:
            raise ValueError(
                f"out-of-order timestamp {timestamp} < {self._items[-1][0]}"
            )
        self._items.append((timestamp, value))
        horizon = timestamp - self.size
        while self._items and self._items[0][0] <= horizon:
            self._items.popleft()

    def values(self) -> Iterator[Any]:
        """The field values, in schema order."""
        return (v for _, v in self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    @property
    def span(self) -> float:
        """Seconds covered by the current contents (0 when <2 items)."""
        if len(self._items) < 2:
            return 0.0
        return self._items[-1][0] - self._items[0][0]

    def aggregate(self, fn: Callable[[list[Any]], Any]) -> Any:
        """Apply ``fn`` to the window's values (e.g. statistics.mean)."""
        return fn([v for _, v in self._items])


class TumblingCountWindow:
    """Fixed-count tumbling window: emits a full batch every N adds."""

    def __init__(self, count: int) -> None:
        if count <= 0:
            raise ValueError(f"window count must be positive: {count}")
        self.count = count
        self._items: list[Any] = []

    def add(self, value: Any) -> list[Any] | None:
        """Add a value; returns the completed batch when full else None."""
        self._items.append(value)
        if len(self._items) >= self.count:
            batch = self._items
            self._items = []
            return batch
        return None

    def __len__(self) -> int:
        return len(self._items)

    def flush(self) -> list[Any]:
        """Return and clear any partial batch (stream shutdown)."""
        batch, self._items = self._items, []
        return batch
