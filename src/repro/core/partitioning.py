"""Stream partitioning schemes (paper §III-A6).

"Partitioning schemes define how a stream should be partitioned when it
is routed to different instances of the same stream processor. ...
NEPTUNE supports a set of partitioning schemes natively and also allows
users to design custom partitioning schemes."

A scheme maps a packet to the destination instance index (or indices,
for broadcast) among ``n`` instances of the downstream operator.
Custom schemes subclass :class:`PartitioningScheme` and register with
:func:`register_partitioning` so JSON graph descriptors can name them.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Sequence

from repro.core.packet import StreamPacket
from repro.lz4 import xxh32
from repro.util.errors import GraphValidationError, PartitioningError


class PartitioningScheme(ABC):
    """Maps each packet to destination instance indices."""

    #: Name used in JSON descriptors; subclasses override.
    name = "abstract"

    #: Whether routing is a pure function of (packet, n_instances) and
    #: prior routed packets — i.e. replaying the same packet sequence
    #: reproduces the same assignment.  Sharding an operator across
    #: worker processes rides on this: after a worker crash the source's
    #: replayed packets must land on the same instances or per-key order
    #: (and exactly-once accounting per shard) is lost.  Schemes whose
    #: routing draws on unseeded randomness set this to False
    #: (``repro analyze`` flags them on sharded links as NEPG122).
    deterministic: bool = True

    @abstractmethod
    def route(self, packet: StreamPacket, n_instances: int) -> Sequence[int]:
        """Destination instance indices in ``range(n_instances)``."""

    def describe(self) -> dict:
        """JSON-descriptor form of this scheme."""
        return {"scheme": self.name}


class RoundRobinPartitioning(PartitioningScheme):
    """Cycle through instances — even load, no key affinity.

    Stateful per link leg; NEPTUNE instantiates one scheme object per
    (sender instance, link), so no lock is needed (operator instances
    execute serialized).
    """

    name = "round-robin"

    def __init__(self) -> None:
        self._next = 0

    def route(self, packet: StreamPacket, n_instances: int) -> Sequence[int]:
        """Destination instance indices for one packet."""
        idx = self._next
        self._next = (idx + 1) % n_instances
        return (idx,)


class ShufflePartitioning(PartitioningScheme):
    """Uniformly random instance per packet (Storm's "shuffle grouping").

    Unseeded, routing differs run to run, which cannot be sharded
    across worker processes (replay after a crash would re-route
    packets); pass ``seed`` to make the stream reproducible and
    descriptor-portable.
    """

    name = "shuffle"

    def __init__(self, seed: int | None = None) -> None:
        self.seed = seed
        self.deterministic = seed is not None
        self._rng = random.Random(seed)

    def route(self, packet: StreamPacket, n_instances: int) -> Sequence[int]:
        """Destination instance indices for one packet."""
        return (self._rng.randrange(n_instances),)

    def describe(self) -> dict:
        """JSON-descriptor form of this scheme."""
        if self.seed is None:
            return {"scheme": self.name}
        return {"scheme": self.name, "seed": self.seed}


class FieldsPartitioning(PartitioningScheme):
    """Key-hash partitioning: same key fields → same instance.

    Required whenever a processor keeps per-key state (e.g. the DEBS
    monitoring job keys by sensor id).  Hashes the UTF-8/wire form of
    the named fields with xxh32 for a stable, platform-independent
    assignment.
    """

    name = "fields"

    def __init__(self, fields: Sequence[str]) -> None:
        if not fields:
            raise GraphValidationError("fields partitioning needs at least one field")
        self.fields = tuple(fields)

    def route(self, packet: StreamPacket, n_instances: int) -> Sequence[int]:
        """Destination instance indices for one packet."""
        h = 0
        for fname in self.fields:
            value = packet.get(fname)
            h = xxh32(repr(value).encode("utf-8"), seed=h)
        return (h % n_instances,)

    def describe(self) -> dict:
        """JSON-descriptor form of this scheme."""
        return {"scheme": self.name, "fields": list(self.fields)}


class BroadcastPartitioning(PartitioningScheme):
    """Deliver every packet to every instance (control/config streams)."""

    name = "broadcast"

    def route(self, packet: StreamPacket, n_instances: int) -> Sequence[int]:
        """Destination instance indices for one packet."""
        return tuple(range(n_instances))


class DirectPartitioning(PartitioningScheme):
    """Sender names the instance explicitly via a packet field."""

    name = "direct"

    def __init__(self, index_field: str) -> None:
        self.index_field = index_field

    def route(self, packet: StreamPacket, n_instances: int) -> Sequence[int]:
        """Destination instance indices for one packet."""
        idx = packet.get(self.index_field)
        if not isinstance(idx, int) or not 0 <= idx < n_instances:
            raise GraphValidationError(
                f"direct partitioning field {self.index_field!r} = {idx!r} "
                f"is not a valid instance index (n={n_instances})"
            )
        return (idx,)

    def describe(self) -> dict:
        """JSON-descriptor form of this scheme."""
        return {"scheme": self.name, "index_field": self.index_field}


# -- registry (for JSON descriptors and user extensions) ---------------------

_REGISTRY: dict[str, type[PartitioningScheme]] = {}


def register_partitioning(cls: type[PartitioningScheme]) -> type[PartitioningScheme]:
    """Register a scheme class under its ``name`` (usable as decorator)."""
    if not getattr(cls, "name", None) or cls.name == "abstract":
        raise GraphValidationError(f"partitioning class {cls!r} needs a name")
    _REGISTRY[cls.name] = cls
    return cls


def resolve_partitioning(spec: dict | str | PartitioningScheme) -> PartitioningScheme:
    """Build a scheme from a descriptor: name, dict, or instance."""
    if isinstance(spec, PartitioningScheme):
        return spec
    if isinstance(spec, str):
        spec = {"scheme": spec}
    name = spec.get("scheme")
    cls = _REGISTRY.get(name)  # type: ignore[arg-type]
    if cls is None:
        raise PartitioningError(
            f"unknown partitioning scheme {name!r}; registered: {sorted(_REGISTRY)}"
        )
    kwargs = {k: v for k, v in spec.items() if k != "scheme"}
    try:
        return cls(**kwargs)
    except TypeError as exc:
        raise PartitioningError(
            f"partitioning scheme {name!r} cannot be built "
            f"from {kwargs!r}: {exc}"
        ) from exc


for _cls in (
    RoundRobinPartitioning,
    ShufflePartitioning,
    FieldsPartitioning,
    BroadcastPartitioning,
    DirectPartitioning,
):
    register_partitioning(_cls)
