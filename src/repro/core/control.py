"""Control plane for multi-process distributed deployments.

:class:`DistributedWorker` hosts a partition inside one process; this
module adds the coordination layer for workers living in *different*
processes (or machines):

- :class:`ControlServer` — a tiny JSON-lines TCP command endpoint
  attached to a worker (``ping``/``finish_sources``/``flush_all``/
  ``is_quiet``/``metrics``/``telemetry``/``failures``/``stop``).
- :class:`RemoteWorker` — the client proxy, duck-type compatible with
  :class:`DistributedWorker` for everything the coordinator needs.
- :class:`RemoteDistributedJob` — the same global-drain coordinator as
  :class:`~repro.core.distributed.DistributedJob`, over proxies.
- :func:`worker_main` — process entry point
  (``python -m repro.core.control --descriptor g.json ...``) that
  builds the worker from a JSON graph descriptor, wires it, serves
  control commands, and blocks until told to stop.

The data plane is unchanged: stream frames ride the workers' own
TCP listeners; only coordination (start/drain/metrics) crosses the
control sockets.
"""

from __future__ import annotations

import json
import socket
import threading
import time
from typing import Any

from repro.net.transport import TcpListener  # noqa: F401  (doc cross-ref)
from repro.util.errors import NeptuneError


class ControlError(NeptuneError):
    """A control command failed on the remote worker."""


class ControlServer:
    """JSON-lines command endpoint for one DistributedWorker."""

    def __init__(self, worker, host: str = "127.0.0.1", port: int = 0) -> None:
        self.worker = worker
        self._server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._server.bind((host, port))
        self._server.listen(8)
        self.host, self.port = self._server.getsockname()[:2]
        self._running = True
        self.stop_requested = threading.Event()
        self._thread = threading.Thread(
            target=self._accept_loop, name=f"neptune-ctl-{self.port}", daemon=True
        )
        self._thread.start()

    def _accept_loop(self) -> None:
        while self._running:
            try:
                conn, _ = self._server.accept()
            except OSError:
                return
            threading.Thread(
                target=self._serve,
                args=(conn,),
                name=f"neptune-ctl-conn-{self.port}",
                daemon=True,
            ).start()

    def _serve(self, conn: socket.socket) -> None:
        try:
            # Request/response lines are tiny: without TCP_NODELAY each
            # exchange stalls on Nagle + delayed ACK (~40ms), which
            # alone would blow the collector's poll-duty budget.
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            rfile = conn.makefile("r", encoding="utf-8")
            wfile = conn.makefile("w", encoding="utf-8")
            for line in rfile:
                line = line.strip()
                if not line:
                    continue
                try:
                    request = json.loads(line)
                    response = self._dispatch(request)
                except Exception as exc:  # noqa: BLE001 — report to caller
                    response = {"ok": False, "error": repr(exc)}
                wfile.write(json.dumps(response) + "\n")
                wfile.flush()
                if request.get("cmd") == "stop":
                    return
        except OSError:
            pass
        finally:
            conn.close()

    def _dispatch(self, request: dict) -> dict:
        cmd = request.get("cmd")
        worker = self.worker
        if cmd == "ping":
            return {"ok": True, "worker_id": worker.worker_id}
        if cmd == "finish_sources":
            worker.finish_sources()
            return {"ok": True}
        if cmd == "prepare_drain":
            worker.prepare_drain()
            return {"ok": True}
        if cmd == "flush_all":
            worker.flush_all()
            return {"ok": True}
        if cmd == "is_quiet":
            return {"ok": True, "quiet": worker.is_quiet()}
        if cmd == "metrics":
            return {"ok": True, "metrics": worker.metrics()}
        if cmd == "telemetry":
            # Full worker-labelled instrument series (operators,
            # transports, listener) — what `repro metrics` and the
            # HealthEngine scrape across process boundaries.
            from repro.observe.bridge import worker_series

            return {"ok": True, "series": worker_series(worker)}
        if cmd == "collect":
            # One bounded telemetry delta (series + new spans/events +
            # SLO states) for the cluster collector.  None when the
            # worker runs without an observability plane.
            source = getattr(worker, "delta_source", None)
            return {
                "ok": True,
                "delta": None if source is None else source.collect(),
            }
        if cmd == "collect_info":
            source = getattr(worker, "delta_source", None)
            return {
                "ok": True,
                "info": None if source is None else source.info(),
            }
        if cmd == "profile":
            # Full sampling-profiler snapshot (collapsed stacks and
            # on/off-CPU totals) for `repro profile --cluster`.
            profiler = getattr(worker, "profiler", None)
            return {
                "ok": True,
                "profile": None if profiler is None else profiler.snapshot(),
            }
        if cmd == "flight_dump":
            # Coordinator-requested black-box dump (kill_worker asks
            # for one before delivering the signal).
            recorder = getattr(worker, "flight_recorder", None)
            return {
                "ok": True,
                "path": None if recorder is None else recorder.dump("request"),
            }
        if cmd == "reconfigure":
            # Live elasticity action (policy engine): retune buffer
            # bounds / resize the scheduler pool without a restart.
            return {
                "ok": True,
                "result": worker.reconfigure(dict(request.get("changes") or {})),
            }
        if cmd == "failures":
            return {
                "ok": True,
                "failures": {k: repr(v) for k, v in worker.failures.items()},
            }
        if cmd == "stop":
            worker.stop()
            self.stop_requested.set()
            return {"ok": True}
        return {"ok": False, "error": f"unknown command {cmd!r}"}

    def close(self) -> None:
        """Release underlying resources. Idempotent."""
        self._running = False
        self._server.close()
        self._thread.join(5.0)


class RemoteWorker:
    """Coordinator-side proxy for a worker in another process."""

    def __init__(self, host: str, port: int, connect_timeout: float = 30.0) -> None:
        deadline = time.monotonic() + connect_timeout
        last_error: Exception | None = None
        while time.monotonic() < deadline:
            try:
                self._sock = socket.create_connection((host, port), timeout=5.0)
                break
            except OSError as exc:  # worker still starting
                last_error = exc
                time.sleep(0.05)
        else:
            raise ControlError(f"cannot reach worker control at {host}:{port}: {last_error}")
        self._sock.settimeout(60.0)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._rfile = self._sock.makefile("r", encoding="utf-8")
        self._wfile = self._sock.makefile("w", encoding="utf-8")
        self._lock = threading.Lock()
        self.worker_id = self._call({"cmd": "ping"})["worker_id"]

    def _call(self, request: dict) -> dict:
        try:
            with self._lock:
                self._wfile.write(json.dumps(request) + "\n")
                self._wfile.flush()
                line = self._rfile.readline()
        except OSError as exc:
            # A worker stopped from elsewhere (external `cluster stop`,
            # a crash) surfaces as EPIPE/ECONNRESET here; callers handle
            # ControlError, so never leak the raw socket error.
            raise ControlError(f"worker control connection lost: {exc}") from exc
        if not line:
            raise ControlError("worker control connection closed")
        response = json.loads(line)
        if not response.get("ok"):
            raise ControlError(response.get("error", "unknown control failure"))
        return response

    # -- DistributedWorker-compatible surface -----------------------------
    def finish_sources(self) -> None:
        """Mark all local sources finished (drain begins)."""
        self._call({"cmd": "finish_sources"})

    def prepare_drain(self) -> None:
        """Switch custom-scheduled processors to data-driven dispatch."""
        self._call({"cmd": "prepare_drain"})

    def flush_all(self) -> None:
        """Force-flush every outbound buffer."""
        self._call({"cmd": "flush_all"})

    def is_quiet(self) -> bool:
        """Locally quiescent: nothing running, queued, or buffered."""
        return bool(self._call({"cmd": "is_quiet"})["quiet"])

    def metrics(self) -> dict:
        """Aggregated per-operator counters."""
        return self._call({"cmd": "metrics"})["metrics"]

    def telemetry(self) -> list:
        """Worker-labelled instrument series (see
        :func:`repro.observe.bridge.worker_series`)."""
        return self._call({"cmd": "telemetry"})["series"]

    def collect(self) -> dict | None:
        """One telemetry delta from the worker's DeltaSource (None when
        the worker runs without an observability plane)."""
        return self._call({"cmd": "collect"})["delta"]

    def collect_info(self) -> dict | None:
        """Cheap DeltaSource status (last-collection age, counters)."""
        return self._call({"cmd": "collect_info"})["info"]

    def reconfigure(self, changes: dict) -> dict:
        """Apply a live reconfiguration on the worker (see
        :meth:`~repro.core.distributed.DistributedWorker.reconfigure`);
        returns the worker's applied-changes report."""
        return self._call({"cmd": "reconfigure", "changes": changes})["result"]

    def flight_dump(self) -> str | None:
        """Request an immediate flight-recorder dump; returns its path
        on the worker's filesystem (None without a recorder)."""
        return self._call({"cmd": "flight_dump"})["path"]

    def profile(self) -> dict | None:
        """Full profiler snapshot (None when the worker runs without a
        sampling profiler)."""
        return self._call({"cmd": "profile"})["profile"]

    @property
    def failures(self) -> dict:
        """Operator-instance failures keyed by 'operator[index]'."""
        return self._call({"cmd": "failures"})["failures"]

    def stop(self, timeout: float = 10.0) -> None:
        """Stop and release resources. Idempotent."""
        try:
            self._call({"cmd": "stop"})
        except (ControlError, OSError):
            pass  # worker may already be gone
        self._sock.close()

    def close(self) -> None:
        """Detach: close the control socket WITHOUT stopping the worker
        (read-only attachments like ``repro cluster status``)."""
        self._sock.close()


class RemoteDistributedJob:
    """Global drain over remote workers (same protocol as DistributedJob)."""

    def __init__(self, workers: list) -> None:
        if not workers:
            raise NeptuneError("RemoteDistributedJob needs at least one worker")
        self.workers = workers
        #: Zero-arg callables invoked after the cluster quiesces but
        #: before the workers are stopped (stopping severs the control
        #: sockets).  The cluster collector registers its final poll
        #: here so the merged view includes the drain's tail.
        self.pre_stop_hooks: list = []
        self._final_metrics: dict | None = None
        self._final_failures: dict | None = None

    def failures(self) -> dict:
        """Operator-instance failures keyed by 'operator[index]'.  After
        the drain has stopped the workers, returns the final snapshot."""
        if self._final_failures is not None:
            return self._final_failures
        out: dict = {}
        for w in self.workers:
            out.update(w.failures)
        return out

    def metrics(self) -> dict:
        """Aggregated per-operator counters.  After the drain has
        stopped the workers, returns the final pre-stop snapshot."""
        if self._final_metrics is not None:
            return self._final_metrics
        merged: dict = {}
        for w in self.workers:
            for op, m in w.metrics().items():
                if op not in merged:
                    merged[op] = dict(m)
                else:
                    for key, value in m.items():
                        merged[op][key] += value
        return merged

    def await_completion(self, timeout: float = 60.0) -> bool:
        """Wait for natural completion and global drain."""
        return self._drain(timeout, force=False)

    def stop(self, timeout: float = 60.0) -> bool:
        """Stop and release resources. Idempotent."""
        return self._drain(timeout, force=True)

    def _drain(self, timeout: float, force: bool) -> bool:
        for w in self.workers:
            w.prepare_drain()
        if force:
            for w in self.workers:
                w.finish_sources()
        deadline = time.monotonic() + timeout
        quiesced = False
        while time.monotonic() < deadline:
            if self.failures():
                break
            for w in self.workers:
                w.flush_all()
            if all(w.is_quiet() for w in self.workers):
                time.sleep(0.05)
                for w in self.workers:
                    w.flush_all()
                if all(w.is_quiet() for w in self.workers):
                    quiesced = True
                    break
            time.sleep(0.01)
        for hook in self.pre_stop_hooks:
            try:
                hook()
            except Exception:
                pass  # a dying hook must not block the drain
        try:
            # Stopping severs the control connections: snapshot the
            # final counters first so post-run metrics()/failures()
            # still answer.
            self._final_metrics = self.metrics()
            self._final_failures = self.failures()
        except (ControlError, OSError):
            pass
        for w in self.workers:
            w.stop()
        return quiesced


# ---------------------------------------------------------------------------
# worker process entry point
# ---------------------------------------------------------------------------


def worker_main(argv: list[str] | None = None) -> int:
    """Run one distributed worker as a standalone process.

    The coordinator launches N of these (one per machine/process) with
    identical descriptor+plan, pre-agreed data-plane ports, then drives
    them through their control ports with :class:`RemoteWorker` /
    :class:`RemoteDistributedJob`.
    """
    import argparse

    from repro.core.distributed import DeploymentPlan, DistributedWorker
    from repro.core.graph import StreamProcessingGraph

    parser = argparse.ArgumentParser(prog="repro.core.control")
    parser.add_argument("--descriptor", required=True, help="graph JSON file")
    parser.add_argument("--worker-id", type=int, required=True)
    parser.add_argument(
        "--plan",
        required=True,
        help='JSON: {"n_workers": N, "assignment": [["op", idx, worker], ...]}',
    )
    parser.add_argument(
        "--endpoints",
        required=True,
        help='JSON: {"0": ["host", dataport], ...} for every worker',
    )
    parser.add_argument("--listen-port", type=int, required=True)
    parser.add_argument("--control-port", type=int, required=True)
    args = parser.parse_args(argv)

    with open(args.descriptor, "r", encoding="utf-8") as fh:
        graph = StreamProcessingGraph.from_descriptor(json.load(fh))
    graph.validate()
    plan_raw = json.loads(args.plan)
    plan = DeploymentPlan(
        n_workers=plan_raw["n_workers"],
        assignment={(op, idx): w for op, idx, w in plan_raw["assignment"]},
    )
    endpoints: dict[int, tuple] = {
        int(k): (v[0], int(v[1])) for k, v in json.loads(args.endpoints).items()
    }
    worker = DistributedWorker(
        args.worker_id, graph, plan, listen_port=args.listen_port
    )
    control = ControlServer(worker, port=args.control_port)
    worker.connect(endpoints)
    worker.start()
    print(
        f"worker {args.worker_id}: data={worker.address[1]} "
        f"control={control.port} instances={plan.instances_on(args.worker_id)}",
        flush=True,
    )
    control.stop_requested.wait()
    control.close()
    return 0


def plan_to_json(plan) -> str:
    """Serialize a DeploymentPlan for worker_main's ``--plan``."""
    return json.dumps(
        {
            "n_workers": plan.n_workers,
            "assignment": [
                [op, idx, worker] for (op, idx), worker in sorted(plan.assignment.items())
            ],
        }
    )


if __name__ == "__main__":  # pragma: no cover — exercised via subprocess
    raise SystemExit(worker_main())
