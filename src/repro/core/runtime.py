"""The NEPTUNE runtime: deploys stream-processing graphs onto Granules.

This is where the paper's §III-B machinery composes:

- every operator *instance* becomes a Granules computational task;
- processor instances get a watermark-gated inbound channel
  (backpressure, §III-B4) drained in batches per scheduled execution
  (batched scheduling, §III-B2);
- every (sender instance → destination instance) link leg gets an
  application-level :class:`StreamBuffer` (capacity + timer flush,
  §III-B1) feeding a transport, with an optional per-link selective
  compression policy (§III-B5);
- serde uses per-link reusable codecs and pooled packets (object
  reuse, §III-B3);
- threads form two tiers: the Granules worker pool executes operators,
  and the IO tier (flush-timer thread plus, in distributed mode,
  socket reader threads) moves bytes.

Correctness: per-link-leg FIFO order with sequence verification at the
receiver, checksummed frames on the wire, and blocking (never dropping)
under backpressure — packets are processed in order and exactly once.

The worker pool defaults to ``max(cores, hosted instances)`` threads: an
emit blocked on a gated downstream channel parks its worker, and sizing
the pool to the instance count guarantees the consumer that must drain
that channel can always get a worker (pressure chains are acyclic, so
the most-downstream stage always progresses — no deadlock).
"""

from __future__ import annotations

import threading
import time
from typing import Any

from repro.compression import CompressionPolicy
from repro.core.buffering import FlushTimerService, StreamBuffer
from repro.core.config import NeptuneConfig
from repro.core.graph import LinkSpec, OperatorSpec, StreamProcessingGraph
from repro.core.job import JobHandle, JobState
from repro.core.metrics import MetricsRegistry
from repro.core.object_pool import ObjectPool
from repro.core.operators import StreamProcessor
from repro.core.packet import StreamPacket
from repro.core.serde import PacketCodec
from repro.granules.dataset import Dataset
from repro.granules.resource import Resource
from repro.granules.scheduler import DataDrivenStrategy, SchedulingStrategy
from repro.granules.task import ComputationalTask, TaskState
from repro.net.flowcontrol import ChannelClosed, WatermarkChannel
from repro.net.framing import Frame, FrameHeader
from repro.observe import profiler as _profiler
from repro.observe.tracing import (
    LegTrace,
    TraceNote,
    close_hop,
    decode_notes,
    encode_notes,
)
from repro.util.errors import BackpressureTimeout, JobStateError, NeptuneError


class _ChannelDataset(Dataset):
    """Adapts a WatermarkChannel to Granules' dataset interface so
    data-driven scheduling fires when a frame lands."""

    def __init__(self, name: str, channel: WatermarkChannel) -> None:
        super().__init__(name)
        self.channel = channel
        channel.on_data_available(self._notify)

    def has_data(self) -> bool:
        """Whether a read would currently yield data."""
        return len(self.channel) > 0

    def close(self) -> None:
        """Release underlying resources. Idempotent."""
        super().close()
        self.channel.close()


class _SourceStrategy(SchedulingStrategy):
    """Keeps a source scheduled until it declares itself finished."""

    def __init__(self, instance: "_InstanceRuntime") -> None:
        self._instance = instance

    def should_run(self, task: ComputationalTask, now: float) -> bool:
        """Whether the task is due for execution now."""
        return not self._instance.finished and not self._instance.paused

    def next_deadline(self, task: ComputationalTask, now: float) -> float | None:
        # Re-poll via the timer loop so a source is never forgotten
        # (e.g. after a strategy swap, unpause, or failure recovery).
        """Earliest future time the decision could flip to True."""
        return None if self._instance.finished else now


class _OutLinkRuntime:
    """Sender-side state for one outgoing link of one operator instance."""

    __slots__ = (
        "link",
        "scheme",
        "codec",
        "buffers",
        "dest_channels",
        "wire_ids",
        "policy",
    )

    def __init__(self, link: LinkSpec) -> None:
        self.link = link
        self.scheme = link.resolved_partitioning()
        self.codec = PacketCodec(link.schema)
        self.buffers: list[StreamBuffer] = []
        self.dest_channels: list[WatermarkChannel] = []
        self.wire_ids: list[int] = []
        self.policy: CompressionPolicy | None = None


class _ActiveTrace:
    """The traced inbound packet currently being processed, if any.

    Lives on the instance (operators execute serialized, single
    writer).  ``consumed`` flips when a derived emit continues the
    trace to the next hop — the parent hop's ``execute`` span then
    closes at that emit, keeping the stage chain contiguous; only the
    first derived emit inherits the trace so stage sums keep tiling the
    end-to-end latency.
    """

    __slots__ = ("note", "drain_ts", "deser_ts", "consumed")

    def __init__(self, note: TraceNote, drain_ts: float, deser_ts: float) -> None:
        self.note = note
        self.drain_ts = drain_ts
        self.deser_ts = deser_ts
        self.consumed = False


class _InstanceRuntime(ComputationalTask):
    """One operator instance as a Granules computational task."""

    def __init__(
        self,
        job: "_JobRuntime",
        spec: OperatorSpec,
        index: int,
    ) -> None:
        super().__init__(f"{job.graph.name}/{spec.name}[{index}]")
        self.job = job
        self.spec = spec
        self.index = index
        self.op_label = f"{spec.name}[{index}]"
        self._active_trace: _ActiveTrace | None = None
        # Cached per-instance: sampling is fixed for the observer's
        # lifetime, so emit pays one attribute read + branch, not a
        # property call, when tracing is off.
        self._observer = job.observer
        self._tracing = (
            self._observer is not None and self._observer.tracer.sample_every > 0
        )
        self.operator = spec.factory()
        self.operator.name = spec.name
        self.metrics = job.metrics.for_operator(spec.name, index)
        self.finished = not spec.is_source  # processors "finish" via drain
        self.paused = False  # quiesced-checkpoint gate (sources only)
        self.out_links: dict[str, list[_OutLinkRuntime]] = {}
        self.channel: WatermarkChannel | None = None
        self._expected_seq: dict[int, int] = {}
        self._pools: dict[Any, ObjectPool[StreamPacket]] = {}
        self._pool_leases: dict[int, ObjectPool[StreamPacket]] = {}
        self.ctx = _Context(self)
        if not spec.is_source:
            cfg = job.graph.config
            self.channel = WatermarkChannel(
                high_watermark=cfg.inbound_high_watermark,
                low_watermark=cfg.low_watermark(),
            )
            self.attach_dataset(_ChannelDataset("inbound", self.channel))

    # -- lifecycle ---------------------------------------------------------
    def initialize(self) -> None:
        """Prepare for use (framework-managed lifecycle)."""
        self.operator.setup(self.ctx)

    def terminate(self) -> None:
        """Per-instance cleanup hook."""
        self.operator.teardown()

    # -- execution -----------------------------------------------------------
    def execute(self, context: Any = None) -> None:
        """One scheduled execution (ComputationalTask contract)."""
        # Thread-ownership window for the sampling profiler: a dormant
        # profiler costs exactly this one flag test per execution.
        if not _profiler._ACTIVE:
            if self.spec.is_source:
                if not self.finished:
                    self.operator.generate(self.ctx)  # type: ignore[union-attr]
                return
            self._process_available()
            return
        _profiler.set_thread_owner(self.op_label)
        try:
            if self.spec.is_source:
                if not self.finished:
                    self.operator.generate(self.ctx)  # type: ignore[union-attr]
                return
            self._process_available()
        finally:
            _profiler.clear_thread_owner()

    def _process_available(self) -> None:
        assert self.channel is not None
        # One drain = one channel lock acquisition for the whole
        # inbound batch (paper §III-B2: batched scheduling amortizes
        # per-packet synchronization into per-batch synchronization).
        frames = self.channel.drain()
        if not frames:
            # Time/count-triggered execution with no pending data.
            if self.spec.scheduling is not None:
                self.operator.on_schedule(self.ctx)  # type: ignore[union-attr]
                self.metrics.executions += 1
            return
        op: StreamProcessor = self.operator  # type: ignore[assignment]
        obs = self._observer
        ctx = self.ctx
        total_packets = 0
        total_bytes = 0
        latency = self.metrics.latency
        for frame, put_at, in_link in frames:
            self._verify_sequence(frame)
            now = time.monotonic()
            body = frame.body
            total_bytes += len(body)
            if in_link.compression_used:
                body = CompressionPolicy.decode(body)
            codec = in_link.codec
            latency.record(now - put_at)
            note_map: dict[int, TraceNote] | None = None
            drain_ts = now
            if obs is not None and frame.trace:
                try:
                    note_map = {n.batch_index: n for n in decode_notes(frame.trace)}
                except ValueError:
                    note_map = None  # torn trace block: drop diagnostics, keep data
            op.on_batch_start(frame.count, ctx)
            if note_map is None:
                # Hot path: no per-packet branches or counters — the
                # eager count validation in iter_decode guarantees a
                # completed loop processed exactly frame.count packets.
                for packet in codec.iter_decode(body, count=frame.count, reuse=True):
                    op.process(packet, ctx)
                n = frame.count
            else:
                n = 0
                for packet in codec.iter_decode(body, count=frame.count, reuse=True):
                    note = note_map.get(n)
                    if note is not None:
                        self._active_trace = _ActiveTrace(
                            note, drain_ts, time.monotonic()
                        )
                    op.process(packet, ctx)
                    if note is not None:
                        active = self._active_trace
                        self._active_trace = None
                        if active is not None and not active.consumed:
                            # Terminal hop (no derived emit): execute ends here.
                            assert obs is not None
                            obs.collector.add(
                                close_hop(
                                    note,
                                    active.drain_ts,
                                    active.deser_ts,
                                    time.monotonic(),
                                    self.op_label,
                                )
                            )
                    n += 1
            op.on_batch_end(ctx)
            total_packets += n
            # Zero-copy flush protocol: an in-process sender parked its
            # pooled bytearray in the frame; hand it back now that the
            # batch is fully decoded (no-op for wire/compressed bytes).
            recycle = in_link.recycle
            if recycle is not None:
                recycle(frame.body)
        # One telemetry update per scheduled execution, not per packet.
        metrics = self.metrics
        metrics.batches_in += len(frames)
        metrics.bytes_in += total_bytes
        metrics.packets_in += total_packets
        metrics.executions += 1
        if obs is not None:
            obs.event(
                "runtime",
                "batch_executed",
                operator=self.op_label,
                frames=len(frames),
                packets=total_packets,
            )

    def _verify_sequence(self, frame: Frame) -> None:
        expected = self._expected_seq.get(frame.link_id, 0)
        if frame.seq != expected:
            raise NeptuneError(
                f"{self.task_id}: wire link {frame.link_id} frame seq {frame.seq}, "
                f"expected {expected} — ordering violation"
            )
        self._expected_seq[frame.link_id] = frame.seq + 1

    # -- emission ------------------------------------------------------------
    def emit(self, packet: StreamPacket, stream: str | None = None) -> None:
        """Send a packet downstream (blocking under backpressure)."""
        note = self._mint_note(self._observer) if self._tracing else None
        links = self._links_for(stream)
        for out in links:
            n_dest = len(out.buffers)
            targets = out.scheme.route(packet, n_dest)
            if not targets:
                continue
            # Zero-copy: a view over the codec scratch, valid until the
            # next encode on this codec — append() copies it into the
            # stream buffer before we loop around.
            encoded = out.codec.encode_view(packet)
            for dest in targets:
                buf = out.buffers[dest]
                before = time.monotonic()
                if note is not None:
                    # On fan-out only the first leg carries the trace:
                    # a packet's journey stays a single stage chain.
                    buf.append(encoded, note)
                    note = None
                else:
                    buf.append(encoded)
                blocked = time.monotonic() - before
                if blocked > 0.001:
                    self.metrics.emit_block_seconds += blocked
            self.metrics.packets_out += len(targets)
            self.metrics.bytes_out += len(encoded) * len(targets)
        pool = self._pool_leases.pop(id(packet), None)
        if pool is not None:
            pool.release(packet)

    def _mint_note(self, obs: Any) -> TraceNote | None:
        """Trace context for this emit: fresh at sources (sampled),
        inherited at hop+1 when processing a traced packet."""
        now = time.monotonic()
        active = self._active_trace
        if active is not None:
            if active.consumed:
                return None  # only the first derived emit continues the trace
            active.consumed = True
            # The parent hop's execute stage ends exactly where this
            # packet's serialize stage starts — contiguous by design.
            obs.collector.add(
                close_hop(
                    active.note, active.drain_ts, active.deser_ts, now, self.op_label
                )
            )
            return TraceNote(active.note.trace_id, active.note.hop + 1, now)
        if self.spec.is_source:
            ctx = obs.tracer.maybe_sample(self.spec.name)
            if ctx is not None:
                return TraceNote(ctx.trace_id, 0, now)
        return None

    def _links_for(self, stream: str | None) -> list[_OutLinkRuntime]:
        if stream is None:
            if len(self.out_links) == 1:
                return next(iter(self.out_links.values()))
            if not self.out_links:
                raise NeptuneError(
                    f"{self.task_id}: emit with no outgoing links"
                )
            raise NeptuneError(
                f"{self.task_id}: multiple outgoing streams "
                f"{sorted(self.out_links)}; name one explicitly"
            )
        try:
            return self.out_links[stream]
        except KeyError:
            raise NeptuneError(
                f"{self.task_id}: no outgoing stream {stream!r}; "
                f"declared: {sorted(self.out_links)}"
            ) from None

    def new_packet(self, stream: str | None = None) -> StreamPacket:
        """A pooled packet bound to the outgoing stream's schema."""
        links = self._links_for(stream)
        schema = links[0].link.schema
        pool = self._pools.get(schema)
        if pool is None:
            pool = ObjectPool(
                factory=lambda s=schema: StreamPacket(s),
                reset=StreamPacket.reset,
                max_size=256,
            )
            self._pools[schema] = pool
        pkt = pool.acquire()
        self._pool_leases[id(pkt)] = pool
        return pkt

    def finish(self) -> None:
        """Declare this source exhausted (stops its scheduling)."""
        self.finished = True

    def flush_all(self) -> None:
        """Force-flush every outbound buffer."""
        for links in self.out_links.values():
            for out in links:
                for buf in out.buffers:
                    buf.flush()

    @property
    def pending_out_bytes(self) -> int:
        """Unflushed outbound bytes across all link legs."""
        return sum(
            buf.pending_bytes
            for links in self.out_links.values()
            for out in links
            for buf in out.buffers
        )


class _Context:
    """EmitContext implementation handed to user operators."""

    __slots__ = ("_inst",)

    def __init__(self, inst: _InstanceRuntime) -> None:
        self._inst = inst

    @property
    def instance_index(self) -> int:
        """This instance's index in [0, parallelism)."""
        return self._inst.index

    @property
    def parallelism(self) -> int:
        """Total instances of this operator."""
        return self._inst.spec.parallelism

    def emit(self, packet: StreamPacket, stream: str | None = None) -> None:
        """Send a packet downstream (blocking under backpressure)."""
        self._inst.emit(packet, stream)

    def new_packet(self, stream: str | None = None) -> StreamPacket:
        """A pooled packet bound to the outgoing stream's schema."""
        return self._inst.new_packet(stream)

    def finish(self) -> None:
        """Declare this source exhausted (stops its scheduling)."""
        self._inst.finish()


class _InLinkInfo:
    """Receiver-side per-link decode state (codec reuse, §III-B3).

    ``recycle`` closes the zero-copy loop for in-process legs: it is the
    sending :class:`StreamBuffer`'s ``recycle`` bound method (wired after
    buffer construction in ``submit``), called by the receiver once a
    frame's stolen bytearray body is fully decoded.
    """

    __slots__ = ("codec", "compression_used", "recycle")

    def __init__(self, codec: PacketCodec, compression_used: bool) -> None:
        self.codec = codec
        self.compression_used = compression_used
        self.recycle: Any = None


class _JobRuntime:
    """All runtime state for one submitted graph."""

    def __init__(self, graph: StreamProcessingGraph, observer: Any = None) -> None:
        self.graph = graph
        self.observer = observer  # RuntimeObserver | None (duck-typed)
        self.metrics = MetricsRegistry()
        self.instances: dict[str, list[_InstanceRuntime]] = {}
        self.state = JobState.CREATED
        self.failures: dict[str, BaseException] = {}
        self.buffers: list[StreamBuffer] = []

    def all_instances(self) -> list[_InstanceRuntime]:
        """Every operator instance of this job, flattened."""
        return [i for group in self.instances.values() for i in group]


class NeptuneRuntime:
    """Single-process NEPTUNE runtime (one Granules resource).

    Hosts any number of concurrent stream-processing jobs.  Use as a
    context manager::

        with NeptuneRuntime() as rt:
            handle = rt.submit(graph)
            ...
            handle.stop()

    For multi-process deployment see :mod:`repro.core.distributed`.
    """

    def __init__(
        self,
        workers: int | None = None,
        name: str = "neptune",
        observer: Any = None,
    ) -> None:
        self.name = name
        self.observer = observer  # repro.observe.RuntimeObserver | None
        self._explicit_workers = workers
        self._resource: Resource | None = None
        self._flush_service = FlushTimerService()
        self._jobs: list[_JobRuntime] = []
        self._lock = threading.Lock()
        self._started = False

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> None:
        """Start background threads/services. Idempotent."""
        with self._lock:
            if self._started:
                return
            self._started = True
        self._flush_service.start()

    def shutdown(self, timeout: float = 10.0) -> None:
        """Drain every job and stop all runtime threads."""
        with self._lock:
            jobs = list(self._jobs)
        for job in jobs:
            if job.state is JobState.RUNNING:
                self._await_job(job, timeout, force_finish=True)
        self._flush_service.stop()
        if self._resource is not None:
            self._resource.stop(timeout)
            self._resource = None
        with self._lock:
            self._started = False

    def __enter__(self) -> "NeptuneRuntime":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    # -- submission -----------------------------------------------------------
    def submit(self, graph: StreamProcessingGraph, restore_from=None) -> JobHandle:
        """Validate, wire, and launch ``graph``; returns its handle.

        ``restore_from`` accepts a
        :class:`~repro.core.checkpoint.Checkpoint`: each instance whose
        operator implements ``restore_state`` is rehydrated before its
        first execution (fault-recovery path, §VI future work).
        """
        if not self._started:
            self.start()
        graph.validate()
        job = _JobRuntime(graph, observer=self.observer)

        # 1. Instantiate operator instances (restoring state if asked).
        for spec in graph.operators.values():
            job.instances[spec.name] = [
                _InstanceRuntime(job, spec, i) for i in range(spec.parallelism)
            ]
        if restore_from is not None:
            for inst in job.all_instances():
                state = restore_from.state_for(inst.spec.name, inst.index)
                restore = getattr(inst.operator, "restore_state", None)
                if state is not None and restore is not None:
                    restore(state)

        # 2. Wire links: one buffer + transport per (sender instance,
        #    link, destination instance).
        cfg = graph.config
        wire_id = 0
        for link in graph.links:
            senders = job.instances[link.from_op]
            receivers = job.instances[link.to_op]
            compression_on = self._compression_enabled(cfg, link)
            for sender in senders:
                out = _OutLinkRuntime(link)
                if compression_on:
                    out.policy = CompressionPolicy(
                        enabled=True,
                        entropy_threshold=cfg.compression_entropy_threshold,
                        min_size=cfg.compression_min_size,
                    )
                for receiver in receivers:
                    channel = receiver.channel
                    assert channel is not None
                    this_wire = wire_id
                    wire_id += 1
                    in_info = _InLinkInfo(PacketCodec(link.schema), compression_on)
                    leg = LegTrace() if self.observer is not None else None
                    sink = self._make_sink(
                        this_wire, channel, out.policy, in_info, cfg.emit_timeout, leg
                    )
                    buf = StreamBuffer(
                        capacity=cfg.buffer_capacity,
                        sink=sink,
                        max_delay=cfg.buffer_max_delay,
                        name=f"{link.from_op}[{sender.index}]->"
                        f"{link.to_op}[{receiver.index}]/{link.stream}",
                        trace_leg=leg,
                        observer=self.observer,
                    )
                    # Close the zero-copy loop: the receiver (or the
                    # compressing sink) returns flush bytearrays here.
                    in_info.recycle = buf.recycle
                    out.buffers.append(buf)
                    out.dest_channels.append(channel)
                    out.wire_ids.append(this_wire)
                    job.buffers.append(buf)
                    self._flush_service.register(buf)
                sender.out_links.setdefault(link.stream, []).append(out)

        # Backpressure visibility: watermark gate transitions land on
        # the observer's event timeline, carrying the upstream operators
        # the closed gate throttles so `repro doctor` can reconstruct
        # the cascade (which stalled buffer throttled which senders).
        if self.observer is not None:
            upstream: dict[str, list[str]] = {}
            for link in graph.links:
                ops = upstream.setdefault(link.to_op, [])
                if link.from_op not in ops:
                    ops.append(link.from_op)
            for inst in job.all_instances():
                if inst.channel is not None:
                    inst.channel.on_gate_change(
                        self._make_gate_callback(
                            self.observer,
                            inst.op_label,
                            inst.channel,
                            tuple(upstream.get(inst.spec.name, ())),
                        )
                    )

        # 3. Launch on the (lazily sized) Granules resource.
        self._ensure_resource(job)
        resource = self._resource
        assert resource is not None
        for inst in job.all_instances():
            strategy: SchedulingStrategy
            if inst.spec.is_source:
                strategy = _SourceStrategy(inst)
            elif inst.spec.scheduling is not None:
                strategy = inst.spec.scheduling()
            else:
                strategy = DataDrivenStrategy()
            resource.launch(inst, strategy)
        job.state = JobState.RUNNING
        with self._lock:
            self._jobs.append(job)
        return JobHandle(self, job)

    @staticmethod
    def _compression_enabled(cfg: NeptuneConfig, link: LinkSpec) -> bool:
        if link.compression is None:
            return cfg.compression_enabled
        if isinstance(link.compression, bool):
            return link.compression
        return True  # dict spec → enabled with overrides (future use)

    @staticmethod
    def _make_gate_callback(
        obs: Any,
        operator: str,
        channel: WatermarkChannel | None = None,
        throttles: tuple[str, ...] = (),
    ):
        """Timeline hook for one inbound channel's watermark gate.

        ``gate_closed`` names the operator whose buffer filled and the
        upstream operators its gate throttles; ``gate_opened`` adds the
        closed episode's duration.  Invoked by the channel *outside*
        its lock (see ``WatermarkChannel._set_gate``).
        """

        def on_gate(gated: bool) -> None:
            attrs: dict[str, object] = {"operator": operator}
            if throttles:
                attrs["throttles"] = list(throttles)
            if channel is not None:
                attrs["buffered_bytes"] = channel.buffered_bytes
                if not gated:
                    attrs["gated_seconds"] = channel.last_gate_seconds
            obs.event(
                "flowcontrol",
                "gate_closed" if gated else "gate_opened",
                **attrs,
            )

        return on_gate

    @staticmethod
    def _make_sink(wire_id, channel, policy, in_info, emit_timeout, leg=None):
        """Build the buffer-flush sink for one link leg.

        The flushed body is (optionally) compressed, framed with a
        per-leg sequence number (receiver-verified ordering), and put
        into the destination channel together with the metadata the
        receiver needs: the put timestamp (latency) and the decode
        info.  The channel item is ``(frame, put_time, in_link_info)``.
        The put blocks under backpressure; with a configured
        ``emit_timeout`` a saturated downstream eventually surfaces
        :class:`BackpressureTimeout` instead of waiting forever.

        Zero-copy protocol: the buffer hands this sink its pooled
        accumulation bytearray.  Uncompressed, the bytearray itself is
        parked in the frame and the *receiver* recycles it after
        decoding (``_InLinkInfo.recycle``).  Compressed, the frame holds
        fresh policy-encoded bytes, so the sink recycles the original
        immediately.
        """
        seq_counter = [0]

        def sink(body: bytes | bytearray | memoryview, count: int) -> None:
            """Deliver one flushed batch into the destination channel."""
            raw = None
            if policy is not None:
                raw = body
                body = policy.encode(body)
            trace = b""
            if leg is not None and leg.pending:
                # The buffer deposited stamped notes for this batch
                # under its flush lock, which we also run under.
                notes = leg.claim()
                send_ts = time.monotonic()
                for note in notes:
                    note.send_ts = send_ts
                trace = encode_notes(notes)
            seq = seq_counter[0]
            seq_counter[0] = seq + 1
            frame = Frame(FrameHeader(wire_id, seq, count, len(body), 0), body, trace)
            try:
                ok = channel.put(
                    len(body), (frame, time.monotonic(), in_info), timeout=emit_timeout
                )
            except ChannelClosed:
                raise NeptuneError(
                    f"wire link {wire_id}: destination channel closed during send"
                ) from None
            if not ok:
                raise BackpressureTimeout(
                    f"wire link {wire_id}: downstream gated longer than "
                    f"emit_timeout={emit_timeout}s"
                )
            if raw is not None and in_info.recycle is not None:
                # The frame carries the compressed copy; the original
                # flush bytearray is done — back to the buffer pool.
                in_info.recycle(raw)

        return sink

    def _ensure_resource(self, job: _JobRuntime) -> None:
        """(Re)size the worker pool to cover all hosted instances."""
        hosted = sum(len(g) for j in self._jobs for g in j.instances.values())
        hosted += len(job.all_instances())
        cfg = job.graph.config
        if self._explicit_workers is not None:
            workers = max(self._explicit_workers, hosted)
        else:
            workers = cfg.effective_workers(hosted)
        if self._resource is None:
            self._resource = Resource(self.name, workers=workers)
            self._resource.start()
        elif self._resource.workers < workers:
            self._grow_resource(workers)

    def _grow_resource(self, workers: int) -> None:
        """Add worker threads to the live pool (submissions while running)."""
        res = self._resource
        assert res is not None
        res.resize(workers)

    # -- live reconfiguration ----------------------------------------------
    def reconfigure(self, changes: dict) -> dict:
        """Apply a live reconfiguration (the policy engine's act path).

        ``changes`` is a JSON-able dict with any of:

        - ``retune``: ``{"operator": name, "max_delay": s, "capacity":
          bytes, "where": "into"|"from"}`` — retune every
          :class:`StreamBuffer` on the legs into (default) or out of
          the named operator, across all hosted jobs.  A shrinking
          deadline pokes the flush-timer service automatically.
        - ``scale``: ``{"workers": n}`` or ``{"workers_delta": d}`` —
          resize the Granules worker-thread pool to ``n`` (or by ``d``
          relative to the current size, floored at 1 thread; up or
          down, running tasks finish first).

        Returns a JSON-able report of what was actually applied.
        """
        from repro.core.buffering import retune_matching

        report: dict = {"applied": []}
        retune = changes.get("retune")
        if retune:
            with self._lock:
                jobs = list(self._jobs)
            buffers = [buf for job in jobs for buf in job.buffers]
            md = retune.get("max_delay")
            cap = retune.get("capacity")
            applied = retune_matching(
                buffers,
                str(retune.get("operator", "")),
                where=str(retune.get("where", "into")),
                max_delay=None if md is None else float(md),
                capacity=None if cap is None else int(cap),
            )
            for entry in applied:
                report["applied"].append({"kind": "retune", **entry})
        scale = changes.get("scale")
        if scale and self._resource is not None:
            old = self._resource.workers
            delta = scale.get("workers_delta")
            target = old + int(delta) if delta is not None else int(scale.get("workers", old))
            new = self._resource.resize(max(1, target))
            report["applied"].append({"kind": "scale", "from": old, "to": new})
        return report

    # -- link failures ------------------------------------------------------
    def notify_link_failure(self, exc: BaseException, link: str = "link") -> None:
        """Record a terminal transport failure against every running job.

        Wire this as a :class:`~repro.net.transport.TcpTransport`
        ``on_link_failure`` callback (or a
        :meth:`DistributedWorker.on_link_failure` subscriber): an
        exhausted reconnect budget then surfaces through
        ``JobHandle.failures`` exactly like an operator crash, which is
        what checkpoint-based supervisors such as
        :class:`~repro.chaos.recovery.RecoveryCoordinator` key on.
        """
        with self._lock:
            jobs = list(self._jobs)
        for job in jobs:
            if job.state is JobState.RUNNING:
                job.failures.setdefault(link, exc)

    # -- checkpointing -----------------------------------------------------
    def _checkpoint_job(self, job: _JobRuntime, quiesce: bool, timeout: float):
        """Snapshot operator state (see repro.core.checkpoint).

        With ``quiesce=True`` (the consistent mode) sources are paused
        and the pipeline drained before the snapshot, so the cut
        contains no in-flight packets: restored state + source replay
        positions cover the stream exactly once.  ``quiesce=False``
        snapshots live (cheap, per-instance-consistent but fuzzy
        across instances — fine for monitoring).
        """
        from repro.core.checkpoint import take_checkpoint

        if not quiesce or job.state is not JobState.RUNNING:
            return take_checkpoint(job)
        sources = [i for i in job.all_instances() if i.spec.is_source]
        for inst in sources:
            inst.paused = True
        try:
            deadline = time.monotonic() + timeout
            while time.monotonic() < deadline:
                for inst in job.all_instances():
                    inst.flush_all()
                if self._job_quiet_except_sources(job):
                    break
                time.sleep(0.002)
            else:
                raise JobStateError(
                    f"checkpoint quiesce did not complete within {timeout}s"
                )
            return take_checkpoint(job)
        finally:
            for inst in sources:
                inst.paused = False

    def _job_quiet_except_sources(self, job: _JobRuntime) -> bool:
        for inst in job.all_instances():
            if inst.spec.is_source:
                if inst.state is TaskState.RUNNING:
                    return False
                if inst.pending_out_bytes > 0:
                    return False
                continue
            if inst.state is TaskState.RUNNING:
                return False
            if inst.channel is not None and len(inst.channel) > 0:
                return False
            if inst.pending_out_bytes > 0:
                return False
        return True

    # -- drain / stop -------------------------------------------------------
    def _await_job(self, job: _JobRuntime, timeout: float, force_finish: bool) -> bool:
        if job.state in (JobState.STOPPED, JobState.FAILED):
            return True
        if job.state is JobState.CREATED:
            raise JobStateError("job was never started")
        job.state = JobState.DRAINING
        if force_finish:
            for inst in job.all_instances():
                inst.finished = True
        # Drain overrides custom scheduling (periodic/count-based):
        # a count threshold must not strand the final sub-threshold
        # frames in a channel forever.
        res = self._resource
        if res is not None:
            for inst in job.all_instances():
                if not inst.spec.is_source and inst.spec.scheduling is not None:
                    try:
                        res.set_strategy(inst.task_id, DataDrivenStrategy())
                    except KeyError:
                        pass  # already terminated
        deadline = time.monotonic() + timeout
        quiesced = False
        while time.monotonic() < deadline:
            self._collect_failures(job)
            if job.failures:
                break
            if not all(inst.finished for inst in job.all_instances() if inst.spec.is_source):
                time.sleep(0.005)
                continue
            for inst in job.all_instances():
                inst.flush_all()
            if self._job_quiet(job):
                # Double-check after a settle delay: a worker may have
                # been between drain and process.
                time.sleep(0.01)
                for inst in job.all_instances():
                    inst.flush_all()
                if self._job_quiet(job):
                    quiesced = True
                    break
            time.sleep(0.002)
        self._teardown_job(job)
        self._collect_failures(job)
        job.state = JobState.FAILED if job.failures else JobState.STOPPED
        return quiesced

    def _job_quiet(self, job: _JobRuntime) -> bool:
        for inst in job.all_instances():
            if inst.state is TaskState.RUNNING:
                return False
            if inst.channel is not None and len(inst.channel) > 0:
                return False
            if inst.pending_out_bytes > 0:
                return False
        return True

    def _collect_failures(self, job: _JobRuntime) -> None:
        res = self._resource
        if res is None:
            return
        for inst in job.all_instances():
            if inst.failure is not None:
                key = f"{inst.spec.name}[{inst.index}]"
                job.failures.setdefault(key, inst.failure)

    def _teardown_job(self, job: _JobRuntime) -> None:
        res = self._resource
        for inst in job.all_instances():
            if res is not None:
                res.terminate_task(inst.task_id)
        for buf in job.buffers:
            self._flush_service.unregister(buf)
        with self._lock:
            if job in self._jobs:
                self._jobs.remove(job)
