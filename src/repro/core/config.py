"""Runtime configuration (paper §IV-A defaults).

"For NEPTUNE, we have used the default configurations where the buffer
size is set to 1 MB.  Thread pool sizes are determined automatically
depending on the number of cores in the machine it is running on."
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field


@dataclass
class NeptuneConfig:
    """Knobs for one NEPTUNE runtime / stream-processing job.

    Attributes
    ----------
    buffer_capacity:
        Application-level buffer size in bytes (paper default 1 MB).
    buffer_max_delay:
        Timer bound: a buffer flushes at most this long after its first
        pending packet arrived (soft upper bound on queuing latency).
    inbound_high_watermark / inbound_low_watermark:
        Byte watermarks on each operator instance's inbound channel;
        the backpressure gate (§III-B4).  The low mark defaults to half
        the high mark — "set sufficiently apart ... to avoid the system
        oscillating between the two states rapidly."
    worker_threads:
        Worker-pool size; None = automatic (cores, floored at the
        number of hosted operator instances so a backpressure-blocked
        emit can never starve the consumer it is waiting on — the
        single-process analogue of the paper's multi-machine setup).
    compression_enabled / compression_entropy_threshold:
        Per-job defaults for the selective compression policy; each
        stream may override (§III-B5).
    batch_max_packets:
        Cap on packets handed to an operator in one scheduled
        execution (bounds per-quantum latency under heavy batching).
    emit_timeout:
        How long a blocked emit waits before raising
        :class:`~repro.util.errors.BackpressureTimeout`.  None = wait
        forever (the paper's semantics: never drop).
    transport_recovery:
        Whether cross-resource TCP links run the recovery protocol
        (ack-pruned replay window, reconnect with backoff, receiver
        duplicate suppression).  Off = legacy fail-fast links.
    transport_max_retries / transport_backoff_base /
    transport_backoff_max / transport_backoff_jitter:
        Reconnect schedule: up to ``max_retries`` attempts, attempt
        ``n`` backing off ``min(max, base * 2**n)`` seconds with a
        ``±jitter`` random factor (seeded — see ``fault_seed``).
    transport_send_timeout:
        Bound on how long one send may block on a full replay window
        (i.e. on a receiver that stopped acknowledging).
    transport_replay_window:
        Replay-buffer capacity in bytes per TCP peer; unacknowledged
        frames beyond it block the sender (never evicted — eviction
        would forfeit the zero-loss guarantee).
    fault_seed:
        Seed for transport jitter and chaos scenarios; pinning it makes
        a failure run reproducible.
    latency_budget:
        Optional end-to-end queuing-latency budget in seconds for one
        packet traversing the deepest source→sink path.  Purely a
        declared intent: the static analyzer checks that the flush
        timer (``buffer_max_delay``) can honour it across every hop
        (``repro analyze`` code NEPG119).  None = no declared bound.
    """

    buffer_capacity: int = 1 << 20
    buffer_max_delay: float = 0.010
    inbound_high_watermark: int = 4 << 20
    inbound_low_watermark: int | None = None
    worker_threads: int | None = None
    compression_enabled: bool = False
    compression_entropy_threshold: float = 6.0
    compression_min_size: int = 64
    batch_max_packets: int = 8192
    emit_timeout: float | None = None
    transport_recovery: bool = True
    transport_max_retries: int = 6
    transport_backoff_base: float = 0.05
    transport_backoff_max: float = 2.0
    transport_backoff_jitter: float = 0.25
    transport_send_timeout: float | None = 10.0
    transport_replay_window: int = 8 << 20
    fault_seed: int = 0
    latency_budget: float | None = None
    extra: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.buffer_capacity <= 0:
            raise ValueError(f"buffer_capacity must be positive: {self.buffer_capacity}")
        if self.buffer_max_delay <= 0:
            raise ValueError(f"buffer_max_delay must be positive: {self.buffer_max_delay}")
        if self.inbound_high_watermark <= 0:
            raise ValueError(
                f"inbound_high_watermark must be positive: {self.inbound_high_watermark}"
            )
        low = self.inbound_low_watermark
        if low is not None and not 0 <= low < self.inbound_high_watermark:
            raise ValueError(
                f"inbound_low_watermark must be in [0, high): {low}"
            )
        if self.worker_threads is not None and self.worker_threads <= 0:
            raise ValueError(f"worker_threads must be positive: {self.worker_threads}")
        if self.batch_max_packets <= 0:
            raise ValueError(f"batch_max_packets must be positive: {self.batch_max_packets}")
        if self.transport_max_retries < 0:
            raise ValueError(
                f"transport_max_retries must be >= 0: {self.transport_max_retries}"
            )
        if self.transport_replay_window <= 0:
            raise ValueError(
                f"transport_replay_window must be positive: {self.transport_replay_window}"
            )
        if self.latency_budget is not None and self.latency_budget <= 0:
            raise ValueError(
                f"latency_budget must be positive when set: {self.latency_budget}"
            )

    def effective_workers(self, hosted_instances: int) -> int:
        """Resolve the worker-pool size for a runtime hosting
        ``hosted_instances`` operator instances."""
        if self.worker_threads is not None:
            return max(self.worker_threads, hosted_instances)
        return max(os.cpu_count() or 1, hosted_instances, 1)

    def low_watermark(self) -> int:
        """Resolve the effective inbound low watermark."""
        if self.inbound_low_watermark is not None:
            return self.inbound_low_watermark
        return self.inbound_high_watermark // 2

    def retry_policy(self):
        """The transport :class:`~repro.net.transport.RetryPolicy` these
        knobs describe, or None when recovery is disabled."""
        if not self.transport_recovery:
            return None
        from repro.net.transport import RetryPolicy

        return RetryPolicy(
            max_retries=self.transport_max_retries,
            backoff_base=self.transport_backoff_base,
            backoff_max=self.transport_backoff_max,
            backoff_jitter=self.transport_backoff_jitter,
            send_timeout=self.transport_send_timeout,
            replay_window_bytes=self.transport_replay_window,
            seed=self.fault_seed,
        )
