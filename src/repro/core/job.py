"""Job lifecycle (paper §III: "The framework initializes individual
stages, establishes communication between stages and manages the
lifecycle of a stream processing job").

A :class:`JobHandle` is returned by
:meth:`~repro.core.runtime.NeptuneRuntime.submit`; it exposes state,
metrics, graceful stop (drain — never drop), and failure reporting.
"""

from __future__ import annotations

import enum


class JobState(enum.Enum):
    """Job lifecycle states."""
    CREATED = "created"
    RUNNING = "running"
    DRAINING = "draining"
    STOPPED = "stopped"
    FAILED = "failed"


class JobHandle:
    """Control surface for one submitted stream-processing job.

    The heavy lifting lives in the runtime; the handle delegates so
    user code never touches runtime internals.
    """

    def __init__(self, runtime, job) -> None:
        self._runtime = runtime
        self._job = job

    @property
    def name(self) -> str:
        """The job/graph name."""
        return self._job.graph.name

    @property
    def state(self) -> JobState:
        """Current lifecycle state."""
        return self._job.state

    @property
    def failures(self) -> dict[str, BaseException]:
        """Operator-instance failures keyed by ``operator[index]``.

        Collected live, so a monitoring loop can observe a failure
        before calling :meth:`stop`.
        """
        self._runtime._collect_failures(self._job)
        return dict(self._job.failures)

    def metrics(self) -> dict[str, dict]:
        """Aggregated per-operator counters (see MetricsRegistry)."""
        return self._job.metrics.snapshot()

    def checkpoint(self, quiesce: bool = True, timeout: float = 30.0):
        """Snapshot all opted-in operator state (§VI future work).

        ``quiesce=True`` pauses sources and drains in-flight packets
        first, yielding a globally consistent cut (exactly-once on
        recovery when sources checkpoint replay positions); sources
        resume afterwards.  ``quiesce=False`` snapshots live — cheap
        but fuzzy across instances.

        Returns a :class:`~repro.core.checkpoint.Checkpoint`; resubmit
        with ``runtime.submit(graph, restore_from=ckpt)`` to recover.
        """
        return self._runtime._checkpoint_job(self._job, quiesce, timeout)

    def await_completion(self, timeout: float = 30.0) -> bool:
        """Block until every source finished naturally and the graph
        drained.  Returns False on timeout."""
        return self._runtime._await_job(self._job, timeout, force_finish=False)

    def stop(self, timeout: float = 30.0) -> bool:
        """Stop sources now, drain in-flight packets, tear down.

        Packets already ingested are processed (never dropped); returns
        False if the drain did not quiesce within ``timeout``.
        """
        return self._runtime._await_job(self._job, timeout, force_finish=True)
