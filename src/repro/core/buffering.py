"""Application-level buffering (paper §III-B1).

"Instead of sending individual stream packets, NEPTUNE implements
application level buffering at the stream dataset layer to increase
throughput.  The size of these buffers are defined in terms of their
capacity as opposed to the number of messages being buffered. ...
each buffer in NEPTUNE is equipped with a timer that guarantees flushing
of the buffer after a certain time period since arrival of the first
message."

One :class:`StreamBuffer` exists per (operator instance → destination
instance) link leg.  ``append`` accumulates serialized packets; the
buffer flushes

- immediately when accumulated bytes reach ``capacity`` (flush happens
  on the appending worker thread — the batch is already in cache), or
- from the runtime's :class:`FlushTimerService` (the IO tier) when
  ``max_delay`` elapses after the *first* append since the last flush,
  bounding end-to-end latency for slow streams.

Zero-copy flush protocol: a take hands the sink the accumulation
``bytearray`` itself and swaps in a pooled spare under ``_lock`` — the
batch is never copied on the flush path.  The sink receives
``(body, packet_count)`` where ``body`` is ``bytes | bytearray |
memoryview``; it may retain the bytearray past the call (e.g. park it
in an inbound channel) and, once fully consumed, SHOULD hand it back
via :meth:`StreamBuffer.recycle` so steady state runs on two pooled
buffers with no per-flush allocation.  A consumer that never recycles
just costs one fresh bytearray per flush — still no copy.  The sink is
expected to block under backpressure — never to drop.
"""

from __future__ import annotations

import threading
from typing import Any, Callable

from repro.util.clock import Clock, SYSTEM_CLOCK

FlushSink = Callable[["bytes | bytearray | memoryview", int], Any]

#: Spare bytearrays a buffer keeps for the double-buffer swap.  Two
#: covers the steady state (one accumulating, one in flight); a third
#: take while both are out just allocates fresh.
_SPARE_LIMIT = 2


class StreamBuffer:
    """Capacity-triggered, timer-bounded accumulation buffer.

    Observability hooks (both optional, both duck-typed so this module
    never imports :mod:`repro.observe`):

    - ``trace_leg`` — a :class:`~repro.observe.tracing.LegTrace`
      shared with this buffer's flush sink.  ``append(payload, note)``
      stamps the note's ``append_ts``/``batch_index``; the take stamps
      ``take_ts`` and deposits the note on the leg, from which the sink
      claims it (all under ``_flush_lock``, so no extra locking).
    - ``observer`` — a :class:`~repro.observe.observer.RuntimeObserver`
      whose timeline receives ``buffer.timer_flush`` events.
    """

    def __init__(
        self,
        capacity: int,
        sink: FlushSink,
        max_delay: float = 0.010,
        clock: Clock = SYSTEM_CLOCK,
        name: str = "",
        trace_leg: Any = None,
        observer: Any = None,
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive: {capacity}")
        if max_delay <= 0:
            raise ValueError(f"max_delay must be positive: {max_delay}")
        self.capacity = capacity
        self.max_delay = max_delay
        self.name = name
        self._sink = sink
        self._clock = clock
        self._trace_leg = trace_leg
        self._observer = observer
        self._notes: list[Any] = []
        self._buf = bytearray()
        self._spares: list[bytearray] = []
        self._count = 0
        self._first_append_at: float | None = None
        self._lock = threading.Lock()
        # Back-reference set by FlushTimerService.register so a live
        # retune that shrinks max_delay can wake the scan thread.
        self._service: "FlushTimerService | None" = None
        # Serializes (take, sink) pairs across the worker thread
        # (capacity flush) and the timer thread, so batches reach the
        # transport in take-order — required for per-link in-order
        # delivery.  Always acquired before self._lock.
        self._flush_lock = threading.Lock()
        # Flush statistics (capacity vs timer) feed the Fig-2 analysis.
        self.capacity_flushes = 0
        self.timer_flushes = 0
        self.manual_flushes = 0
        self.bytes_flushed = 0
        self.packets_flushed = 0
        # Double-buffer pool statistics (observe bridge scrapes these).
        self.buffers_recycled = 0
        self.spare_allocs = 0
        # Live-reconfiguration count (policy engine retunes).
        self.retunes = 0

    def append(
        self, payload: bytes | bytearray | memoryview, note: Any = None
    ) -> bool:
        """Add one serialized packet; returns True if this append flushed.

        A ``note`` (observe trace note for a sampled packet) is stamped
        with its position and enqueue time and will ride the flushed
        batch to the sink via ``trace_leg``.
        """
        with self._lock:
            if not self._buf:
                self._first_append_at = self._clock.now()
            if note is not None:
                note.batch_index = self._count
                note.append_ts = self._clock.now()
                self._notes.append(note)
            self._buf += payload
            self._count += 1
            due = len(self._buf) >= self.capacity
        if not due:
            return False
        with self._flush_lock:
            with self._lock:
                # Re-check: the timer thread may have flushed meanwhile.
                if len(self._buf) < self.capacity:
                    return False
                body, count = self._take_locked()
                self.capacity_flushes += 1
            if body is not None:
                self._sink(body, count)
        return True

    def flush(self) -> bool:
        """Force a flush of any pending data (graph drain / shutdown)."""
        with self._flush_lock:
            with self._lock:
                body, count = self._take_locked()
                if body is not None:
                    self.manual_flushes += 1
            if body is not None:
                self._sink(body, count)
                return True
        return False

    def flush_if_due(self, now: float | None = None) -> bool:
        """Timer-service entry: flush when the first pending packet has
        waited ``max_delay``.  Returns whether a flush happened."""
        if now is None:
            now = self._clock.now()
        size = 0
        with self._flush_lock:
            with self._lock:
                if (
                    self._first_append_at is None
                    or now - self._first_append_at < self.max_delay
                ):
                    return False
                body, count = self._take_locked()
                self.timer_flushes += 1
            if body is not None:
                # Capture the size before the sink runs: a sink that
                # consumes and recycles the bytearray leaves it empty.
                size = len(body)
                self._sink(body, count)
        if body is not None and self._observer is not None:
            self._observer.event(
                "buffer", "timer_flush", buffer=self.name, bytes=size, count=count
            )
        return body is not None

    def retune(
        self, *, max_delay: float | None = None, capacity: int | None = None
    ) -> dict[str, tuple[float, float] | tuple[int, int]]:
        """Live-adjust the flush bounds (policy reconfigure path).

        Either bound may be changed while the buffer is in service; the
        new values apply to data already accumulated.  A ``max_delay``
        that *shrinks* pokes the owning :class:`FlushTimerService` so
        the tighter deadline is honored immediately rather than after
        the sleep computed against the old bound.  A smaller
        ``capacity`` takes effect on the next append (the capacity
        check runs on the appending thread).

        Returns a dict of applied changes, ``field -> (old, new)``;
        empty when every requested value matched the current one.
        """
        changed: dict[str, tuple[float, float] | tuple[int, int]] = {}
        shrunk = False
        with self._lock:
            if max_delay is not None:
                if max_delay <= 0:
                    raise ValueError(f"max_delay must be positive: {max_delay}")
                if float(max_delay) != self.max_delay:
                    changed["max_delay"] = (self.max_delay, float(max_delay))
                    shrunk = float(max_delay) < self.max_delay
                    self.max_delay = float(max_delay)
            if capacity is not None:
                if capacity <= 0:
                    raise ValueError(f"capacity must be positive: {capacity}")
                if int(capacity) != self.capacity:
                    changed["capacity"] = (self.capacity, int(capacity))
                    self.capacity = int(capacity)
        if changed:
            self.retunes += 1
        if shrunk and self._service is not None:
            self._service.poke()
        return changed

    def next_deadline(self) -> float | None:
        """When the timer service must revisit this buffer (None = idle)."""
        with self._lock:
            if self._first_append_at is None:
                return None
            return self._first_append_at + self.max_delay

    def _take_locked(self) -> tuple[bytearray | None, int]:
        if not self._buf:
            return None, 0
        # Double-buffer swap: hand the accumulation buffer itself to
        # the caller (NO copy) and continue accumulating into a pooled
        # spare.  The sink's consumer returns the bytearray through
        # recycle() when done with it.
        body = self._buf
        if self._spares:
            self._buf = self._spares.pop()
        else:
            self._buf = bytearray()
            self.spare_allocs += 1
        count = self._count
        self._count = 0
        self._first_append_at = None
        self.bytes_flushed += len(body)
        self.packets_flushed += count
        if self._notes:
            if self._trace_leg is not None:
                take_ts = self._clock.now()
                for note in self._notes:
                    note.take_ts = take_ts
                self._trace_leg.pending.extend(self._notes)
            self._notes.clear()
        return body, count

    def recycle(self, body: bytes | bytearray | memoryview) -> None:
        """Return a fully consumed flush body to the spare pool.

        Safe to call from any thread with anything a sink received:
        non-bytearray bodies (or a bytearray with live memoryview
        exports) are simply dropped.  Never call while the body is
        still referenced by a pending frame — the storage is reused by
        the very next take.
        """
        if type(body) is not bytearray:
            return
        try:
            body.clear()
        except BufferError:
            return  # a memoryview export is still alive; let GC take it
        with self._lock:
            if len(self._spares) < _SPARE_LIMIT:
                self._spares.append(body)
                self.buffers_recycled += 1

    @property
    def pending_bytes(self) -> int:
        """Bytes accumulated and not yet flushed."""
        with self._lock:
            return len(self._buf)

    @property
    def pending_count(self) -> int:
        """Packets accumulated and not yet flushed."""
        with self._lock:
            return self._count


def retune_matching(
    buffers: "list[StreamBuffer]",
    operator: str,
    *,
    where: str = "into",
    max_delay: float | None = None,
    capacity: int | None = None,
) -> list[dict[str, Any]]:
    """Retune every buffer on the legs into/out of ``operator``.

    Buffer names follow ``[w{id}:]{from}[{s}]->{to}[{r}]/{stream}``;
    ``where="into"`` matches legs whose *destination* is ``operator``
    (the usual healing direction: the batches a struggling operator
    receives), ``where="from"`` matches legs it sends on.  Returns one
    entry per buffer actually changed — the policy engine's applied
    report.
    """
    if where not in ("into", "from"):
        raise ValueError(f"where must be 'into' or 'from': {where!r}")
    out: list[dict[str, Any]] = []
    for buf in buffers:
        name = buf.name
        if where == "into":
            matched = f"->{operator}[" in name
        else:
            head = name.split("->", 1)[0]
            matched = head.split(":", 1)[-1].startswith(f"{operator}[")
        if not matched:
            continue
        applied = buf.retune(max_delay=max_delay, capacity=capacity)
        if applied:
            entry: dict[str, Any] = {"buffer": name}
            entry.update({k: list(v) for k, v in applied.items()})
            out.append(entry)
    return out


class FlushTimerService:
    """IO-tier thread guaranteeing buffer latency bounds.

    Scans registered buffers and fires :meth:`StreamBuffer.flush_if_due`.
    One service per runtime; buffers register on link creation.  The
    scan interval self-tunes to the nearest deadline, capped so newly
    registered buffers are noticed promptly.

    The clock is re-read for every buffer in a scan (and again before
    computing the sleep): ``flush_if_due`` calls a blocking sink, so
    under backpressure one slow sink would otherwise make a
    scan-global timestamp stale for every later buffer — silently
    exceeding their ``max_delay`` bound and mis-sizing the next sleep.

    The sleep is interruptible: the delay is computed from the nearest
    deadline *at scan time*, so a deadline that shrinks mid-sleep (a
    live :meth:`StreamBuffer.retune`, or a config reload) would
    otherwise be missed by up to the stale sleep.  :meth:`poke` wakes
    the scan thread immediately; ``register`` and ``retune`` call it.
    """

    def __init__(self, clock: Clock = SYSTEM_CLOCK, max_poll: float = 0.002) -> None:
        self._clock = clock
        self._max_poll = max_poll
        self._buffers: list[StreamBuffer] = []
        self._lock = threading.Lock()
        self._running = False
        self._thread: threading.Thread | None = None
        self._wake = threading.Event()
        # Observability: how often the sleep was cut short by a poke.
        self.pokes = 0

    def register(self, buffer: StreamBuffer) -> None:
        """Track a buffer for timer-driven flushes."""
        with self._lock:
            self._buffers.append(buffer)
            buffer._service = self
        self.poke()

    def unregister(self, buffer: StreamBuffer) -> None:
        """Stop tracking a buffer (no-op when unknown)."""
        with self._lock:
            try:
                self._buffers.remove(buffer)
            except ValueError:
                pass
            if buffer._service is self:
                buffer._service = None

    def poke(self) -> None:
        """Interrupt the current sleep so the next scan runs now.

        Called when a deadline may have moved *earlier* than the sleep
        in progress assumed — buffer registration and live retunes that
        shrink ``max_delay``.  Cheap and thread-safe; spurious pokes
        only cost one extra scan.
        """
        self.pokes += 1
        self._wake.set()

    def start(self) -> None:
        """Start background threads/services. Idempotent."""
        with self._lock:
            if self._running:
                return
            self._running = True
        self._thread = threading.Thread(
            target=self._loop, name="neptune-flush-timer", daemon=True
        )
        self._thread.start()

    def stop(self, timeout: float = 5.0) -> None:
        """Stop and release resources. Idempotent."""
        with self._lock:
            self._running = False
        self._wake.set()  # cut any in-progress sleep short
        if self._thread is not None:
            self._thread.join(timeout)
            self._thread = None

    def scan_once(self) -> float:
        """One pass over all registered buffers; returns the sleep delay.

        Each buffer is judged against a *fresh* clock reading, so a
        buffer becoming due while an earlier buffer's sink blocks is
        still flushed within this scan.  Exposed for deterministic
        tests with a manual clock.
        """
        with self._lock:
            buffers = list(self._buffers)
        next_deadline: float | None = None
        for buf in buffers:
            dl = buf.next_deadline()
            if dl is None:
                continue
            now = self._clock.now()
            if dl <= now:
                buf.flush_if_due(now)
            elif next_deadline is None or dl < next_deadline:
                next_deadline = dl
        if next_deadline is None:
            return self._max_poll
        # Re-read the clock: the flush_if_due calls above may have
        # blocked for a long time, and sleeping against a stale "now"
        # would overshoot the remaining deadlines.
        remaining = next_deadline - self._clock.now()
        return min(max(remaining, 0.0002), self._max_poll)

    def _loop(self) -> None:
        # Real-time paced (see Resource._timer_loop), but the wait is an
        # Event so poke() can cut a sleep short when a deadline shrinks.
        while True:
            with self._lock:
                if not self._running:
                    return
            delay = self.scan_once()
            if self._wake.wait(delay):
                # Clear under the lock: a poke landing between wait()
                # and clear() is swallowed, but the scan_once() that
                # follows re-reads every deadline, so no wake is lost.
                with self._lock:
                    self._wake.clear()
