"""Operator state checkpointing (the paper's §VI future work).

"Future work will target developing algorithms for fault tolerant
processing while reducing overheads that often accompany such schemes."

This module implements the low-overhead half of that plan: per-instance
state snapshots taken *between* scheduled executions.  Because a
NEPTUNE operator instance never executes concurrently with itself
(Granules serializes it), grabbing the instance's run lock yields a
consistent cut of its user state with no extra synchronization on the
hot path — zero cost except while a checkpoint is actually being taken.

Operators opt in by implementing two hooks::

    class Counter(StreamProcessor):
        def snapshot_state(self):           # called with the instance quiesced
            return {"count": self.count}
        def restore_state(self, state):     # called before the first execution
            self.count = state["count"]

:func:`take_checkpoint` captures every opted-in instance of a job;
:meth:`NeptuneRuntime.submit(graph, restore_from=...)` (via
``Checkpoint.state_for``) rebuilds a job from one.  Checkpoints
serialize with :mod:`pickle` for arbitrary user state.

Scope note: this checkpoints *operator state*, not in-flight packets —
recovery gives transactional state with at-least-once reprocessing of
whatever the source replays, the standard starting point the paper's
future work names (exactly-once input replay needs coordinated source
offsets, which :class:`ReplayableSource` sketches).
"""

from __future__ import annotations

import os
import pickle
import threading
import time
from dataclasses import dataclass, field
from typing import Any

from repro.util.errors import JobStateError


@dataclass
class Checkpoint:
    """A consistent-per-instance snapshot of one job's operator state."""

    job_name: str
    taken_at: float
    #: (operator name, instance index) → opaque user state.
    states: dict = field(default_factory=dict)

    def state_for(self, operator: str, instance: int) -> Any:
        """State captured for (operator, instance), or None."""
        return self.states.get((operator, instance))

    @property
    def instances(self) -> int:
        """Number of instance states captured."""
        return len(self.states)

    def save(self, path: str) -> None:
        """Persist to ``path`` (pickle)."""
        with open(path, "wb") as fh:
            pickle.dump(self, fh, protocol=pickle.HIGHEST_PROTOCOL)

    @classmethod
    def load(cls, path: str) -> "Checkpoint":
        """Load a checkpoint previously written by save()."""
        with open(path, "rb") as fh:
            ckpt = pickle.load(fh)
        if not isinstance(ckpt, cls):
            raise JobStateError(f"{path!r} does not contain a Checkpoint")
        return ckpt


def take_checkpoint(job_runtime) -> Checkpoint:
    """Snapshot every opted-in operator instance of a running job.

    Each instance is quiesced individually (its run lock held while its
    ``snapshot_state`` runs), so per-instance state is consistent; the
    checkpoint as a whole is fuzzy across instances — the documented
    trade-off that keeps overhead near zero.
    """
    ckpt = Checkpoint(job_name=job_runtime.graph.name, taken_at=time.time())
    for inst in job_runtime.all_instances():
        snapshot = getattr(inst.operator, "snapshot_state", None)
        if snapshot is None:
            continue
        with inst._run_lock:  # instance is not executing
            state = snapshot()
        if state is not None:
            ckpt.states[(inst.spec.name, inst.index)] = state
    return ckpt


class CheckpointStore:
    """Bounded in-memory (optionally disk-backed) checkpoint history.

    The recovery path (:class:`~repro.chaos.recovery.RecoveryCoordinator`,
    link-failure notifications) needs "the last good checkpoint" without
    threading a Checkpoint object through every call site.  The store
    keeps the most recent ``keep`` checkpoints per job and can mirror
    each one to ``directory`` (pickle files) for cross-process recovery.
    """

    def __init__(self, keep: int = 3, directory: str | None = None) -> None:
        if keep <= 0:
            raise ValueError(f"keep must be positive: {keep}")
        self._keep = keep
        self._dir = directory
        self._history: dict[str, list[Checkpoint]] = {}
        self._lock = threading.Lock()

    def put(self, ckpt: Checkpoint) -> None:
        """Record a checkpoint (evicting beyond the keep bound)."""
        with self._lock:
            history = self._history.setdefault(ckpt.job_name, [])
            history.append(ckpt)
            del history[: -self._keep]
        if self._dir is not None:
            path = os.path.join(
                self._dir, f"{ckpt.job_name}-{ckpt.taken_at:.6f}.ckpt"
            )
            ckpt.save(path)

    def latest(self, job_name: str) -> Checkpoint | None:
        """Most recent checkpoint for ``job_name``, or None."""
        with self._lock:
            history = self._history.get(job_name)
            return history[-1] if history else None

    def history(self, job_name: str) -> list[Checkpoint]:
        """All retained checkpoints, oldest first."""
        with self._lock:
            return list(self._history.get(job_name, []))


class ReplayableSource:
    """Mixin sketching coordinated source replay for exactly-once input.

    Sources that can seek (files, Kafka-like logs) additionally
    checkpoint a *position*; on restore, generation resumes from it.
    Combined with per-instance state snapshots this upgrades recovery
    to effectively-once for deterministic pipelines.
    """

    def snapshot_state(self) -> Any:
        """Checkpoint hook: return this operator's state."""
        return {"position": self.position()}

    def restore_state(self, state: Any) -> None:
        """Checkpoint hook: rehydrate state captured by snapshot_state."""
        self.seek(state["position"])

    def position(self) -> Any:  # pragma: no cover - interface
        """Current replay position (source-defined)."""
        raise NotImplementedError

    def seek(self, position: Any) -> None:  # pragma: no cover - interface
        """Reposition the replay cursor."""
        raise NotImplementedError
