"""Stream packets and their schemas (paper §III-A1).

"A stream packet is the most fine grained element of data in NEPTUNE.
An ordered, unbounded set of stream packets forms a stream.  Users can
define stream packets by combining one or more data fields as required."

A :class:`PacketSchema` is an ordered list of named, typed fields.  A
:class:`StreamPacket` holds one value per field.  Packets are designed
for *reuse*: :meth:`StreamPacket.reset` clears values so pooled packets
can be recycled instead of reallocated (paper §III-B3).
"""

from __future__ import annotations

from typing import Any, Iterator, Mapping, Sequence

from repro.core.fieldtypes import FieldType, validate_value
from repro.util.errors import SerializationError


class PacketSchema:
    """Ordered, named, typed field layout shared by packets of a stream.

    Schemas are immutable and hashable; operators on both ends of a link
    must agree on the schema (enforced by graph validation).
    """

    __slots__ = ("_names", "_types", "_index", "_hash")

    def __init__(self, fields: Sequence[tuple[str, FieldType]]) -> None:
        if not fields:
            raise ValueError("schema needs at least one field")
        names = tuple(name for name, _ in fields)
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise ValueError(f"duplicate field names: {dupes}")
        for name in names:
            if not name or not isinstance(name, str):
                raise ValueError(f"invalid field name: {name!r}")
        self._names = names
        self._types = tuple(FieldType(t) for _, t in fields)
        self._index = {n: i for i, n in enumerate(names)}
        self._hash = hash((self._names, self._types))

    @property
    def names(self) -> tuple[str, ...]:
        """Field names, in schema order."""
        return self._names

    @property
    def types(self) -> tuple[FieldType, ...]:
        """Field types, in schema order."""
        return self._types

    def index_of(self, name: str) -> int:
        """Index of a named field (KeyError when unknown)."""
        try:
            return self._index[name]
        except KeyError:
            raise KeyError(f"no field {name!r}; schema has {list(self._names)}") from None

    def type_of(self, name: str) -> FieldType:
        """Type of a named field."""
        return self._types[self.index_of(name)]

    def __len__(self) -> int:
        return len(self._names)

    def __iter__(self) -> Iterator[tuple[str, FieldType]]:
        return iter(zip(self._names, self._types))

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, PacketSchema)
            and self._names == other._names
            and self._types == other._types
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        inner = ", ".join(f"{n}:{t.value}" for n, t in self)
        return f"PacketSchema({inner})"

    # -- (de)serialization of the schema itself (for JSON descriptors) ------
    def to_dict(self) -> list[dict[str, str]]:
        """Plain-dict form (JSON-friendly)."""
        return [{"name": n, "type": t.value} for n, t in self]

    @classmethod
    def from_dict(cls, fields: Sequence[Mapping[str, str]]) -> "PacketSchema":
        """Rebuild from the to_dict() form."""
        return cls([(f["name"], FieldType(f["type"])) for f in fields])

    def new_packet(self, **values: Any) -> "StreamPacket":
        """Create a packet of this schema, optionally pre-filled."""
        pkt = StreamPacket(self)
        for name, value in values.items():
            pkt.set(name, value)
        return pkt


class StreamPacket:
    """One unit of stream data: a value per schema field.

    Mutable by design — NEPTUNE pools and reuses packet objects to
    reduce GC strain, so a packet must be cheap to ``reset``.
    Field access by name (``pkt.get("temp")``, ``pkt["temp"]``) or by
    index (``pkt.get_at(2)``, faster on hot paths).
    """

    __slots__ = ("schema", "_values")

    def __init__(self, schema: PacketSchema) -> None:
        self.schema = schema
        self._values: list[Any] = [None] * len(schema)

    # -- field access ---------------------------------------------------------
    def set(self, name: str, value: Any) -> "StreamPacket":
        """Assign a field by name (validates the value's type)."""
        return self.set_at(self.schema.index_of(name), value)

    def set_at(self, index: int, value: Any) -> "StreamPacket":
        """Assign a field by index (hot-path variant of set)."""
        ftype = self.schema.types[index]
        if not validate_value(ftype, value):
            raise SerializationError(
                f"value {value!r} is not a valid {ftype.value} "
                f"for field {self.schema.names[index]!r}"
            )
        self._values[index] = value
        return self

    def get(self, name: str) -> Any:
        """Read a field by name."""
        return self._values[self.schema.index_of(name)]

    def get_at(self, index: int) -> Any:
        """Read a field by index (hot-path variant of get)."""
        return self._values[index]

    def __getitem__(self, name: str) -> Any:
        return self.get(name)

    def __setitem__(self, name: str, value: Any) -> None:
        self.set(name, value)

    @property
    def values(self) -> tuple[Any, ...]:
        """The field values, in schema order."""
        return tuple(self._values)

    def is_complete(self) -> bool:
        """Whether every field has been assigned (required to encode)."""
        return all(v is not None for v in self._values)

    # -- reuse ------------------------------------------------------------------
    def reset(self) -> "StreamPacket":
        """Clear all values for reuse from a pool."""
        for i in range(len(self._values)):
            self._values[i] = None
        return self

    def copy_from(self, other: "StreamPacket") -> "StreamPacket":
        """Copy all field values from a same-schema packet."""
        if other.schema != self.schema:
            raise SerializationError("copy_from across different schemas")
        self._values[:] = other._values
        return self

    def clone(self) -> "StreamPacket":
        """A detached copy (for retaining a borrowed/pooled packet)."""
        fresh = StreamPacket(self.schema)
        fresh._values[:] = self._values
        return fresh

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form (JSON-friendly)."""
        return dict(zip(self.schema.names, self._values))

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, StreamPacket)
            and self.schema == other.schema
            and self._values == other._values
        )

    def __repr__(self) -> str:
        inner = ", ".join(f"{n}={v!r}" for n, v in zip(self.schema.names, self._values))
        return f"StreamPacket({inner})"
