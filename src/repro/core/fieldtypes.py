"""Primitive field types for stream packets (paper §III-A1).

"NEPTUNE natively supports a set of primitive data types and data
structures to aid in defining data fields within a stream packet."

Each type knows its wire encoding.  Fixed-width types use
:mod:`struct`; variable-width types are length-prefixed with a u32.
Validation is strict: writing a value outside a type's domain raises
:class:`~repro.util.errors.SerializationError` at encode time, not a
corrupt packet at the receiver.
"""

from __future__ import annotations

import enum
import struct
from functools import lru_cache
from typing import Any, Sequence

from repro.util.errors import SerializationError

_I8 = struct.Struct("<b")
_I32 = struct.Struct("<i")
_I64 = struct.Struct("<q")
_F32 = struct.Struct("<f")
_F64 = struct.Struct("<d")
_U32 = struct.Struct("<I")


class FieldType(enum.Enum):
    """Wire types available for packet fields."""

    BOOL = "bool"
    INT32 = "int32"
    INT64 = "int64"
    FLOAT32 = "float32"
    FLOAT64 = "float64"
    STRING = "string"
    BYTES = "bytes"
    FLOAT64_LIST = "float64_list"
    INT64_LIST = "int64_list"

    @property
    def fixed_size(self) -> int | None:
        """Encoded size in bytes for fixed-width types, else None."""
        return _FIXED_SIZES.get(self)


_FIXED_SIZES = {
    FieldType.BOOL: 1,
    FieldType.INT32: 4,
    FieldType.INT64: 8,
    FieldType.FLOAT32: 4,
    FieldType.FLOAT64: 8,
}

_INT32_MIN, _INT32_MAX = -(2**31), 2**31 - 1
_INT64_MIN, _INT64_MAX = -(2**63), 2**63 - 1


def encode_field(ftype: FieldType, value: Any, out: bytearray) -> None:
    """Append the wire encoding of ``value`` as ``ftype`` to ``out``."""
    try:
        if ftype is FieldType.BOOL:
            out += _I8.pack(1 if value else 0)
        elif ftype is FieldType.INT32:
            if not _INT32_MIN <= value <= _INT32_MAX:
                raise SerializationError(f"int32 out of range: {value}")
            out += _I32.pack(value)
        elif ftype is FieldType.INT64:
            if not _INT64_MIN <= value <= _INT64_MAX:
                raise SerializationError(f"int64 out of range: {value}")
            out += _I64.pack(value)
        elif ftype is FieldType.FLOAT32:
            out += _F32.pack(value)
        elif ftype is FieldType.FLOAT64:
            out += _F64.pack(value)
        elif ftype is FieldType.STRING:
            raw = value.encode("utf-8")
            out += _U32.pack(len(raw))
            out += raw
        elif ftype is FieldType.BYTES:
            out += _U32.pack(len(value))
            out += value
        elif ftype is FieldType.FLOAT64_LIST:
            out += _U32.pack(len(value))
            for v in value:
                out += _F64.pack(v)
        elif ftype is FieldType.INT64_LIST:
            out += _U32.pack(len(value))
            for v in value:
                out += _I64.pack(v)
        else:  # pragma: no cover — exhaustive over the enum
            raise SerializationError(f"unsupported field type: {ftype}")
    except (struct.error, AttributeError, TypeError) as exc:
        raise SerializationError(f"cannot encode {value!r} as {ftype.value}") from exc


def decode_field(ftype: FieldType, buf: bytes | memoryview, offset: int) -> tuple[Any, int]:
    """Decode one ``ftype`` value at ``offset``; return (value, new_offset)."""
    try:
        if ftype is FieldType.BOOL:
            return buf[offset] != 0, offset + 1
        if ftype is FieldType.INT32:
            return _I32.unpack_from(buf, offset)[0], offset + 4
        if ftype is FieldType.INT64:
            return _I64.unpack_from(buf, offset)[0], offset + 8
        if ftype is FieldType.FLOAT32:
            return _F32.unpack_from(buf, offset)[0], offset + 4
        if ftype is FieldType.FLOAT64:
            return _F64.unpack_from(buf, offset)[0], offset + 8
        if ftype is FieldType.STRING:
            n = _U32.unpack_from(buf, offset)[0]
            start = offset + 4
            if start + n > len(buf):
                raise SerializationError("truncated string field")
            return bytes(buf[start : start + n]).decode("utf-8"), start + n
        if ftype is FieldType.BYTES:
            n = _U32.unpack_from(buf, offset)[0]
            start = offset + 4
            if start + n > len(buf):
                raise SerializationError("truncated bytes field")
            return bytes(buf[start : start + n]), start + n
        if ftype is FieldType.FLOAT64_LIST:
            n = _U32.unpack_from(buf, offset)[0]
            start = offset + 4
            end = start + 8 * n
            if end > len(buf):
                raise SerializationError("truncated float64 list")
            return [
                _F64.unpack_from(buf, start + 8 * i)[0] for i in range(n)
            ], end
        if ftype is FieldType.INT64_LIST:
            n = _U32.unpack_from(buf, offset)[0]
            start = offset + 4
            end = start + 8 * n
            if end > len(buf):
                raise SerializationError("truncated int64 list")
            return [
                _I64.unpack_from(buf, start + 8 * i)[0] for i in range(n)
            ], end
        raise SerializationError(f"unsupported field type: {ftype}")  # pragma: no cover
    except (struct.error, IndexError) as exc:
        raise SerializationError(f"truncated {ftype.value} field at offset {offset}") from exc


# -- schema compilation (hot-path codec, §III-B3) ---------------------------
#
# The per-field functions above dispatch on the FieldType enum once per
# field per packet.  For schemas dominated by fixed-width fields that
# dispatch *is* the encode cost, so a :class:`CompiledSchema` fuses every
# maximal run of consecutive fixed-width fields into one precompiled
# ``struct.Struct``: a record with k fixed fields costs one pack/unpack
# instead of k enum dispatches.  Variable-width fields fall back to the
# per-field path between runs.  The wire format is byte-identical to the
# per-field codec (little-endian standard sizes, no padding; BOOL uses
# the "?" format, which packs any truthy value as 0x01 — exactly what
# ``_I8.pack(1 if value else 0)`` produced).

_RUN_FORMATS = {
    FieldType.BOOL: "?",
    FieldType.INT32: "i",
    FieldType.INT64: "q",
    FieldType.FLOAT32: "f",
    FieldType.FLOAT64: "d",
}

# A step is ("F", struct.Struct, start, end) for a fused fixed-width run
# over schema fields [start, end), or ("V", FieldType, index, None) for
# one variable-width field.
_Step = tuple[str, Any, int, Any]


class CompiledSchema:
    """Fused encode/decode plan for one ordered tuple of field types.

    Obtain via :func:`compile_fieldtypes` (cached per type tuple — the
    plan is immutable and shared by every codec of the schema).
    """

    __slots__ = ("types", "steps", "fixed_total", "record_size")

    def __init__(self, types: Sequence[FieldType]) -> None:
        self.types = tuple(types)
        steps: list[_Step] = []
        run_start = -1
        fmt = ""
        fixed_total = 0
        var_fields = 0
        for i, ftype in enumerate(self.types):
            ch = _RUN_FORMATS.get(ftype)
            if ch is not None:
                if run_start < 0:
                    run_start = i
                fmt += ch
                continue
            if run_start >= 0:
                s = struct.Struct("<" + fmt)
                steps.append(("F", s, run_start, i))
                fixed_total += s.size
                run_start, fmt = -1, ""
            steps.append(("V", ftype, i, None))
            var_fields += 1
        if run_start >= 0:
            s = struct.Struct("<" + fmt)
            steps.append(("F", s, run_start, len(self.types)))
            fixed_total += s.size
        self.steps: tuple[_Step, ...] = tuple(steps)
        #: Total bytes contributed by fixed-width fields per record.
        self.fixed_total = fixed_total
        #: Exact record size when every field is fixed-width, else None.
        self.record_size = fixed_total if var_fields == 0 else None

    def encode_values(self, values: Sequence[Any], out: bytearray) -> None:
        """Append the wire form of one record's ``values`` to ``out``.

        Raises :class:`SerializationError` on any bad value; the caller
        (``PacketCodec.encode_into``) truncates ``out`` back to the
        record start so a failed encode never leaves partial bytes.
        """
        for kind, a, start, end in self.steps:
            if kind == "F":
                try:
                    out += a.pack(*values[start:end])
                except (struct.error, OverflowError, TypeError) as exc:
                    # Replay the run per-field for the canonical
                    # diagnostic (names the first offending value).
                    for i in range(start, end):
                        encode_field(self.types[i], values[i], out)
                    raise SerializationError(
                        f"cannot encode fixed-width run at field {start}"
                    ) from exc  # pragma: no cover — per-field replay raises first
            else:
                encode_field(a, values[start], out)

    def decode_into(
        self, values: list[Any], buf: bytes | bytearray | memoryview, offset: int
    ) -> int:
        """Fill ``values`` with one record decoded at ``offset``.

        Returns the offset one past the record.  Raises
        :class:`SerializationError` on truncation.
        """
        for kind, a, start, end in self.steps:
            if kind == "F":
                try:
                    values[start:end] = a.unpack_from(buf, offset)
                except struct.error as exc:
                    raise SerializationError(
                        f"truncated record at offset {offset}"
                    ) from exc
                offset += a.size
            else:
                values[start], offset = decode_field(a, buf, offset)
        return offset


@lru_cache(maxsize=256)
def compile_fieldtypes(types: tuple[FieldType, ...]) -> CompiledSchema:
    """The (cached) fused codec plan for an ordered field-type tuple."""
    return CompiledSchema(types)


def validate_value(ftype: FieldType, value: Any) -> bool:
    """Cheap type check used by strict-mode packet assignment."""
    if ftype is FieldType.BOOL:
        return isinstance(value, bool)
    if ftype in (FieldType.INT32, FieldType.INT64):
        return isinstance(value, int) and not isinstance(value, bool)
    if ftype in (FieldType.FLOAT32, FieldType.FLOAT64):
        return isinstance(value, (int, float)) and not isinstance(value, bool)
    if ftype is FieldType.STRING:
        return isinstance(value, str)
    if ftype is FieldType.BYTES:
        return isinstance(value, (bytes, bytearray, memoryview))
    if ftype is FieldType.FLOAT64_LIST:
        return isinstance(value, (list, tuple)) and all(
            isinstance(v, (int, float)) and not isinstance(v, bool) for v in value
        )
    if ftype is FieldType.INT64_LIST:
        return isinstance(value, (list, tuple)) and all(
            isinstance(v, int) and not isinstance(v, bool) for v in value
        )
    return False  # pragma: no cover
