"""Primitive field types for stream packets (paper §III-A1).

"NEPTUNE natively supports a set of primitive data types and data
structures to aid in defining data fields within a stream packet."

Each type knows its wire encoding.  Fixed-width types use
:mod:`struct`; variable-width types are length-prefixed with a u32.
Validation is strict: writing a value outside a type's domain raises
:class:`~repro.util.errors.SerializationError` at encode time, not a
corrupt packet at the receiver.
"""

from __future__ import annotations

import enum
import struct
from typing import Any

from repro.util.errors import SerializationError

_I8 = struct.Struct("<b")
_I32 = struct.Struct("<i")
_I64 = struct.Struct("<q")
_F32 = struct.Struct("<f")
_F64 = struct.Struct("<d")
_U32 = struct.Struct("<I")


class FieldType(enum.Enum):
    """Wire types available for packet fields."""

    BOOL = "bool"
    INT32 = "int32"
    INT64 = "int64"
    FLOAT32 = "float32"
    FLOAT64 = "float64"
    STRING = "string"
    BYTES = "bytes"
    FLOAT64_LIST = "float64_list"
    INT64_LIST = "int64_list"

    @property
    def fixed_size(self) -> int | None:
        """Encoded size in bytes for fixed-width types, else None."""
        return _FIXED_SIZES.get(self)


_FIXED_SIZES = {
    FieldType.BOOL: 1,
    FieldType.INT32: 4,
    FieldType.INT64: 8,
    FieldType.FLOAT32: 4,
    FieldType.FLOAT64: 8,
}

_INT32_MIN, _INT32_MAX = -(2**31), 2**31 - 1
_INT64_MIN, _INT64_MAX = -(2**63), 2**63 - 1


def encode_field(ftype: FieldType, value: Any, out: bytearray) -> None:
    """Append the wire encoding of ``value`` as ``ftype`` to ``out``."""
    try:
        if ftype is FieldType.BOOL:
            out += _I8.pack(1 if value else 0)
        elif ftype is FieldType.INT32:
            if not _INT32_MIN <= value <= _INT32_MAX:
                raise SerializationError(f"int32 out of range: {value}")
            out += _I32.pack(value)
        elif ftype is FieldType.INT64:
            if not _INT64_MIN <= value <= _INT64_MAX:
                raise SerializationError(f"int64 out of range: {value}")
            out += _I64.pack(value)
        elif ftype is FieldType.FLOAT32:
            out += _F32.pack(value)
        elif ftype is FieldType.FLOAT64:
            out += _F64.pack(value)
        elif ftype is FieldType.STRING:
            raw = value.encode("utf-8")
            out += _U32.pack(len(raw))
            out += raw
        elif ftype is FieldType.BYTES:
            out += _U32.pack(len(value))
            out += value
        elif ftype is FieldType.FLOAT64_LIST:
            out += _U32.pack(len(value))
            for v in value:
                out += _F64.pack(v)
        elif ftype is FieldType.INT64_LIST:
            out += _U32.pack(len(value))
            for v in value:
                out += _I64.pack(v)
        else:  # pragma: no cover — exhaustive over the enum
            raise SerializationError(f"unsupported field type: {ftype}")
    except (struct.error, AttributeError, TypeError) as exc:
        raise SerializationError(f"cannot encode {value!r} as {ftype.value}") from exc


def decode_field(ftype: FieldType, buf: bytes | memoryview, offset: int) -> tuple[Any, int]:
    """Decode one ``ftype`` value at ``offset``; return (value, new_offset)."""
    try:
        if ftype is FieldType.BOOL:
            return buf[offset] != 0, offset + 1
        if ftype is FieldType.INT32:
            return _I32.unpack_from(buf, offset)[0], offset + 4
        if ftype is FieldType.INT64:
            return _I64.unpack_from(buf, offset)[0], offset + 8
        if ftype is FieldType.FLOAT32:
            return _F32.unpack_from(buf, offset)[0], offset + 4
        if ftype is FieldType.FLOAT64:
            return _F64.unpack_from(buf, offset)[0], offset + 8
        if ftype is FieldType.STRING:
            n = _U32.unpack_from(buf, offset)[0]
            start = offset + 4
            if start + n > len(buf):
                raise SerializationError("truncated string field")
            return bytes(buf[start : start + n]).decode("utf-8"), start + n
        if ftype is FieldType.BYTES:
            n = _U32.unpack_from(buf, offset)[0]
            start = offset + 4
            if start + n > len(buf):
                raise SerializationError("truncated bytes field")
            return bytes(buf[start : start + n]), start + n
        if ftype is FieldType.FLOAT64_LIST:
            n = _U32.unpack_from(buf, offset)[0]
            start = offset + 4
            end = start + 8 * n
            if end > len(buf):
                raise SerializationError("truncated float64 list")
            return [
                _F64.unpack_from(buf, start + 8 * i)[0] for i in range(n)
            ], end
        if ftype is FieldType.INT64_LIST:
            n = _U32.unpack_from(buf, offset)[0]
            start = offset + 4
            end = start + 8 * n
            if end > len(buf):
                raise SerializationError("truncated int64 list")
            return [
                _I64.unpack_from(buf, start + 8 * i)[0] for i in range(n)
            ], end
        raise SerializationError(f"unsupported field type: {ftype}")  # pragma: no cover
    except (struct.error, IndexError) as exc:
        raise SerializationError(f"truncated {ftype.value} field at offset {offset}") from exc


def validate_value(ftype: FieldType, value: Any) -> bool:
    """Cheap type check used by strict-mode packet assignment."""
    if ftype is FieldType.BOOL:
        return isinstance(value, bool)
    if ftype in (FieldType.INT32, FieldType.INT64):
        return isinstance(value, int) and not isinstance(value, bool)
    if ftype in (FieldType.FLOAT32, FieldType.FLOAT64):
        return isinstance(value, (int, float)) and not isinstance(value, bool)
    if ftype is FieldType.STRING:
        return isinstance(value, str)
    if ftype is FieldType.BYTES:
        return isinstance(value, (bytes, bytearray, memoryview))
    if ftype is FieldType.FLOAT64_LIST:
        return isinstance(value, (list, tuple)) and all(
            isinstance(v, (int, float)) and not isinstance(v, bool) for v in value
        )
    if ftype is FieldType.INT64_LIST:
        return isinstance(value, (list, tuple)) and all(
            isinstance(v, int) and not isinstance(v, bool) for v in value
        )
    return False  # pragma: no cover
