"""Stream-processing graphs (paper §III-A7).

"A stream processing graph in NEPTUNE comprises: (1) stream sources and
stream processors for different stages, (2) parallelism levels for
stream operators, (3) links connecting stream operators, and (4) stream
partitioning schemes for each link.  A stream processing graph can be
created by directly invoking the NEPTUNE API or through a JSON
descriptor file."

Operators are declared with a *factory* (each instance of a parallel
operator gets its own object).  Validation checks structure (names,
sources present, acyclic — backpressure over a pressure cycle would
deadlock), per-stream schemas, and partitioning specs.
"""

from __future__ import annotations

import importlib
import json
from dataclasses import dataclass
from typing import Any, Callable

import networkx as nx

from repro.core.config import NeptuneConfig
from repro.core.operators import StreamOperator, StreamProcessor, StreamSource
from repro.core.packet import PacketSchema
from repro.core.partitioning import PartitioningScheme, resolve_partitioning
from repro.util.errors import GraphValidationError

OperatorFactory = Callable[[], StreamOperator]


@dataclass
class OperatorSpec:
    """One declared operator: factory + parallelism (+ scheduling).

    ``scheduling`` optionally overrides the default data-driven
    strategy for processors with any Granules strategy — periodic,
    count-based, or combinations (§II).  It is a zero-argument factory
    (each instance needs its own strategy object).  A processor
    executed by a time-based trigger with no data pending receives an
    :meth:`~repro.core.operators.StreamProcessor.on_schedule` call.
    """

    name: str
    factory: OperatorFactory
    parallelism: int = 1
    is_source: bool = False
    scheduling: Callable[[], Any] | None = None

    def __post_init__(self) -> None:
        if self.parallelism <= 0:
            raise GraphValidationError(
                f"operator {self.name!r}: parallelism must be positive, got {self.parallelism}"
            )
        if self.scheduling is not None and self.is_source:
            raise GraphValidationError(
                f"operator {self.name!r}: sources control their own scheduling"
            )


@dataclass
class LinkSpec:
    """One declared link: a named stream between two operators (§III-A4)."""

    from_op: str
    to_op: str
    stream: str = "default"
    partitioning: Any = "round-robin"
    #: Per-link compression override: None = job default, True/False =
    #: force on/off, or a dict of CompressionPolicy kwargs.
    compression: Any = None
    link_id: int = -1  # assigned at validation
    schema: PacketSchema | None = None  # resolved at validation

    def resolved_partitioning(self) -> PartitioningScheme:
        """Instantiate this link's partitioning scheme."""
        return resolve_partitioning(self.partitioning)


class StreamProcessingGraph:
    """Builder + validator for one stream-processing job."""

    def __init__(self, name: str, config: NeptuneConfig | None = None) -> None:
        if not name:
            raise GraphValidationError("graph needs a non-empty name")
        self.name = name
        self.config = config or NeptuneConfig()
        self.operators: dict[str, OperatorSpec] = {}
        self.links: list[LinkSpec] = []
        self._validated = False

    # -- construction -----------------------------------------------------------
    def add_source(
        self, name: str, factory: OperatorFactory, parallelism: int = 1
    ) -> "StreamProcessingGraph":
        """Declare a stream source operator."""
        self._add(OperatorSpec(name, factory, parallelism, is_source=True))
        return self

    def add_processor(
        self,
        name: str,
        factory: OperatorFactory,
        parallelism: int = 1,
        scheduling: Callable[[], Any] | None = None,
    ) -> "StreamProcessingGraph":
        """Declare a processor.

        ``scheduling`` (optional) is a zero-arg factory returning a
        Granules :class:`~repro.granules.scheduler.SchedulingStrategy`
        for this operator's instances, e.g.
        ``lambda: CombinedStrategy(PeriodicStrategy(0.5), DataDrivenStrategy())``
        for the paper's "every 500 ms or when data is available" (§II).
        """
        self._add(
            OperatorSpec(name, factory, parallelism, is_source=False, scheduling=scheduling)
        )
        return self

    def _add(self, spec: OperatorSpec) -> None:
        if spec.name in self.operators:
            raise GraphValidationError(f"duplicate operator name {spec.name!r}")
        self.operators[spec.name] = spec
        self._validated = False

    def link(
        self,
        from_op: str,
        to_op: str,
        stream: str = "default",
        partitioning: Any = "round-robin",
        compression: Any = None,
    ) -> "StreamProcessingGraph":
        """Connect ``from_op``'s ``stream`` to ``to_op`` (§III-A4)."""
        self.links.append(
            LinkSpec(from_op, to_op, stream, partitioning, compression)
        )
        self._validated = False
        return self

    # -- validation -----------------------------------------------------------
    def validate(self) -> "StreamProcessingGraph":
        """Check structure and resolve link schemas/ids.  Idempotent."""
        if self._validated:
            return self
        if not self.operators:
            raise GraphValidationError("graph has no operators")
        if not any(s.is_source for s in self.operators.values()):
            raise GraphValidationError("graph has no stream source")

        g = nx.DiGraph()
        g.add_nodes_from(self.operators)
        for lk in self.links:
            for endpoint in (lk.from_op, lk.to_op):
                if endpoint not in self.operators:
                    raise GraphValidationError(
                        f"link references undeclared operator {endpoint!r}"
                    )
            if self.operators[lk.to_op].is_source:
                raise GraphValidationError(
                    f"link {lk.from_op!r}->{lk.to_op!r}: sources cannot receive streams"
                )
            g.add_edge(lk.from_op, lk.to_op)
        if not nx.is_directed_acyclic_graph(g):
            cycle = nx.find_cycle(g)
            raise GraphValidationError(
                f"graph contains a cycle {cycle}; backpressure over a "
                "pressure cycle would deadlock"
            )
        # Every processor must be reachable from some source (else it
        # can never receive data — almost certainly a wiring mistake).
        sources = [n for n, s in self.operators.items() if s.is_source]
        reachable = set(sources)
        for s in sources:
            reachable |= nx.descendants(g, s)
        unreachable = set(self.operators) - reachable
        if unreachable:
            raise GraphValidationError(
                f"operators unreachable from any source: {sorted(unreachable)}"
            )

        # Resolve schemas: instantiate one probe per operator with
        # outgoing links and ask for each stream's schema.
        probes: dict[str, StreamOperator] = {}
        for idx, lk in enumerate(self.links):
            lk.link_id = idx
            probe = probes.get(lk.from_op)
            if probe is None:
                probe = self.operators[lk.from_op].factory()
                if not isinstance(probe, StreamOperator):
                    raise GraphValidationError(
                        f"factory for {lk.from_op!r} returned {type(probe).__name__}, "
                        "not a StreamOperator"
                    )
                expected = StreamSource if self.operators[lk.from_op].is_source else StreamProcessor
                if not isinstance(probe, expected):
                    raise GraphValidationError(
                        f"operator {lk.from_op!r} declared as "
                        f"{'source' if expected is StreamSource else 'processor'} "
                        f"but factory built a {type(probe).__name__}"
                    )
                probes[lk.from_op] = probe
            try:
                lk.schema = probe.output_schema(lk.stream)
            except KeyError as exc:
                raise GraphValidationError(
                    f"operator {lk.from_op!r} declares no schema for stream {lk.stream!r}"
                ) from exc
            if not isinstance(lk.schema, PacketSchema):
                raise GraphValidationError(
                    f"output_schema of {lk.from_op!r} for {lk.stream!r} returned "
                    f"{type(lk.schema).__name__}"
                )
            lk.resolved_partitioning()  # raises on unknown scheme
        self._validated = True
        return self

    # -- queries ---------------------------------------------------------------
    def outgoing_links(self, op: str) -> list[LinkSpec]:
        """Links whose sender is the named operator."""
        return [lk for lk in self.links if lk.from_op == op]

    def incoming_links(self, op: str) -> list[LinkSpec]:
        """Links whose receiver is the named operator."""
        return [lk for lk in self.links if lk.to_op == op]

    def stages(self) -> list[list[str]]:
        """Topological generations — the paper's processing *stages*."""
        self.validate()
        g = nx.DiGraph()
        g.add_nodes_from(self.operators)
        g.add_edges_from((lk.from_op, lk.to_op) for lk in self.links)
        return [sorted(gen) for gen in nx.topological_generations(g)]

    def total_instances(self) -> int:
        """Total operator instances across the graph."""
        return sum(s.parallelism for s in self.operators.values())

    # -- JSON descriptors -------------------------------------------------------
    def to_descriptor(self) -> dict:
        """JSON-able descriptor (operators referenced by import path)."""
        ops = []
        for spec in self.operators.values():
            target = getattr(spec.factory, "_descriptor_target", None)
            ops.append(
                {
                    "name": spec.name,
                    "type": "source" if spec.is_source else "processor",
                    "parallelism": spec.parallelism,
                    "class": target[0] if target else None,
                    "kwargs": target[1] if target else {},
                }
            )
        links = []
        for lk in self.links:
            part = lk.partitioning
            if isinstance(part, PartitioningScheme):
                part = part.describe()
            links.append(
                {
                    "from": lk.from_op,
                    "to": lk.to_op,
                    "stream": lk.stream,
                    "partitioning": part,
                }
            )
        return {"name": self.name, "operators": ops, "links": links}

    def to_json(self, indent: int = 2) -> str:
        """JSON string of the descriptor."""
        return json.dumps(self.to_descriptor(), indent=indent)

    @classmethod
    def from_descriptor(
        cls, desc: dict, config: NeptuneConfig | None = None
    ) -> "StreamProcessingGraph":
        """Build a graph from a parsed JSON descriptor.

        Operator classes are referenced as ``"pkg.module:ClassName"``
        and constructed with the descriptor's ``kwargs``.
        """
        graph = cls(desc["name"], config=config)
        for op in desc["operators"]:
            path = op.get("class")
            if not path:
                raise GraphValidationError(
                    f"operator {op.get('name')!r} has no class path in descriptor"
                )
            factory = descriptor_factory(path, **op.get("kwargs", {}))
            if op["type"] == "source":
                graph.add_source(op["name"], factory, op.get("parallelism", 1))
            elif op["type"] == "processor":
                graph.add_processor(op["name"], factory, op.get("parallelism", 1))
            else:
                raise GraphValidationError(f"unknown operator type {op['type']!r}")
        for lk in desc.get("links", []):
            graph.link(
                lk["from"],
                lk["to"],
                stream=lk.get("stream", "default"),
                partitioning=lk.get("partitioning", "round-robin"),
                compression=lk.get("compression"),
            )
        return graph

    @classmethod
    def from_json(cls, text: str, config: NeptuneConfig | None = None) -> "StreamProcessingGraph":
        """Build a graph from a JSON descriptor string."""
        return cls.from_descriptor(json.loads(text), config=config)


def descriptor_factory(path: str, **kwargs: Any) -> OperatorFactory:
    """Factory from an import path ``"pkg.module:ClassName"``.

    The returned callable carries its target so :meth:`to_descriptor`
    can round-trip the graph.
    """
    module_name, _, class_name = path.partition(":")
    if not module_name or not class_name:
        raise GraphValidationError(
            f"operator class path must be 'module:Class', got {path!r}"
        )

    def factory() -> StreamOperator:
        """Build the operator instance."""
        module = importlib.import_module(module_name)
        cls_obj = getattr(module, class_name)
        return cls_obj(**kwargs)

    factory._descriptor_target = (path, kwargs)  # type: ignore[attr-defined]
    return factory
