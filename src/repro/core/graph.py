"""Stream-processing graphs (paper §III-A7).

"A stream processing graph in NEPTUNE comprises: (1) stream sources and
stream processors for different stages, (2) parallelism levels for
stream operators, (3) links connecting stream operators, and (4) stream
partitioning schemes for each link.  A stream processing graph can be
created by directly invoking the NEPTUNE API or through a JSON
descriptor file."

Operators are declared with a *factory* (each instance of a parallel
operator gets its own object).  Validation checks structure (names,
sources present, acyclic — backpressure over a pressure cycle would
deadlock), per-stream schemas, and partitioning specs.
"""

from __future__ import annotations

import importlib
import json
from dataclasses import dataclass
from typing import Any, Callable

import networkx as nx

from repro.core.config import NeptuneConfig
from repro.core.operators import StreamOperator
from repro.core.packet import PacketSchema
from repro.core.partitioning import PartitioningScheme, resolve_partitioning
from repro.util.errors import (
    DescriptorError,
    DuplicateLinkError,
    GraphValidationError,
    UnknownOperatorError,
)

OperatorFactory = Callable[[], StreamOperator]


@dataclass
class OperatorSpec:
    """One declared operator: factory + parallelism (+ scheduling).

    ``scheduling`` optionally overrides the default data-driven
    strategy for processors with any Granules strategy — periodic,
    count-based, or combinations (§II).  It is a zero-argument factory
    (each instance needs its own strategy object).  A processor
    executed by a time-based trigger with no data pending receives an
    :meth:`~repro.core.operators.StreamProcessor.on_schedule` call.
    """

    name: str
    factory: OperatorFactory
    parallelism: int = 1
    is_source: bool = False
    scheduling: Callable[[], Any] | None = None

    def __post_init__(self) -> None:
        if self.parallelism <= 0:
            raise GraphValidationError(
                f"operator {self.name!r}: parallelism must be positive, got {self.parallelism}"
            )
        if self.scheduling is not None and self.is_source:
            raise GraphValidationError(
                f"operator {self.name!r}: sources control their own scheduling"
            )


@dataclass
class LinkSpec:
    """One declared link: a named stream between two operators (§III-A4)."""

    from_op: str
    to_op: str
    stream: str = "default"
    partitioning: Any = "round-robin"
    #: Per-link compression override: None = job default, True/False =
    #: force on/off, or a dict of CompressionPolicy kwargs.
    compression: Any = None
    link_id: int = -1  # assigned at validation
    schema: PacketSchema | None = None  # resolved at validation

    def resolved_partitioning(self) -> PartitioningScheme:
        """Instantiate this link's partitioning scheme."""
        return resolve_partitioning(self.partitioning)


class StreamProcessingGraph:
    """Builder + validator for one stream-processing job."""

    def __init__(self, name: str, config: NeptuneConfig | None = None) -> None:
        if not name:
            raise GraphValidationError("graph needs a non-empty name")
        self.name = name
        self.config = config or NeptuneConfig()
        self.operators: dict[str, OperatorSpec] = {}
        self.links: list[LinkSpec] = []
        self._validated = False

    # -- construction -----------------------------------------------------------
    def add_source(
        self, name: str, factory: OperatorFactory, parallelism: int = 1
    ) -> "StreamProcessingGraph":
        """Declare a stream source operator."""
        self._add(OperatorSpec(name, factory, parallelism, is_source=True))
        return self

    def add_processor(
        self,
        name: str,
        factory: OperatorFactory,
        parallelism: int = 1,
        scheduling: Callable[[], Any] | None = None,
    ) -> "StreamProcessingGraph":
        """Declare a processor.

        ``scheduling`` (optional) is a zero-arg factory returning a
        Granules :class:`~repro.granules.scheduler.SchedulingStrategy`
        for this operator's instances, e.g.
        ``lambda: CombinedStrategy(PeriodicStrategy(0.5), DataDrivenStrategy())``
        for the paper's "every 500 ms or when data is available" (§II).
        """
        self._add(
            OperatorSpec(name, factory, parallelism, is_source=False, scheduling=scheduling)
        )
        return self

    def _add(self, spec: OperatorSpec) -> None:
        if spec.name in self.operators:
            raise GraphValidationError(f"duplicate operator name {spec.name!r}")
        self.operators[spec.name] = spec
        self._validated = False

    def link(
        self,
        from_op: str,
        to_op: str,
        stream: str = "default",
        partitioning: Any = "round-robin",
        compression: Any = None,
    ) -> "StreamProcessingGraph":
        """Connect ``from_op``'s ``stream`` to ``to_op`` (§III-A4)."""
        self.links.append(
            LinkSpec(from_op, to_op, stream, partitioning, compression)
        )
        self._validated = False
        return self

    # -- validation -----------------------------------------------------------
    def validate(self) -> "StreamProcessingGraph":
        """Check structure and resolve link schemas/ids.  Idempotent.

        Delegates to the static verifier
        (:class:`repro.analysis.graphcheck.GraphVerifier`) and raises
        :class:`GraphValidationError` with the first error-severity
        finding.  ``repro analyze --graph`` runs the same verifier with
        the advisory (warning) passes included and reports everything.
        """
        if self._validated:
            return self
        # Local import: repro.analysis depends on repro.core types.
        from repro.analysis.graphcheck import GraphVerifier

        report = GraphVerifier(self).run(deep=False)
        errors = report.errors()
        if errors:
            raise GraphValidationError(errors[0].message)
        self._validated = True
        return self

    # -- queries ---------------------------------------------------------------
    def outgoing_links(self, op: str) -> list[LinkSpec]:
        """Links whose sender is the named operator."""
        return [lk for lk in self.links if lk.from_op == op]

    def incoming_links(self, op: str) -> list[LinkSpec]:
        """Links whose receiver is the named operator."""
        return [lk for lk in self.links if lk.to_op == op]

    def stages(self) -> list[list[str]]:
        """Topological generations — the paper's processing *stages*."""
        self.validate()
        g = nx.DiGraph()
        g.add_nodes_from(self.operators)
        g.add_edges_from((lk.from_op, lk.to_op) for lk in self.links)
        return [sorted(gen) for gen in nx.topological_generations(g)]

    def total_instances(self) -> int:
        """Total operator instances across the graph."""
        return sum(s.parallelism for s in self.operators.values())

    # -- JSON descriptors -------------------------------------------------------
    def to_descriptor(self) -> dict:
        """JSON-able descriptor (operators referenced by import path)."""
        ops = []
        for spec in self.operators.values():
            target = getattr(spec.factory, "_descriptor_target", None)
            ops.append(
                {
                    "name": spec.name,
                    "type": "source" if spec.is_source else "processor",
                    "parallelism": spec.parallelism,
                    "class": target[0] if target else None,
                    "kwargs": target[1] if target else {},
                }
            )
        links = []
        for lk in self.links:
            part = lk.partitioning
            if isinstance(part, PartitioningScheme):
                part = part.describe()
            links.append(
                {
                    "from": lk.from_op,
                    "to": lk.to_op,
                    "stream": lk.stream,
                    "partitioning": part,
                }
            )
        return {"name": self.name, "operators": ops, "links": links}

    def to_json(self, indent: int = 2) -> str:
        """JSON string of the descriptor."""
        return json.dumps(self.to_descriptor(), indent=indent)

    @classmethod
    def from_descriptor(
        cls,
        desc: dict,
        config: NeptuneConfig | None = None,
        validate_wiring: bool = True,
    ) -> "StreamProcessingGraph":
        """Build a graph from a parsed JSON descriptor.

        Operator classes are referenced as ``"pkg.module:ClassName"``
        and constructed with the descriptor's ``kwargs``.  A descriptor
        may carry a ``"config"`` object of :class:`NeptuneConfig`
        field overrides (ignored when an explicit ``config`` is given).

        With ``validate_wiring`` (the default), wiring mistakes raise
        typed errors at build time — :class:`UnknownOperatorError` for
        a link endpoint never declared, :class:`DuplicateLinkError` for
        a repeated (sender, receiver, stream) triple,
        :class:`~repro.util.errors.PartitioningError` for an unknown or
        unbuildable partitioning spec — instead of surfacing later as a
        bare ``KeyError``.  The static analyzer builds with it off so
        it can report *every* problem instead of stopping at the first.
        """
        if not isinstance(desc, dict):
            raise DescriptorError(
                f"descriptor must be an object, got {type(desc).__name__}"
            )
        try:
            name = desc["name"]
            operators = desc["operators"]
        except KeyError as exc:
            raise DescriptorError(
                f"descriptor is missing required key {exc.args[0]!r}"
            ) from exc
        if config is None and "config" in desc:
            overrides = desc["config"]
            if not isinstance(overrides, dict):
                raise DescriptorError(
                    "descriptor 'config' must be an object of NeptuneConfig fields"
                )
            try:
                config = NeptuneConfig(**overrides)
            except (TypeError, ValueError) as exc:
                raise DescriptorError(f"bad descriptor config: {exc}") from exc
        graph = cls(name, config=config)
        for op in operators:
            if not isinstance(op, dict) or not op.get("name"):
                raise DescriptorError(f"operator entry needs a 'name': {op!r}")
            path = op.get("class")
            if not path:
                raise DescriptorError(
                    f"operator {op.get('name')!r} has no class path in descriptor"
                )
            factory = descriptor_factory(path, **op.get("kwargs", {}))
            op_type = op.get("type")
            if op_type == "source":
                graph.add_source(op["name"], factory, op.get("parallelism", 1))
            elif op_type == "processor":
                graph.add_processor(op["name"], factory, op.get("parallelism", 1))
            else:
                raise DescriptorError(f"unknown operator type {op_type!r}")
        seen_links: set[tuple[str, str, str]] = set()
        for lk in desc.get("links", []):
            if not isinstance(lk, dict):
                raise DescriptorError(
                    f"link entry must be an object, got {type(lk).__name__}"
                )
            try:
                from_op, to_op = lk["from"], lk["to"]
            except KeyError as exc:
                raise DescriptorError(
                    f"link entry is missing required key {exc.args[0]!r}: {lk!r}"
                ) from exc
            stream = lk.get("stream", "default")
            partitioning = lk.get("partitioning", "round-robin")
            if validate_wiring:
                for endpoint in (from_op, to_op):
                    if endpoint not in graph.operators:
                        raise UnknownOperatorError(
                            f"link references undeclared operator {endpoint!r}"
                        )
                key = (from_op, to_op, stream)
                if key in seen_links:
                    raise DuplicateLinkError(
                        f"duplicate link {from_op!r}->{to_op!r} on stream {stream!r}"
                    )
                seen_links.add(key)
                resolve_partitioning(partitioning)  # PartitioningError on bad spec
            graph.link(
                from_op,
                to_op,
                stream=stream,
                partitioning=partitioning,
                compression=lk.get("compression"),
            )
        return graph

    @classmethod
    def from_json(cls, text: str, config: NeptuneConfig | None = None) -> "StreamProcessingGraph":
        """Build a graph from a JSON descriptor string."""
        return cls.from_descriptor(json.loads(text), config=config)


def descriptor_factory(class_path: str, /, **kwargs: Any) -> OperatorFactory:
    """Factory from an import path ``"pkg.module:ClassName"``.

    The returned callable carries its target so :meth:`to_descriptor`
    can round-trip the graph.  ``class_path`` is positional-only so
    operator constructors may themselves take keywords named like it
    (e.g. ``FileSink(path=...)``).
    """
    module_name, _, class_name = class_path.partition(":")
    if not module_name or not class_name:
        raise GraphValidationError(
            f"operator class path must be 'module:Class', got {class_path!r}"
        )

    def factory() -> StreamOperator:
        """Build the operator instance."""
        module = importlib.import_module(module_name)
        cls_obj = getattr(module, class_name)
        return cls_obj(**kwargs)

    factory._descriptor_target = (class_path, kwargs)  # type: ignore[attr-defined]
    return factory
