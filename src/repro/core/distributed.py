"""Distributed deployment: a graph spanning multiple Granules resources.

The paper runs NEPTUNE jobs across Granules resources on separate
machines connected by TCP (§II, §IV-A).  This module provides that
deployment shape:

- :func:`round_robin_plan` assigns every operator *instance* to a
  worker (resource).
- :class:`DistributedWorker` hosts one worker's partition: its operator
  instances run on a local :class:`~repro.granules.resource.Resource`;
  link legs whose destination is local use in-process channels, remote
  legs ride :class:`~repro.net.transport.TcpTransport` /
  :class:`~repro.net.transport.TcpListener` with checksummed,
  sequence-verified frames.
- :class:`DistributedJob` coordinates N workers (typically one per
  process or machine; they may also be co-hosted for tests — the full
  TCP path is exercised either way), including graceful drain.

Backpressure works across workers exactly as §III-B4 describes: a gated
inbound channel blocks the listener's reader thread, the kernel receive
buffer fills, TCP's window closes, and the sender's blocking
``sendall`` parks the flushing thread.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any

from repro.compression import CompressionPolicy
from repro.core.buffering import FlushTimerService, StreamBuffer, retune_matching
from repro.core.graph import StreamProcessingGraph
from repro.core.job import JobState
from repro.core.runtime import (
    _InLinkInfo,
    _InstanceRuntime,
    _JobRuntime,
    NeptuneRuntime,
)
from repro.core.serde import PacketCodec
from repro.granules.resource import Resource
from repro.granules.scheduler import DataDrivenStrategy
from repro.granules.task import TaskState
from repro.net.flowcontrol import ChannelClosed
from repro.net.framing import Frame
from repro.net.transport import TcpListener, TcpTransport
from repro.observe.tracing import LegTrace, encode_notes
from repro.util.errors import GraphValidationError, NeptuneError, TransportError


@dataclass(frozen=True)
class DeploymentPlan:
    """Instance → worker assignment for one graph."""

    n_workers: int
    #: (operator name, instance index) → worker index.
    assignment: dict

    def worker_of(self, op: str, instance: int) -> int:
        """The worker hosting (operator, instance)."""
        return self.assignment[(op, instance)]

    def instances_on(self, worker: int) -> list[tuple[str, int]]:
        """The (operator, instance) pairs hosted by a worker."""
        return sorted(k for k, w in self.assignment.items() if w == worker)


def round_robin_plan(graph: StreamProcessingGraph, n_workers: int) -> DeploymentPlan:
    """Spread instances across workers round-robin, stage-major.

    Keeping an operator's instances on distinct workers load-balances
    both CPU and network, mirroring the paper's horizontal scaling
    (§III-A5).
    """
    if n_workers <= 0:
        raise GraphValidationError(f"n_workers must be positive: {n_workers}")
    graph.validate()
    assignment = {}
    cursor = 0
    for spec in graph.operators.values():
        for idx in range(spec.parallelism):
            assignment[(spec.name, idx)] = cursor % n_workers
            cursor += 1
    return DeploymentPlan(n_workers=n_workers, assignment=assignment)


def capability_weighted_plan(
    graph: StreamProcessingGraph, capabilities: list[float]
) -> DeploymentPlan:
    """Assign instances proportional to per-worker capability.

    The paper's §VI future work: "a dynamic deployment model that
    leverages the available capabilities of cluster nodes".  A worker
    with capability 2.0 receives roughly twice the instances of one
    with 1.0 (largest-remainder apportionment, then stage-major fill),
    so a heterogeneous cluster (the testbed's DL160s vs DL320es) is not
    bottlenecked by its weakest machine.
    """
    if not capabilities:
        raise GraphValidationError("capabilities must name at least one worker")
    if any(c <= 0 for c in capabilities):
        raise GraphValidationError(f"capabilities must be positive: {capabilities}")
    graph.validate()
    n_workers = len(capabilities)
    total_instances = graph.total_instances()
    total_cap = sum(capabilities)
    # Largest-remainder apportionment of instance counts.
    quotas = [c / total_cap * total_instances for c in capabilities]
    counts = [int(q) for q in quotas]
    remainders = sorted(
        range(n_workers), key=lambda w: quotas[w] - counts[w], reverse=True
    )
    for w in remainders:
        if sum(counts) >= total_instances:
            break
        counts[w] += 1
    # Place instance by instance on the worker with the most remaining
    # quota, so each operator's instances spread across workers instead
    # of clustering on one.
    remaining = counts[:]
    assignment = {}
    for spec in graph.operators.values():
        for idx in range(spec.parallelism):
            w = max(range(n_workers), key=lambda i: (remaining[i], capabilities[i]))
            remaining[w] -= 1
            assignment[(spec.name, idx)] = w
    return DeploymentPlan(n_workers=n_workers, assignment=assignment)


class DistributedWorker:
    """One worker's partition of a distributed NEPTUNE job."""

    def __init__(
        self,
        worker_id: int,
        graph: StreamProcessingGraph,
        plan: DeploymentPlan,
        listen_host: str = "127.0.0.1",
        listen_port: int = 0,
        injector=None,
        observer=None,
    ) -> None:
        graph.validate()
        if not 0 <= worker_id < plan.n_workers:
            raise GraphValidationError(
                f"worker_id {worker_id} out of range for {plan.n_workers} workers"
            )
        self.worker_id = worker_id
        self.graph = graph
        self.plan = plan
        self.observer = observer  # repro.observe.RuntimeObserver | None
        self.job = _JobRuntime(graph, observer=observer)
        self._flush_service = FlushTimerService()
        self._resource: Resource | None = None
        # Inbound routing: global wire id → (channel, in_info).
        self._inbound: dict[int, tuple] = {}
        self._injector = injector
        # Recovery protocol (ack + replay + duplicate suppression) is
        # symmetric: the listener speaks it iff our outbound transports
        # do, and every worker derives that from the shared config.
        self._retry = graph.config.retry_policy()
        recovery = self._retry is not None
        self._listener = TcpListener(
            listen_host,
            listen_port,
            sink=self._on_frame,
            ack=recovery,
            resume=recovery,
            injector=injector,
            site=f"tcp.recv.w{worker_id}",
        )
        self._transports: dict[int, TcpTransport] = {}
        #: Terminal link failures (retry budget exhausted), keyed by
        #: destination worker id.
        self.link_failures: dict[int, BaseException] = {}
        self._link_failure_callbacks: list = []
        self._started = False
        self._lock = threading.Lock()

    def on_link_failure(self, callback) -> None:
        """Register ``callback(dest_worker_id, exc)`` fired when a link's
        retry budget is exhausted (the checkpoint-replay trigger)."""
        self._link_failure_callbacks.append(callback)

    def _record_link_failure(self, worker: int, exc: BaseException) -> None:
        self.link_failures.setdefault(worker, exc)
        for cb in self._link_failure_callbacks:
            try:
                cb(worker, exc)
            except Exception:
                pass  # notification must not mask the link failure

    # -- addressing -----------------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        """(host, port) of this worker's data listener."""
        return (self._listener.host, self._listener.port)

    # -- wiring -----------------------------------------------------------------
    def connect(self, endpoints: dict[int, tuple]) -> None:
        """Create instances and wire all link legs.

        ``endpoints`` maps worker id → (host, port) for every worker
        (including this one).  Must be called on every worker before
        :meth:`start`.
        """
        cfg = self.graph.config
        # 1. Local instances (remote ones are represented by wiring only).
        for spec in self.graph.operators.values():
            instances = []
            for idx in range(spec.parallelism):
                if self.plan.worker_of(spec.name, idx) == self.worker_id:
                    instances.append(_InstanceRuntime(self.job, spec, idx))
            self.job.instances[spec.name] = instances

        local = {
            (inst.spec.name, inst.index): inst for inst in self.job.all_instances()
        }

        # 2. Wire legs.  Wire ids are derived deterministically from the
        #    (link, sender, receiver) triple so every worker computes the
        #    same ids without coordination.
        for link in self.graph.links:
            senders = self.graph.operators[link.from_op].parallelism
            receivers = self.graph.operators[link.to_op].parallelism
            compression_on = NeptuneRuntime._compression_enabled(cfg, link)
            for s_idx in range(senders):
                sender_here = (link.from_op, s_idx) in local
                out = None
                if sender_here:
                    from repro.core.runtime import _OutLinkRuntime

                    out = _OutLinkRuntime(link)
                    if compression_on:
                        out.policy = CompressionPolicy(
                            enabled=True,
                            entropy_threshold=cfg.compression_entropy_threshold,
                            min_size=cfg.compression_min_size,
                        )
                for r_idx in range(receivers):
                    wire_id = self._wire_id(link.link_id, s_idx, r_idx)
                    receiver_worker = self.plan.worker_of(link.to_op, r_idx)
                    if receiver_worker == self.worker_id:
                        inst = local[(link.to_op, r_idx)]
                        info = _InLinkInfo(PacketCodec(link.schema), compression_on)
                        self._inbound[wire_id] = (inst.channel, info)
                    if not sender_here:
                        continue
                    leg = LegTrace() if self.observer is not None else None
                    owner: list = []  # filled with the buffer below
                    sink = self._make_leg_sink(
                        wire_id,
                        receiver_worker,
                        endpoints,
                        compression_on,
                        link,
                        cfg,
                        out.policy,
                        leg,
                        owner,
                    )
                    buf = StreamBuffer(
                        capacity=cfg.buffer_capacity,
                        sink=sink,
                        max_delay=cfg.buffer_max_delay,
                        name=f"w{self.worker_id}:{link.from_op}[{s_idx}]->"
                        f"{link.to_op}[{r_idx}]/{link.stream}",
                        trace_leg=leg,
                        observer=self.observer,
                    )
                    owner.append(buf)
                    if receiver_worker == self.worker_id:
                        # Co-located leg: the receiver returns stolen
                        # flush bytearrays straight to this buffer.
                        self._inbound[wire_id][1].recycle = buf.recycle
                    out.buffers.append(buf)
                    out.wire_ids.append(wire_id)
                    self.job.buffers.append(buf)
                    self._flush_service.register(buf)
                if sender_here:
                    sender_inst = local[(link.from_op, s_idx)]
                    sender_inst.out_links.setdefault(link.stream, []).append(out)

        # Watermark gate transitions land on the observer's timeline,
        # same as the single-process runtime — including the throttled
        # upstream operators (bare graph names), so the doctor's
        # cascade closure works across worker boundaries.
        if self.observer is not None:
            upstream: dict = {}
            for link in self.graph.links:
                ops = upstream.setdefault(link.to_op, [])
                if link.from_op not in ops:
                    ops.append(link.from_op)
            for inst in self.job.all_instances():
                if inst.channel is not None:
                    inst.channel.on_gate_change(
                        NeptuneRuntime._make_gate_callback(
                            self.observer,
                            f"w{self.worker_id}:{inst.op_label}",
                            inst.channel,
                            tuple(upstream.get(inst.spec.name, ())),
                        )
                    )

    @staticmethod
    def _wire_id(link_id: int, s_idx: int, r_idx: int) -> int:
        # 12 bits each for sender/receiver instance: ample for any graph.
        return (link_id << 24) | (s_idx << 12) | r_idx

    def _make_leg_sink(
        self, wire_id, receiver_worker, endpoints, compression_on, link, cfg, policy,
        leg=None, owner=None,
    ):
        def claim_trace() -> bytes:
            # Runs under the buffer's flush lock, right after the take
            # deposited this batch's stamped notes on the leg.
            if leg is None or not leg.pending:
                return b""
            notes = leg.claim()
            send_ts = time.monotonic()
            for note in notes:
                note.send_ts = send_ts
            return encode_notes(notes)

        if receiver_worker == self.worker_id:
            channel, info = self._inbound[wire_id]
            seq = [0]

            def local_sink(
                body: bytes | bytearray | memoryview, count: int
            ) -> None:
                """Deliver one flushed batch into a co-located channel."""
                raw = None
                if policy is not None:
                    raw = body
                    body = policy.encode(body)
                trace = claim_trace()
                from repro.net.framing import FrameHeader

                frame = Frame(
                    FrameHeader(wire_id, seq[0], count, len(body), 0), body, trace
                )
                seq[0] += 1
                try:
                    ok = channel.put(
                        len(body),
                        (frame, time.monotonic(), info),
                        timeout=cfg.emit_timeout,
                    )
                except ChannelClosed:
                    raise NeptuneError(f"wire {wire_id}: channel closed") from None
                if not ok:
                    raise NeptuneError(f"wire {wire_id}: emit timed out")
                if raw is not None and info.recycle is not None:
                    # Frame carries the compressed copy — the original
                    # flush bytearray goes straight back to the pool.
                    info.recycle(raw)

            return local_sink

        def remote_sink(body: bytes | bytearray | memoryview, count: int) -> None:
            """Ship one flushed batch to a remote worker over TCP."""
            raw = body
            if policy is not None:
                body = policy.encode(body)
            trace = claim_trace()
            # Resolved lazily: peer workers start asynchronously, so
            # their data listeners may not be accepting yet at wiring
            # time; the first flush waits for them.
            transport = self._transport_to(receiver_worker, endpoints)
            transport.send(wire_id, body, count, trace)
            if owner:
                # send() materialized the wire bytes (or wrote them
                # out), so the flush bytearray is consumed either way.
                owner[0].recycle(raw)

        return remote_sink

    def _transport_to(
        self, worker: int, endpoints: dict[int, tuple], connect_window: float = 30.0
    ) -> TcpTransport:
        with self._lock:
            transport = self._transports.get(worker)
        if transport is not None:
            return transport
        # Connect OUTSIDE the lock: a slow-starting peer can take most
        # of ``connect_window``, and holding ``_lock`` for that long
        # would stall every other wire's first flush and the stats
        # snapshots.  Losing a connect race is handled below.
        host, port = endpoints[worker]
        deadline = time.monotonic() + connect_window
        while True:
            try:
                transport = TcpTransport(
                    host,
                    port,
                    retry=self._retry,
                    injector=self._injector,
                    site=f"tcp.send.w{self.worker_id}->w{worker}",
                    on_link_failure=lambda exc, w=worker: self._record_link_failure(
                        w, exc
                    ),
                    observer=self.observer,
                )
                break
            except TransportError:
                if time.monotonic() >= deadline:
                    raise
                time.sleep(0.05)
        with self._lock:
            existing = self._transports.setdefault(worker, transport)
        if existing is not transport:
            transport.close()  # lost the race; the winner carries the wire
        return existing

    # -- inbound ------------------------------------------------------------------
    def _on_frame(self, frame: Frame) -> None:
        entry = self._inbound.get(frame.link_id)
        if entry is None:
            raise NeptuneError(
                f"worker {self.worker_id}: frame for unknown wire {frame.link_id}"
            )
        channel, info = entry
        # Strip the already-verified TCP sequence and renumber locally:
        # the instance runtime re-verifies per-wire continuity.
        channel.put(len(frame.body), (frame, time.monotonic(), info))

    # -- lifecycle -----------------------------------------------------------------
    def start(self) -> None:
        """Start background threads/services. Idempotent."""
        if self._started:
            return
        self._started = True
        self._flush_service.start()
        hosted = len(self.job.all_instances())
        workers = self.graph.config.effective_workers(max(hosted, 1))
        self._resource = Resource(f"worker-{self.worker_id}", workers=workers)
        self._resource.start()
        from repro.core.runtime import _SourceStrategy

        for inst in self.job.all_instances():
            strategy = (
                _SourceStrategy(inst) if inst.spec.is_source else DataDrivenStrategy()
            )
            self._resource.launch(inst, strategy)
        self.job.state = JobState.RUNNING

    def finish_sources(self) -> None:
        """Mark all local sources finished (drain begins)."""
        for inst in self.job.all_instances():
            if inst.spec.is_source:
                inst.finished = True

    def prepare_drain(self) -> None:
        """Switch custom-scheduled processors to data-driven dispatch so
        sub-threshold leftovers cannot be stranded during the drain."""
        if self._resource is None:
            return
        for inst in self.job.all_instances():
            if not inst.spec.is_source and inst.spec.scheduling is not None:
                try:
                    self._resource.set_strategy(inst.task_id, DataDrivenStrategy())
                except KeyError:
                    pass

    def flush_all(self) -> None:
        """Force-flush every outbound buffer and nudge transport
        delivery (replay stalled/unacknowledged frames)."""
        for inst in self.job.all_instances():
            inst.flush_all()
        with self._lock:
            transports = list(self._transports.values())
        for t in transports:
            if t.unacked_frames:
                t.ensure_delivered(timeout=0.05, stall=0.3)

    def is_quiet(self) -> bool:
        """Locally quiescent: no running task, empty channels/buffers,
        and every sent frame acknowledged by its receiver."""
        for inst in self.job.all_instances():
            if inst.spec.is_source and not inst.finished:
                return False
            if inst.state is TaskState.RUNNING:
                return False
            if inst.channel is not None and len(inst.channel) > 0:
                return False
            if inst.pending_out_bytes > 0:
                return False
        with self._lock:
            transports = list(self._transports.values())
        return not any(t.unacked_frames for t in transports)

    @property
    def failures(self) -> dict[str, BaseException]:
        """Operator-instance failures keyed by 'operator[index]',
        plus terminal link failures keyed by 'link->workerN'."""
        out = {}
        for inst in self.job.all_instances():
            if inst.failure is not None:
                out[f"{inst.spec.name}[{inst.index}]"] = inst.failure
        for worker, exc in self.link_failures.items():
            out[f"link->worker{worker}"] = exc
        return out

    def metrics(self) -> dict:
        """Aggregated per-operator counters."""
        return self.job.metrics.snapshot()

    def reconfigure(self, changes: dict) -> dict:
        """Apply a live reconfiguration to this shard (control-plane
        ``reconfigure`` command; see the policy engine's act path).

        ``changes`` mirrors :meth:`NeptuneRuntime.reconfigure`:
        ``retune`` adjusts the StreamBuffers on the legs into/out of an
        operator this worker sends on (a shrinking deadline pokes the
        flush-timer service so the tighter bound applies immediately);
        ``scale`` resizes this worker's Granules thread pool.  Returns
        a JSON-able report of what was applied — an empty ``applied``
        list when this shard owns none of the named operator's legs.
        """
        report: dict = {"worker": self.worker_id, "applied": []}
        retune = changes.get("retune")
        if retune:
            md = retune.get("max_delay")
            cap = retune.get("capacity")
            applied = retune_matching(
                self.job.buffers,
                str(retune.get("operator", "")),
                where=str(retune.get("where", "into")),
                max_delay=None if md is None else float(md),
                capacity=None if cap is None else int(cap),
            )
            for entry in applied:
                report["applied"].append({"kind": "retune", **entry})
        scale = changes.get("scale")
        if scale and self._resource is not None:
            old = self._resource.workers
            delta = scale.get("workers_delta")
            target = old + int(delta) if delta is not None else int(scale.get("workers", old))
            new = self._resource.resize(max(1, target))
            report["applied"].append({"kind": "scale", "from": old, "to": new})
        return report

    def stop(self, timeout: float = 10.0) -> None:
        """Stop and release resources. Idempotent."""
        if self._resource is not None:
            for inst in self.job.all_instances():
                self._resource.terminate_task(inst.task_id)
            self._resource.stop(timeout)
            self._resource = None
        self._flush_service.stop()
        for t in self._transports.values():
            t.close()
        self._listener.close()
        self.job.state = (
            JobState.FAILED if self.failures else JobState.STOPPED
        )


class DistributedJob:
    """Coordinates a set of workers hosting one graph.

    For same-process multi-worker deployments (tests, examples): builds
    the workers, exchanges endpoints, starts everything, and implements
    the global drain.  Multi-process deployments construct one
    :class:`DistributedWorker` per process with identical (graph, plan)
    and exchange endpoints out of band, then drive the same methods.
    """

    def __init__(
        self,
        graph: StreamProcessingGraph,
        n_workers: int = 2,
        injector: Any = None,
        observer: Any = None,
    ) -> None:
        self.graph = graph
        self.plan = round_robin_plan(graph, n_workers)
        self.workers = [
            DistributedWorker(w, graph, self.plan, injector=injector, observer=observer)
            for w in range(n_workers)
        ]
        endpoints = {w.worker_id: w.address for w in self.workers}
        for w in self.workers:
            w.connect(endpoints)

    def start(self) -> None:
        """Start background threads/services. Idempotent."""
        for w in self.workers:
            w.start()

    def failures(self) -> dict[str, BaseException]:
        """Operator-instance failures keyed by 'operator[index]'."""
        out = {}
        for w in self.workers:
            out.update(w.failures)
        return out

    def metrics(self) -> dict:
        """Aggregated per-operator counters."""
        merged: dict = {}
        for w in self.workers:
            for op, m in w.metrics().items():
                if op not in merged:
                    merged[op] = dict(m)
                else:
                    for k, v in m.items():
                        merged[op][k] += v
        return merged

    def await_completion(self, timeout: float = 60.0) -> bool:
        """Wait until sources finish naturally and the graph drains."""
        return self._drain(timeout, force=False)

    def stop(self, timeout: float = 60.0) -> bool:
        """Finish sources now, drain, and tear everything down."""
        return self._drain(timeout, force=True)

    def _drain(self, timeout: float, force: bool) -> bool:
        for w in self.workers:
            w.prepare_drain()
        if force:
            for w in self.workers:
                w.finish_sources()
        deadline = time.monotonic() + timeout
        quiesced = False
        while time.monotonic() < deadline:
            if self.failures():
                break
            for w in self.workers:
                w.flush_all()
            if all(w.is_quiet() for w in self.workers):
                # Allow in-flight TCP frames to land, then re-verify.
                time.sleep(0.05)
                for w in self.workers:
                    w.flush_all()
                if all(w.is_quiet() for w in self.workers):
                    quiesced = True
                    break
            time.sleep(0.005)
        for w in self.workers:
            w.stop()
        return quiesced
