"""Generic object pools (paper §III-B3).

Object reuse "reduces the number of short-lived runtime objects at a
NEPTUNE process, which in turn reduces the strain on the garbage
collector".  In CPython the analogous costs are allocation,
``__init__`` execution, and reference-counting/GC pressure; the GC
benchmark (``benchmarks/bench_gc_object_reuse.py``) measures both modes.

:class:`ObjectPool` is a thread-safe free-list with a factory and an
optional reset hook.  ``acquire``/``release`` or the ``lease`` context
manager.  Bounded pools either grow through the bound (default,
``strict=False``, allocating overflow objects that are *not* retained on
release) or raise :class:`~repro.util.errors.PoolExhausted`.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Any, Callable, Generic, Iterator, TypeVar

from repro.util.errors import PoolExhausted

T = TypeVar("T")


class ObjectPool(Generic[T]):
    """Thread-safe free-list pool.

    Parameters
    ----------
    factory:
        Zero-argument callable creating a new object.
    reset:
        Optional callable invoked on an object when it is released back,
        restoring it to a clean state (e.g. ``StreamPacket.reset``).
    max_size:
        Free-list capacity.  ``strict=True`` makes ``acquire`` raise
        when all ``max_size`` objects are leased; otherwise overflow
        objects are freshly allocated and dropped on release.
    preallocate:
        Objects to create eagerly (warm pools avoid first-use jitter).
    """

    def __init__(
        self,
        factory: Callable[[], T],
        reset: Callable[[T], Any] | None = None,
        max_size: int = 1024,
        strict: bool = False,
        preallocate: int = 0,
    ) -> None:
        if max_size <= 0:
            raise ValueError(f"max_size must be positive: {max_size}")
        if preallocate < 0 or preallocate > max_size:
            raise ValueError(f"preallocate must be in [0, max_size]: {preallocate}")
        self._factory = factory
        self._reset = reset
        self._max_size = max_size
        self._strict = strict
        self._lock = threading.Lock()
        self._free: list[T] = [factory() for _ in range(preallocate)]
        self._leased = 0
        # Stats used by the object-reuse benchmarks.
        self.preallocated = preallocate
        self.created = preallocate
        self.reused = 0
        self.overflow = 0

    def acquire(self) -> T:
        """Take an object from the pool (or allocate)."""
        with self._lock:
            if self._free:
                obj = self._free.pop()
                self._leased += 1
                self.reused += 1
                return obj
            if self._strict and self._leased >= self._max_size:
                raise PoolExhausted(
                    f"pool exhausted: {self._leased}/{self._max_size} leased"
                )
            self._leased += 1
            self.created += 1
            if self._leased > self._max_size:
                self.overflow += 1
        return self._factory()

    def release(self, obj: T) -> None:
        """Return an object; it is reset and kept if capacity allows."""
        if self._reset is not None:
            self._reset(obj)
        with self._lock:
            self._leased = max(0, self._leased - 1)
            if len(self._free) < self._max_size:
                self._free.append(obj)
            # else: overflow object — let the GC take it.

    @contextmanager
    def lease(self) -> Iterator[T]:
        """``with pool.lease() as obj:`` acquire/release scope."""
        obj = self.acquire()
        try:
            yield obj
        finally:
            self.release(obj)

    @property
    def free_count(self) -> int:
        """Objects currently on the free list."""
        with self._lock:
            return len(self._free)

    @property
    def leased_count(self) -> int:
        """Objects currently leased out."""
        with self._lock:
            return self._leased

    @property
    def reuse_ratio(self) -> float:
        """Fraction of acquisitions served from the free list."""
        acquisitions = self.reused + (self.created - self.preallocated)
        if acquisitions <= 0:
            return 0.0
        return self.reused / acquisitions
