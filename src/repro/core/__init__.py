"""NEPTUNE core: the paper's primary contribution (§III).

The programming model — stream packets, sources, processors, links,
parallelism, partitioning schemes, and stream-processing graphs — plus
the high-throughput machinery: application-level buffering, batched
scheduling, object reuse, backpressure, and selective compression, all
executed on a two-tier (worker + IO) thread model over the Granules
substrate.
"""

from repro.core.fieldtypes import FieldType
from repro.core.packet import PacketSchema, StreamPacket
from repro.core.serde import PacketCodec
from repro.core.object_pool import ObjectPool
from repro.core.buffering import StreamBuffer
from repro.core.partitioning import (
    PartitioningScheme,
    RoundRobinPartitioning,
    ShufflePartitioning,
    FieldsPartitioning,
    BroadcastPartitioning,
    register_partitioning,
    resolve_partitioning,
)
from repro.core.operators import (
    StreamSource,
    StreamProcessor,
    FunctionProcessor,
    EmitContext,
)
from repro.core.graph import StreamProcessingGraph, OperatorSpec, LinkSpec
from repro.core.config import NeptuneConfig
from repro.core.runtime import NeptuneRuntime
from repro.core.job import JobHandle, JobState
from repro.core.windows import SlidingWindow, TumblingCountWindow
from repro.core.monitor import ThroughputProbe
from repro.core.checkpoint import Checkpoint

__all__ = [
    "FieldType",
    "PacketSchema",
    "StreamPacket",
    "PacketCodec",
    "ObjectPool",
    "StreamBuffer",
    "PartitioningScheme",
    "RoundRobinPartitioning",
    "ShufflePartitioning",
    "FieldsPartitioning",
    "BroadcastPartitioning",
    "register_partitioning",
    "resolve_partitioning",
    "StreamSource",
    "StreamProcessor",
    "FunctionProcessor",
    "EmitContext",
    "StreamProcessingGraph",
    "OperatorSpec",
    "LinkSpec",
    "NeptuneConfig",
    "NeptuneRuntime",
    "JobHandle",
    "JobState",
    "SlidingWindow",
    "TumblingCountWindow",
    "ThroughputProbe",
    "Checkpoint",
]
