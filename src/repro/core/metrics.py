"""Runtime metrics: throughput, latency, bandwidth (the paper's three
evaluation metrics, §IV) plus operator-level counters.

Counters are lock-free from the owning thread's perspective: each
operator instance executes serialized, so its counter instance has a
single writer; readers take snapshots that may be one packet stale —
fine for monitoring.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass, field


class LatencyRecorder:
    """Reservoir of latency samples with percentile queries.

    Keeps up to ``max_samples`` via reservoir sampling so long runs
    don't grow memory while percentiles stay representative.
    """

    def __init__(self, max_samples: int = 8192, seed: int = 17) -> None:
        import random

        self._max = max_samples
        self._samples: list[float] = []
        self._seen = 0
        self._rng = random.Random(seed)
        self._lock = threading.Lock()

    def record(self, seconds: float) -> None:
        """Record one observation."""
        with self._lock:
            self._seen += 1
            if len(self._samples) < self._max:
                self._samples.append(seconds)
            else:
                j = self._rng.randrange(self._seen)
                if j < self._max:
                    self._samples[j] = seconds

    def percentile(self, p: float) -> float:
        """p in [0, 100]; returns NaN with no samples."""
        return self.percentiles([p])[0]

    def percentiles(self, ps: list[float]) -> list[float]:
        """Batch percentile query: validates all ``ps``, snapshots and
        sorts the reservoir once, and answers every query against that
        one sorted copy.  Returns NaN per query with no samples."""
        for p in ps:
            if not 0 <= p <= 100:
                raise ValueError(f"percentile out of range: {p}")
        with self._lock:
            data = sorted(self._samples)
        if not data:
            return [math.nan] * len(ps)
        out: list[float] = []
        for p in ps:
            k = (len(data) - 1) * p / 100.0
            lo = math.floor(k)
            hi = math.ceil(k)
            if lo == hi:
                out.append(data[lo])
            else:
                out.append(data[lo] + (data[hi] - data[lo]) * (k - lo))
        return out

    @property
    def count(self) -> int:
        """Number of observations recorded."""
        with self._lock:
            return self._seen

    def mean(self) -> float:
        """Arithmetic mean of the recorded samples."""
        with self._lock:
            if not self._samples:
                return math.nan
            return sum(self._samples) / len(self._samples)


@dataclass
class OperatorMetrics:
    """Per-operator-instance counters."""

    operator: str = ""
    instance: int = 0
    packets_in: int = 0
    packets_out: int = 0
    bytes_in: int = 0
    bytes_out: int = 0
    batches_in: int = 0
    executions: int = 0
    emit_block_seconds: float = 0.0
    latency: LatencyRecorder = field(default_factory=LatencyRecorder)


@dataclass
class ThroughputWindow:
    """Rate computation over an observation window."""

    packets: int = 0
    bytes: int = 0
    seconds: float = 0.0

    @property
    def packets_per_second(self) -> float:
        """Packet rate over the observation window."""
        return self.packets / self.seconds if self.seconds > 0 else 0.0

    @property
    def megabits_per_second(self) -> float:
        """Byte rate over the window, in Mbit/s."""
        return self.bytes * 8 / 1e6 / self.seconds if self.seconds > 0 else 0.0


class MetricsRegistry:
    """All metrics for one runtime; snapshot-able for monitoring."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._operators: dict[tuple[str, int], OperatorMetrics] = {}

    def for_operator(self, operator: str, instance: int) -> OperatorMetrics:
        """The (created-on-demand) counters for one operator instance."""
        with self._lock:
            key = (operator, instance)
            if key not in self._operators:
                self._operators[key] = OperatorMetrics(operator=operator, instance=instance)
            return self._operators[key]

    def operators(self) -> list[OperatorMetrics]:
        """Snapshot of all per-instance metric objects (for exporters)."""
        with self._lock:
            return list(self._operators.values())

    def snapshot(self) -> dict[str, dict]:
        """Aggregated per-operator totals (summed over instances)."""
        with self._lock:
            entries = list(self._operators.values())
        agg: dict[str, dict] = {}
        for m in entries:
            a = agg.setdefault(
                m.operator,
                {
                    "instances": 0,
                    "packets_in": 0,
                    "packets_out": 0,
                    "bytes_in": 0,
                    "bytes_out": 0,
                    "batches_in": 0,
                    "executions": 0,
                    "emit_block_seconds": 0.0,
                },
            )
            a["instances"] += 1
            a["packets_in"] += m.packets_in
            a["packets_out"] += m.packets_out
            a["bytes_in"] += m.bytes_in
            a["bytes_out"] += m.bytes_out
            a["batches_in"] += m.batches_in
            a["executions"] += m.executions
            a["emit_block_seconds"] += m.emit_block_seconds
        return agg
