"""Job monitoring: periodic throughput/backlog probes.

The paper's experiments report throughput over observation windows
(e.g. Fig. 4's source-rate timeline).  :class:`ThroughputProbe` samples
a job's metrics on an interval and keeps a bounded history of
per-window rates, usable live (``latest``) or after the run
(``history``).
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass


@dataclass(frozen=True)
class ProbeSample:
    """One observation window of one operator."""

    t: float
    operator: str
    packets_in_per_s: float
    packets_out_per_s: float
    bytes_in_per_s: float


class ThroughputProbe:
    """Samples a JobHandle's metrics on a fixed interval.

    Usage::

        probe = ThroughputProbe(handle, interval=0.5)
        probe.start()
        ...
        probe.stop()
        for sample in probe.history("relay"):
            ...
    """

    def __init__(self, handle, interval: float = 1.0, max_history: int = 3600) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive: {interval}")
        self.handle = handle
        self.interval = interval
        self._history: dict[str, deque[ProbeSample]] = {}
        self._last: dict[str, tuple[float, int, int, int]] = {}
        self._max_history = max_history
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._lock = threading.Lock()

    def start(self) -> "ThroughputProbe":
        """Start background threads/services. Idempotent."""
        if self._thread is not None:
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="neptune-probe", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop and release resources. Idempotent."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(5.0)
            self._thread = None

    def __enter__(self) -> "ThroughputProbe":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    def sample_once(self) -> None:
        """Take one sample immediately (also used by the loop)."""
        import time

        now = time.monotonic()
        snapshot = self.handle.metrics()
        with self._lock:
            for op, m in snapshot.items():
                prev = self._last.get(op)
                self._last[op] = (now, m["packets_in"], m["packets_out"], m["bytes_in"])
                if prev is None:
                    continue
                t0, pin, pout, bin_ = prev
                dt = now - t0
                if dt <= 0:
                    continue
                sample = ProbeSample(
                    t=now,
                    operator=op,
                    packets_in_per_s=(m["packets_in"] - pin) / dt,
                    packets_out_per_s=(m["packets_out"] - pout) / dt,
                    bytes_in_per_s=(m["bytes_in"] - bin_) / dt,
                )
                hist = self._history.setdefault(op, deque(maxlen=self._max_history))
                hist.append(sample)

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            self.sample_once()

    def history(self, operator: str) -> list[ProbeSample]:
        """All samples recorded for an operator, oldest first."""
        with self._lock:
            return list(self._history.get(operator, ()))

    def latest(self, operator: str) -> ProbeSample | None:
        """The most recent sample for an operator, or None."""
        with self._lock:
            hist = self._history.get(operator)
            return hist[-1] if hist else None

    def operators(self) -> list[str]:
        """Names of operators with recorded samples."""
        with self._lock:
            return sorted(self._history)
