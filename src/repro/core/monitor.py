"""Job monitoring: periodic throughput/backlog probes.

The paper's experiments report throughput over observation windows
(e.g. Fig. 4's source-rate timeline).  :class:`ThroughputProbe` samples
a job's metrics on an interval and keeps a bounded history of
per-window rates, usable live (``latest``) or after the run
(``history``).
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass


@dataclass(frozen=True)
class ProbeSample:
    """One observation window of one operator."""

    t: float
    operator: str
    packets_in_per_s: float
    packets_out_per_s: float
    bytes_in_per_s: float


class ThroughputProbe:
    """Samples a JobHandle's metrics on a fixed interval.

    Usage::

        probe = ThroughputProbe(handle, interval=0.5)
        probe.start()
        ...
        probe.stop()
        for sample in probe.history("relay"):
            ...
    """

    def __init__(self, handle, interval: float = 1.0, max_history: int = 3600) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive: {interval}")
        self.handle = handle
        self.interval = interval
        self._history: dict[str, deque[ProbeSample]] = {}
        self._last: dict[str, tuple[float, int, int, int]] = {}
        self._max_history = max_history
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._lock = threading.Lock()
        # Guards start/stop transitions only; never held while joining
        # (the probe thread takes self._lock inside sample_once, so
        # joining under a lock it needs would deadlock) and never the
        # same lock as the sample data.
        self._lifecycle = threading.Lock()

    def start(self) -> "ThroughputProbe":
        """Start background threads/services. Idempotent."""
        with self._lifecycle:
            if self._thread is not None:
                return self
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._loop, name="neptune-probe", daemon=True
            )
            self._thread.start()
        return self

    def stop(self, timeout: float = 5.0) -> None:
        """Stop and release resources. Idempotent and safe to call
        concurrently or mid-sample: the join happens outside all locks
        and is bounded by ``timeout``."""
        self._stop.set()
        with self._lifecycle:
            thread, self._thread = self._thread, None
        if thread is not None:
            thread.join(timeout)

    def __enter__(self) -> "ThroughputProbe":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    def sample_once(self) -> None:
        """Take one sample immediately (also used by the loop)."""
        import time

        now = time.monotonic()
        snapshot = self.handle.metrics()
        with self._lock:
            # Bound history/last to operators still reported live, so a
            # reused probe (or a redeployed job) can't accumulate keys
            # for operators that no longer exist.
            for dead in set(self._last) - snapshot.keys():
                del self._last[dead]
                self._history.pop(dead, None)
            for op, m in snapshot.items():
                prev = self._last.get(op)
                self._last[op] = (now, m["packets_in"], m["packets_out"], m["bytes_in"])
                if prev is None:
                    continue
                t0, pin, pout, bin_ = prev
                dt = now - t0
                if dt <= 0:
                    continue
                sample = ProbeSample(
                    t=now,
                    operator=op,
                    packets_in_per_s=(m["packets_in"] - pin) / dt,
                    packets_out_per_s=(m["packets_out"] - pout) / dt,
                    bytes_in_per_s=(m["bytes_in"] - bin_) / dt,
                )
                hist = self._history.setdefault(op, deque(maxlen=self._max_history))
                hist.append(sample)

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                self.sample_once()
            except Exception:
                # A handle being torn down mid-sample is expected during
                # shutdown; anything else should surface.
                if self._stop.is_set():
                    return
                raise

    def history(self, operator: str) -> list[ProbeSample]:
        """All samples recorded for an operator, oldest first."""
        with self._lock:
            return list(self._history.get(operator, ()))

    def latest(self, operator: str) -> ProbeSample | None:
        """The most recent sample for an operator, or None."""
        with self._lock:
            hist = self._history.get(operator)
            return hist[-1] if hist else None

    def operators(self) -> list[str]:
        """Names of operators with recorded samples."""
        with self._lock:
            return sorted(self._history)
