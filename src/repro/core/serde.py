"""Packet (de)serialization with object reuse (paper §III-B3).

"Rather than separately and repeatedly create data structures used in
serialization and deserialization for individual messages, NEPTUNE
creates them once and reuses them for the entire set of buffered
messages."

A :class:`PacketCodec` is created once per (schema, link) and reused for
every batch:

- ``encode_into`` appends a packet's wire form to a caller-owned
  ``bytearray`` (the stream buffer) — no per-packet allocations beyond
  the bytes themselves.  On any encode error the output is truncated
  back to the record start, so a failed encode never leaves partial
  record bytes in a shared buffer.
- ``iter_decode`` walks a batch body yielding packets.  With
  ``reuse=True`` it yields the *same* pooled packet object refilled per
  record (zero packet allocations per message — callers must not retain
  it past the iteration step; ``clone()`` if they must).

By default the codec runs on a :class:`~repro.core.fieldtypes.CompiledSchema`:
every maximal run of consecutive fixed-width fields is one precompiled
``struct.Struct`` pack/unpack instead of per-field enum dispatch.  The
wire format is byte-identical to the per-field path (``compiled=False``),
which is kept as the reference implementation and the fallback for
equivalence testing.

Batch body layout: ``count`` records back to back, each record being the
schema's fields encoded in order (no per-record header: the schema is
static per link, which is precisely what makes the codec reusable).
"""

from __future__ import annotations

from typing import Iterator

from repro.core.fieldtypes import (
    FieldType,
    compile_fieldtypes,
    decode_field,
    encode_field,
)
from repro.core.packet import PacketSchema, StreamPacket
from repro.util.errors import SerializationError


class PacketCodec:
    """Reusable encoder/decoder for one packet schema.

    ``compiled=True`` (default) uses the fused fixed-width-run codec;
    ``compiled=False`` forces the per-field reference path (identical
    wire bytes, slower).
    """

    __slots__ = (
        "schema",
        "_plan",
        "_scratch",
        "_reused_packet",
        "packets_encoded",
        "packets_decoded",
    )

    def __init__(self, schema: PacketSchema, compiled: bool = True) -> None:
        self.schema = schema
        self._plan = compile_fieldtypes(schema.types) if compiled else None
        self._scratch = bytearray()
        self._reused_packet = StreamPacket(schema)
        self.packets_encoded = 0
        self.packets_decoded = 0

    def _clear_scratch(self) -> bytearray:
        """Reset the scratch buffer, surviving live memoryview exports.

        ``encode_view`` hands out a view of the scratch; its contract
        says the caller copies it out before the next encode, but a
        frame holder — the sampling profiler walking
        ``sys._current_frames``, a debugger, a stored traceback — can
        keep the previous emit's frame (and with it the view) alive
        past that window, and a bytearray with live exports cannot be
        resized.  Retire the old buffer to its view holder and start a
        fresh one instead of failing the data plane.
        """
        scratch = self._scratch
        try:
            scratch.clear()
        except BufferError:
            scratch = self._scratch = bytearray()
        return scratch

    # -- encoding -----------------------------------------------------------
    def encode_into(self, packet: StreamPacket, out: bytearray) -> int:
        """Append ``packet``'s wire form to ``out``; return bytes written.

        Exception-safe: when any field fails to encode, ``out`` is
        truncated back to its length on entry, so a shared stream
        buffer never accumulates a partial record.
        """
        if packet.schema != self.schema:
            raise SerializationError(
                f"packet schema {packet.schema!r} does not match codec schema {self.schema!r}"
            )
        if not packet.is_complete():
            missing = [
                n for n, v in zip(self.schema.names, packet.values) if v is None
            ]
            raise SerializationError(f"packet incomplete; unset fields: {missing}")
        start = len(out)
        values = packet._values
        plan = self._plan
        try:
            if plan is not None:
                plan.encode_values(values, out)
            else:
                for i, ftype in enumerate(self.schema.types):
                    encode_field(ftype, values[i], out)
        except Exception:
            # A mid-record failure (e.g. an out-of-range int32 on a
            # later field, or a bad list element after the length
            # prefix) must not strand partial bytes in the caller's
            # buffer — they would corrupt every later packet on the
            # link.
            del out[start:]
            raise
        self.packets_encoded += 1
        return len(out) - start

    def encode(self, packet: StreamPacket) -> bytes:
        """Encode one packet standalone (reusing the internal scratch)."""
        scratch = self._clear_scratch()
        self.encode_into(packet, scratch)
        return bytes(scratch)

    def encode_view(self, packet: StreamPacket) -> memoryview:
        """Encode one packet and return a view of the internal scratch.

        Zero-copy variant of :meth:`encode` for the emit hot path: the
        returned view is valid only until the next ``encode``/
        ``encode_view``/``encode_batch`` call on this codec, so the
        caller must copy it out (e.g. ``StreamBuffer.append`` does)
        before encoding again.  One codec belongs to one sender
        instance, whose executions are serialized — no locking needed.
        """
        scratch = self._clear_scratch()
        self.encode_into(packet, scratch)
        return memoryview(scratch)

    def encode_batch(self, packets: list[StreamPacket]) -> bytes:
        """Encode a batch into one body (reusing the internal scratch)."""
        scratch = self._clear_scratch()
        for pkt in packets:
            self.encode_into(pkt, scratch)
        return bytes(scratch)

    # -- decoding -----------------------------------------------------------
    def decode_one(self, buf: bytes | memoryview, offset: int = 0) -> tuple[StreamPacket, int]:
        """Decode one *fresh* packet at ``offset``; return (packet, end)."""
        pkt = StreamPacket(self.schema)
        end = self._fill(pkt, buf, offset)
        return pkt, end

    def iter_decode(
        self,
        body: bytes | bytearray | memoryview,
        count: int | None = None,
        reuse: bool = True,
    ) -> Iterator[StreamPacket]:
        """Yield packets decoded from ``body``.

        With ``reuse=True`` (NEPTUNE's frugal path) the same packet
        object is refilled and yielded each time.  ``count``, when
        given, is validated *eagerly*: an all-fixed-width schema checks
        the exact body size before the first yield, and any schema
        raises the moment the body is exhausted short of ``count`` (or
        a record beyond ``count`` appears) — so a consumer that stops
        iterating early still observes a short or overlong batch.
        """
        offset = 0
        n = 0
        view = memoryview(body) if not isinstance(body, memoryview) else body
        total = len(view)
        plan = self._plan
        if (
            count is not None
            and plan is not None
            and plan.record_size is not None
            and total != count * plan.record_size
        ):
            raise SerializationError(
                f"batch declared {count} packets "
                f"({count * plan.record_size} bytes), body has {total} bytes"
            )
        pooled = self._reused_packet
        while offset < total:
            pkt = pooled if reuse else StreamPacket(self.schema)
            offset = self._fill(pkt, view, offset)
            n += 1
            if count is not None and (
                n > count or (offset >= total and n < count)
            ):
                raise SerializationError(
                    f"batch declared {count} packets, decoded {n}"
                    + ("" if n > count else " before the body ended")
                )
            yield pkt
        if offset != total:
            raise SerializationError(
                f"batch body has {total - offset} trailing bytes"
            )  # pragma: no cover — _fill always lands exactly or raises
        if count is not None and n != count:
            raise SerializationError(f"batch declared {count} packets, decoded {n}")

    def _fill(
        self, pkt: StreamPacket, buf: bytes | bytearray | memoryview, offset: int
    ) -> int:
        values = pkt._values
        plan = self._plan
        if plan is not None:
            offset = plan.decode_into(values, buf, offset)
        else:
            for i, ftype in enumerate(self.schema.types):
                values[i], offset = decode_field(ftype, buf, offset)
        self.packets_decoded += 1
        return offset

    # -- sizing -------------------------------------------------------------
    def encoded_size(self, packet: StreamPacket) -> int:
        """Exact wire size of ``packet`` (cheap for fixed-width schemas)."""
        plan = self._plan
        if plan is not None and plan.record_size is not None:
            return plan.record_size
        size = 0
        for value, ftype in zip(packet.values, self.schema.types):
            fixed = ftype.fixed_size
            if fixed is not None:
                size += fixed
            elif ftype is FieldType.STRING:
                size += 4 + len(value.encode("utf-8"))
            elif ftype is FieldType.BYTES:
                size += 4 + len(value)
            else:  # lists
                size += 4 + 8 * len(value)
        return size
