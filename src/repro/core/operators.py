"""Stream operators: sources and processors (paper §III-A2, §III-A3).

- A :class:`StreamSource` ingests external data and emits packets into
  the graph ("typical implementations ... read data from message
  brokers and message queues" or pull from an IoT gateway).
- A :class:`StreamProcessor` encapsulates the domain logic to process a
  single packet and may emit packets on outgoing streams.  "Users need
  to provide processing logic for a single packet while NEPTUNE
  transparently manages batched execution." (§III-B2)

Operators interact with the framework only through the
:class:`EmitContext` the runtime passes in: ``ctx.emit(packet)`` routes
through partitioning → application-level buffer → transport, blocking
under backpressure.  User classes never see threads, buffers, or links.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Protocol

from repro.core.packet import PacketSchema, StreamPacket


class EmitContext(Protocol):
    """What an operator may do during an execution quantum."""

    @property
    def instance_index(self) -> int:
        """This operator instance's index in [0, parallelism)."""
        ...

    @property
    def parallelism(self) -> int:
        """Total instances of this operator."""
        ...

    def emit(self, packet: StreamPacket, stream: str | None = None) -> None:
        """Send ``packet`` on ``stream`` (default: sole outgoing stream).

        Blocks while downstream backpressure gates the path; raises
        :class:`~repro.util.errors.BackpressureTimeout` only when the
        job's ``emit_timeout`` is configured and exceeded.  Never drops.
        """
        ...

    def new_packet(self, stream: str | None = None) -> StreamPacket:
        """A (pooled) packet pre-bound to ``stream``'s schema.

        The packet returns to the pool after a successful ``emit``; do
        not retain it afterwards.
        """
        ...

    def finish(self) -> None:
        """Source only: declare the stream exhausted (stops scheduling)."""
        ...


class StreamOperator(ABC):
    """Shared base: lifecycle hooks and declared output schemas."""

    def __init__(self) -> None:
        #: Set by the runtime before ``setup``.
        self.name: str = type(self).__name__

    def setup(self, ctx: "EmitContext") -> None:
        """Called once per instance before the first execution."""

    def teardown(self) -> None:
        """Called once per instance at job shutdown."""

    @abstractmethod
    def output_schema(self, stream: str) -> PacketSchema:
        """Schema of the named outgoing stream.

        Graph validation calls this for every outgoing link and checks
        both endpoints agree.  Operators with no outputs may raise
        ``KeyError``.
        """

    def input_schema(self, stream: str) -> PacketSchema | None:
        """Optional declared *input contract* for an incoming stream.

        Return a :class:`PacketSchema` naming the fields (and wire
        types) this operator requires on the named inbound stream, or
        None to accept anything.  The contract is subset-based: the
        producer may carry extra fields, and integer/float widening
        (int32→int64, float32→float64) satisfies it.  Checked
        statically at graph validation (diagnostic NEPG113) — never
        consulted at runtime.
        """
        return None


class StreamSource(StreamOperator):
    """Ingests an external stream into the graph.

    The runtime calls :meth:`generate` repeatedly (one scheduling
    quantum each).  Implementations emit zero or more packets per call
    and call ``ctx.finish()`` when the external stream is exhausted.
    Emission rate control is natural: ``generate`` emitting one packet
    per call yields a tight loop throttled purely by backpressure.
    """

    @abstractmethod
    def generate(self, ctx: EmitContext) -> None:
        """Produce packets for one scheduling quantum."""


class StreamProcessor(StreamOperator):
    """Processes one packet at a time; batching is the framework's job."""

    @abstractmethod
    def process(self, packet: StreamPacket, ctx: EmitContext) -> None:
        """Handle one packet (borrowed: clone() before retaining it)."""

    def on_batch_start(self, size: int, ctx: EmitContext) -> None:
        """Optional hook before a batch of ``size`` packets (§III-B2)."""

    def on_batch_end(self, ctx: EmitContext) -> None:
        """Optional hook after a batch completes."""

    def on_schedule(self, ctx: EmitContext) -> None:
        """Hook for time-based scheduled executions with no data.

        Only invoked when the operator is declared with a custom
        scheduling strategy (e.g. periodic) and the trigger fires while
        the inbound channel is empty — the place to emit window
        aggregates, heartbeats, or timeout-driven results.
        """


class FunctionProcessor(StreamProcessor):
    """Adapter turning a plain function into a processor.

    ``fn(packet, ctx)`` is invoked per packet.  Handy for examples and
    tests::

        FunctionProcessor(lambda pkt, ctx: ctx.emit(pkt.clone()), schema)
    """

    def __init__(self, fn, schema: PacketSchema | None = None, name: str | None = None):
        super().__init__()
        self._fn = fn
        self._schema = schema
        if name:
            self.name = name

    def process(self, packet: StreamPacket, ctx: EmitContext) -> None:
        """Handle one stream packet (StreamProcessor contract)."""
        self._fn(packet, ctx)

    def output_schema(self, stream: str) -> PacketSchema:
        """Declare the schema of the named outgoing stream."""
        if self._schema is None:
            raise KeyError(f"{self.name} declares no output schema")
        return self._schema
