"""Exception hierarchy for the repro package.

All framework-raised exceptions derive from :class:`NeptuneError` so
applications can catch framework faults without masking programming
errors (``TypeError`` etc.) in user operator code.
"""

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # import cycle: analysis -> core -> util
    from repro.analysis.diagnostics import DiagnosticReport


class NeptuneError(Exception):
    """Base class for all framework errors."""


class GraphValidationError(NeptuneError):
    """A stream-processing graph is structurally invalid.

    Raised when a graph references undeclared operators, contains no
    source, declares non-positive parallelism, or wires a link whose
    partitioning scheme is unknown.
    """


class DescriptorError(GraphValidationError):
    """A JSON graph descriptor is malformed (missing or mistyped keys)."""


class UnknownOperatorError(GraphValidationError):
    """A link references an operator the graph never declared."""


class DuplicateLinkError(GraphValidationError):
    """The same (sender, receiver, stream) link was declared twice."""


class PartitioningError(GraphValidationError):
    """A partitioning spec names an unknown scheme or cannot be built."""


class SerializationError(NeptuneError):
    """A stream packet could not be encoded or decoded.

    Includes schema mismatches, unsupported field types, truncated
    buffers, and checksum failures detected by the framing layer.
    """


class TransportError(NeptuneError):
    """A transport endpoint failed (connection refused, closed mid-write)."""


class BackpressureTimeout(NeptuneError):
    """A blocked producer waited longer than its configured bound.

    NEPTUNE never drops packets; when a downstream stage stays saturated
    past the producer's patience, the producer surfaces this instead of
    silently discarding data (contrast with Storm's fail-fast drops).
    """


class JobStateError(NeptuneError):
    """An operation was attempted in an illegal job lifecycle state."""


class PlanVerificationError(NeptuneError):
    """A cluster deployment plan failed static verification.

    Raised by :meth:`ClusterCoordinator.launch` before any worker is
    spawned when the NEPG130–139 plan verifier reports errors.  The
    message names every failing rule code; :attr:`report` carries the
    full :class:`~repro.analysis.diagnostics.DiagnosticReport`.
    """

    def __init__(self, report: "DiagnosticReport") -> None:
        codes = sorted({d.code for d in report.errors()})
        super().__init__(
            f"deployment plan failed verification ({', '.join(codes)}); "
            "run `repro analyze --cluster` for the full report, or pass "
            "verify=False to deploy anyway"
        )
        self.report = report


class PoolExhausted(NeptuneError):
    """A bounded object pool had no free object and ``strict`` was set."""
