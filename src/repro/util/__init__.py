"""Shared utilities: injectable clocks, token-bucket rate limiting,
and the framework exception hierarchy."""

from repro.util.clock import Clock, MonotonicClock, ManualClock
from repro.util.ratelimit import TokenBucket
from repro.util.errors import (
    NeptuneError,
    GraphValidationError,
    SerializationError,
    TransportError,
    BackpressureTimeout,
)

__all__ = [
    "Clock",
    "MonotonicClock",
    "ManualClock",
    "TokenBucket",
    "NeptuneError",
    "GraphValidationError",
    "SerializationError",
    "TransportError",
    "BackpressureTimeout",
]
