"""Clock abstractions.

Runtime components never call :func:`time.monotonic` directly; they take
a :class:`Clock`.  Production code uses :class:`MonotonicClock`; tests
use :class:`ManualClock` to drive timer-based behaviour (buffer flush
deadlines, backpressure waits) deterministically.
"""

from __future__ import annotations

import threading
import time
from abc import ABC, abstractmethod


class Clock(ABC):
    """A source of monotonic time in (float) seconds."""

    @abstractmethod
    def now(self) -> float:
        """Return the current monotonic time in seconds."""

    @abstractmethod
    def sleep(self, seconds: float) -> None:
        """Block the calling thread for ``seconds``."""


class MonotonicClock(Clock):
    """Wall clock backed by :func:`time.monotonic`."""

    def now(self) -> float:
        """Current monotonic time in seconds."""
        return time.monotonic()

    def sleep(self, seconds: float) -> None:
        """Block (or advance, for manual clocks) for the duration."""
        if seconds > 0:
            time.sleep(seconds)


class ManualClock(Clock):
    """A clock advanced explicitly by tests.

    ``sleep`` advances the clock rather than blocking, and wakes any
    thread waiting in :meth:`wait_until`.  Thread-safe.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self._cond = threading.Condition()

    def now(self) -> float:
        """Current monotonic time in seconds."""
        with self._cond:
            return self._now

    def sleep(self, seconds: float) -> None:
        """Block (or advance, for manual clocks) for the duration."""
        self.advance(seconds)

    def advance(self, seconds: float) -> None:
        """Move time forward by ``seconds`` (must be non-negative)."""
        if seconds < 0:
            raise ValueError(f"cannot advance clock backwards: {seconds}")
        with self._cond:
            self._now += seconds
            self._cond.notify_all()

    def wait_until(self, deadline: float, timeout: float = 5.0) -> bool:
        """Block (in real time) until the manual clock reaches ``deadline``.

        Returns False if ``timeout`` real seconds elapse first.  Used by
        tests coordinating with timer threads.
        """
        end = time.monotonic() + timeout
        with self._cond:
            while self._now < deadline:
                remaining = end - time.monotonic()
                if remaining <= 0:
                    return False
                self._cond.wait(remaining)
            return True


SYSTEM_CLOCK = MonotonicClock()
