"""Token-bucket rate limiting.

Stream sources use a :class:`TokenBucket` to emit at a target rate, and
the simulator's workload generators reuse it to shape arrival processes.
"""

from __future__ import annotations

from repro.util.clock import Clock, SYSTEM_CLOCK


class TokenBucket:
    """Classic token bucket.

    Parameters
    ----------
    rate:
        Sustained token refill rate (tokens/second).  Must be positive.
    burst:
        Bucket capacity: the largest instantaneous burst permitted.
        Defaults to one second's worth of tokens.
    clock:
        Time source; injectable for deterministic tests.
    """

    def __init__(
        self,
        rate: float,
        burst: float | None = None,
        clock: Clock = SYSTEM_CLOCK,
    ) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        self.rate = float(rate)
        self.burst = float(burst) if burst is not None else float(rate)
        if self.burst <= 0:
            raise ValueError(f"burst must be positive, got {burst}")
        self._clock = clock
        self._tokens = self.burst
        self._last = clock.now()

    def _refill(self) -> None:
        now = self._clock.now()
        elapsed = now - self._last
        if elapsed > 0:
            self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
            self._last = now

    # Tolerance absorbing float rounding in refill arithmetic; without it,
    # `acquire` can spin forever when elapsed*rate rounds a hair below the
    # deficit and the follow-up delay underflows to ~0.
    _EPS = 1e-9

    def try_acquire(self, tokens: float = 1.0) -> bool:
        """Take ``tokens`` if available; return whether they were taken."""
        self._refill()
        if self._tokens >= tokens - self._EPS:
            self._tokens = max(0.0, self._tokens - tokens)
            return True
        return False

    def acquire(self, tokens: float = 1.0) -> float:
        """Block until ``tokens`` are available; return seconds waited."""
        waited = 0.0
        while True:
            self._refill()
            if self._tokens >= tokens - self._EPS:
                self._tokens = max(0.0, self._tokens - tokens)
                return waited
            deficit = tokens - self._tokens
            delay = max(deficit / self.rate, 1e-6)
            self._clock.sleep(delay)
            waited += delay

    @property
    def available(self) -> float:
        """Tokens currently available (refilled as of now)."""
        self._refill()
        return self._tokens
