"""Broker core: topics, partitions, consumer groups.

Semantics (a deliberately small slice of the Kafka model the paper's
related work describes):

- a *topic* is a set of append-only partition logs;
- producers append ``(key, value)``; the partition is chosen by key
  hash (stable routing) or round-robin for key-less messages;
- messages are retained (optionally bounded per partition); consumers
  *pull* by offset, so streams are replayable;
- a *consumer group* owns a committed offset per partition; distinct
  groups consume independently.

Thread-safe: producers and consumers may run on any threads.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Iterable

from repro.lz4 import xxh32
from repro.util.errors import NeptuneError


class BrokerError(NeptuneError):
    """Unknown topic/partition or invalid offset operation."""


@dataclass(frozen=True)
class BrokerMessage:
    """One record in a partition log."""

    topic: str
    partition: int
    offset: int
    key: bytes | None
    value: bytes


class TopicPartition:
    """An append-only, offset-addressed log with optional retention cap."""

    def __init__(self, topic: str, index: int, retention: int | None = None) -> None:
        if retention is not None and retention <= 0:
            raise ValueError(f"retention must be positive: {retention}")
        self.topic = topic
        self.index = index
        self.retention = retention
        self._lock = threading.Lock()
        self._messages: list[BrokerMessage] = []
        #: Offset of the first retained message (grows on truncation).
        self._base_offset = 0

    def append(self, key: bytes | None, value: bytes) -> int:
        """Append one record; returns its offset."""
        with self._lock:
            offset = self._base_offset + len(self._messages)
            self._messages.append(
                BrokerMessage(self.topic, self.index, offset, key, value)
            )
            if self.retention is not None and len(self._messages) > self.retention:
                drop = len(self._messages) - self.retention
                del self._messages[:drop]
                self._base_offset += drop
            return offset

    def read(self, offset: int, max_messages: int = 256) -> list[BrokerMessage]:
        """Pull up to ``max_messages`` starting at ``offset``.

        Reading before the retained range raises (data was truncated);
        reading at/after the end returns an empty list.
        """
        if max_messages <= 0:
            raise ValueError(f"max_messages must be positive: {max_messages}")
        with self._lock:
            if offset < self._base_offset:
                raise BrokerError(
                    f"{self.topic}[{self.index}]: offset {offset} below retained "
                    f"base {self._base_offset} (truncated)"
                )
            start = offset - self._base_offset
            return self._messages[start : start + max_messages]

    @property
    def end_offset(self) -> int:
        """Offset one past the newest record."""
        with self._lock:
            return self._base_offset + len(self._messages)

    @property
    def base_offset(self) -> int:
        """Offset of the oldest retained record."""
        with self._lock:
            return self._base_offset

    def __len__(self) -> int:
        with self._lock:
            return len(self._messages)


class ConsumerGroup:
    """Committed offsets for one logical consumer of one topic."""

    def __init__(self, name: str, topic: str, n_partitions: int) -> None:
        self.name = name
        self.topic = topic
        self._lock = threading.Lock()
        self._offsets = [0] * n_partitions

    def committed(self, partition: int) -> int:
        """The committed (next-to-read) offset for a partition."""
        with self._lock:
            return self._offsets[partition]

    def commit(self, partition: int, offset: int) -> None:
        """Commit ``offset`` (the next offset to read) for a partition."""
        with self._lock:
            if offset < self._offsets[partition]:
                raise BrokerError(
                    f"group {self.name!r}: cannot move {self.topic}[{partition}] "
                    f"backwards ({offset} < {self._offsets[partition]})"
                )
            self._offsets[partition] = offset

    def seek(self, partition: int, offset: int) -> None:
        """Reposition (replay) regardless of the committed offset."""
        with self._lock:
            self._offsets[partition] = offset

    def snapshot(self) -> list[int]:
        """Copy of the per-partition committed offsets."""
        with self._lock:
            return list(self._offsets)


class MessageBroker:
    """Topics, partitions, producers, and consumer groups."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._topics: dict[str, list[TopicPartition]] = {}
        self._groups: dict[tuple[str, str], ConsumerGroup] = {}
        self._rr: dict[str, int] = {}

    # -- topics -----------------------------------------------------------------
    def create_topic(
        self, name: str, partitions: int = 1, retention: int | None = None
    ) -> None:
        """Create a topic with the given partition count."""
        if partitions <= 0:
            raise ValueError(f"partitions must be positive: {partitions}")
        with self._lock:
            if name in self._topics:
                raise BrokerError(f"topic {name!r} already exists")
            self._topics[name] = [
                TopicPartition(name, i, retention) for i in range(partitions)
            ]

    def topic(self, name: str) -> list[TopicPartition]:
        """The partition list of a topic (raises on unknown names)."""
        try:
            return self._topics[name]
        except KeyError:
            raise BrokerError(f"unknown topic {name!r}") from None

    def partitions(self, name: str) -> int:
        """Number of partitions in a topic."""
        return len(self.topic(name))

    # -- producing -----------------------------------------------------------------
    def publish(self, topic: str, value: bytes, key: bytes | None = None) -> int:
        """Append to the key-hashed (or round-robin) partition."""
        parts = self.topic(topic)
        if key is not None:
            idx = xxh32(key) % len(parts)
        else:
            with self._lock:
                idx = self._rr.get(topic, 0)
                self._rr[topic] = (idx + 1) % len(parts)
        return parts[idx].append(key, value)

    def publish_many(
        self, topic: str, records: Iterable[tuple[bytes | None, bytes]]
    ) -> int:
        """Publish (key, value) records; returns the count."""
        n = 0
        for key, value in records:
            self.publish(topic, value, key)
            n += 1
        return n

    # -- consuming -----------------------------------------------------------------
    def consumer_group(self, group: str, topic: str) -> ConsumerGroup:
        """Get or create a consumer group for a topic."""
        parts = self.topic(topic)  # validates
        with self._lock:
            key = (group, topic)
            if key not in self._groups:
                self._groups[key] = ConsumerGroup(group, topic, len(parts))
            return self._groups[key]

    def poll(
        self,
        group: str,
        topic: str,
        partition: int,
        max_messages: int = 256,
        commit: bool = True,
    ) -> list[BrokerMessage]:
        """Pull from a partition at the group's committed offset.

        With ``commit=True`` (auto-commit) the offset advances past the
        returned records; with False the caller commits explicitly
        after processing (at-least-once / checkpoint-coordinated).
        """
        cg = self.consumer_group(group, topic)
        offset = cg.committed(partition)
        messages = self.topic(topic)[partition].read(offset, max_messages)
        if commit and messages:
            cg.commit(partition, messages[-1].offset + 1)
        return messages

    def lag(self, group: str, topic: str) -> int:
        """Total unconsumed messages for the group across partitions."""
        cg = self.consumer_group(group, topic)
        return sum(
            part.end_offset - cg.committed(i)
            for i, part in enumerate(self.topic(topic))
        )
