"""NEPTUNE operators bridging graphs to the message broker.

:class:`BrokerSource` is the paper's archetypal stream source: it
*pulls* records from broker partitions (§III-A2's IoT-gateway model),
deserializes them with a reusable codec, and emits them into the graph.
Parallel source instances statically share the topic's partitions
(instance *i* owns partitions ``i, i+P, i+2P, ...``), mirroring
Samza's partition-per-task model (§V).

Offsets commit only after the packets of a poll have been emitted —
i.e. once NEPTUNE's never-drop pipeline owns them — and the source
participates in checkpointing (offsets snapshot/restore), giving
exactly-once ingestion under the recovery model of
:mod:`repro.core.checkpoint`.

:class:`BrokerSink` is the reverse bridge: it publishes each processed
packet back to a topic, keyed by a configurable field.
"""

from __future__ import annotations

from typing import Any

from repro.broker.core import MessageBroker
from repro.core.operators import StreamProcessor, StreamSource
from repro.core.packet import PacketSchema
from repro.core.serde import PacketCodec


class BrokerSource(StreamSource):
    """Pull-based ingestion from a broker topic.

    Parameters
    ----------
    broker, topic, group:
        Where to pull from and the consumer-group identity (offsets are
        per group, so multiple jobs can consume the same topic
        independently).
    schema:
        Packet schema; record values must be single packets encoded
        with a :class:`PacketCodec` of this schema.
    poll_batch:
        Max records pulled per scheduling quantum (per owned partition
        visit).
    stop_at_end:
        Finish when every owned partition is drained (batch-style
        replay); False keeps polling for new data (true streaming).
    """

    def __init__(
        self,
        broker: MessageBroker,
        topic: str,
        group: str,
        schema: PacketSchema,
        poll_batch: int = 256,
        stop_at_end: bool = False,
    ) -> None:
        super().__init__()
        if poll_batch <= 0:
            raise ValueError(f"poll_batch must be positive: {poll_batch}")
        self.broker = broker
        self.topic = topic
        self.group = group
        self.schema = schema
        self.poll_batch = poll_batch
        self.stop_at_end = stop_at_end
        self._codec = PacketCodec(schema)
        self._owned: list[int] = []
        self._next = 0
        self.records_ingested = 0

    def setup(self, ctx) -> None:
        """Per-instance initialization before the first execution."""
        total = self.broker.partitions(self.topic)
        self._owned = list(range(ctx.instance_index, total, ctx.parallelism))

    def generate(self, ctx) -> None:
        """Produce packets for one scheduling quantum (StreamSource contract)."""
        if not self._owned:
            ctx.finish()  # more instances than partitions: idle instance
            return
        progressed = False
        for _ in range(len(self._owned)):
            partition = self._owned[self._next % len(self._owned)]
            self._next += 1
            messages = self.broker.poll(
                self.group, self.topic, partition, self.poll_batch, commit=False
            )
            if not messages:
                continue
            for msg in messages:
                pkt = ctx.new_packet()
                self._codec._fill(pkt, msg.value, 0)
                ctx.emit(pkt)
            # Commit only after NEPTUNE owns the packets (never-drop
            # pipeline downstream of here).
            self.broker.consumer_group(self.group, self.topic).commit(
                partition, messages[-1].offset + 1
            )
            self.records_ingested += len(messages)
            progressed = True
            break
        if not progressed and self.stop_at_end:
            ctx.finish()

    def output_schema(self, stream: str) -> PacketSchema:
        """Declare the schema of the named outgoing stream."""
        return self.schema

    # -- checkpoint hooks (exactly-once ingestion on recovery) -----------
    def snapshot_state(self) -> Any:
        """Checkpoint hook: return this operator's state."""
        cg = self.broker.consumer_group(self.group, self.topic)
        return {"offsets": {p: cg.committed(p) for p in self._owned}}

    def restore_state(self, state: Any) -> None:
        """Checkpoint hook: rehydrate state captured by snapshot_state."""
        cg = self.broker.consumer_group(self.group, self.topic)
        for partition, offset in state["offsets"].items():
            cg.seek(int(partition), offset)


class BrokerSink(StreamProcessor):
    """Publish processed packets back to a broker topic."""

    def __init__(
        self,
        broker: MessageBroker,
        topic: str,
        schema: PacketSchema,
        key_field: str | None = None,
    ) -> None:
        super().__init__()
        self.broker = broker
        self.topic = topic
        self.key_field = key_field
        self._codec = PacketCodec(schema)
        self.records_published = 0

    def process(self, packet, ctx) -> None:
        """Handle one stream packet (StreamProcessor contract)."""
        key = None
        if self.key_field is not None:
            key = repr(packet.get(self.key_field)).encode("utf-8")
        self.broker.publish(self.topic, self._codec.encode(packet), key)
        self.records_published += 1

    def output_schema(self, stream: str) -> PacketSchema:
        """Declare the schema of the named outgoing stream."""
        raise KeyError(stream)
